//! # flang-stencil — reproduction of the SC23 Flang/MLIR stencil paper
//!
//! *"Fortran performance optimisation and auto-parallelisation by
//! leveraging MLIR-based domain specific abstractions in Flang"*
//! (Brown, Jamieson, Lydike, Bauer, Grosser — SC-W 2023).
//!
//! This crate re-exports the whole workspace; see README.md for the
//! architecture and DESIGN.md for the paper-to-module map.
//!
//! ```
//! use flang_stencil::core::{CompileOptions, Compiler, Target};
//!
//! let source = flang_stencil::workloads::gauss_seidel::fortran_source(8, 2);
//! let opts = CompileOptions { target: Target::StencilCpu, verify_each_pass: false, ..Default::default() };
//! let run = Compiler::run(&source, &opts).unwrap();
//! assert!(run.array("u").is_some());
//! ```

pub use fsc_baselines as baselines;
pub use fsc_core as core;
pub use fsc_dialects as dialects;
pub use fsc_exec as exec;
pub use fsc_fortran as fortran;
pub use fsc_gpusim as gpusim;
pub use fsc_ir as ir;
pub use fsc_mpisim as mpisim;
pub use fsc_passes as passes;
pub use fsc_workloads as workloads;
