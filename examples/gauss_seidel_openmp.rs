//! The Gauss–Seidel benchmark with automatic OpenMP parallelisation
//! (Figure 3's configuration): unchanged serial Fortran in, multithreaded
//! execution out — compared against the hand-written OpenMP baseline.
//!
//! ```sh
//! cargo run --release --example gauss_seidel_openmp [n] [iters] [threads]
//! ```

use std::time::Instant;

use flang_stencil::baselines::openmp as hand_openmp;
use flang_stencil::core::{CompileOptions, Compiler, Target};
use flang_stencil::workloads::gauss_seidel;
use flang_stencil::workloads::verify::assert_fields_match;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let cells = (n * n * n * iters) as f64;

    println!("Gauss–Seidel {n}³, {iters} iterations, {threads} threads\n");

    // Automatic parallelisation: the same serial source, OpenMP target.
    let source = gauss_seidel::fortran_source(n, iters);
    let opts = CompileOptions {
        target: Target::StencilOpenMp {
            threads: threads as u32,
        },
        verify_each_pass: false,
        ..Default::default()
    };
    let compiled = Compiler::compile(&source, &opts).expect("compile");
    let exec = compiled.run().expect("run");
    let auto = exec.report.kernel_wall.as_secs_f64();
    println!(
        "auto-parallelised stencil : {:8.1} MCells/s  ({auto:.4}s in kernels)",
        cells / auto / 1e6
    );

    // Hand-written OpenMP baseline (the programmer modified the code).
    let t0 = Instant::now();
    let hand = hand_openmp::gs_run(n, iters, threads);
    let hand_t = t0.elapsed().as_secs_f64();
    println!(
        "hand-written OpenMP       : {:8.1} MCells/s  ({hand_t:.4}s)",
        cells / hand_t / 1e6
    );

    // Same numbers either way.
    let reference = gauss_seidel::reference(n, iters);
    assert_fields_match(exec.array("u").unwrap(), &reference.data, 1e-12, "auto");
    assert_fields_match(&hand.data, &reference.data, 1e-12, "hand");
    println!("\nboth paths verified against the serial reference ✓");
}
