//! `fsc` — a miniature `flang`-style command-line driver over the whole
//! stack: compile a Fortran file through the stencil flow and run it.
//!
//! ```sh
//! cargo run --release --example fsc -- path/to/code.f90 [options]
//!
//!   --target=flang|unopt|cpu|openmp|gpu|dmp|multigpu   (default cpu)
//!   --threads=N        (openmp)
//!   --grid=PxQ         (dmp / multigpu)
//!   --tile=X,Y,Z       (gpu / multigpu)
//!   --naive-gpu-data   (gpu: use the host_register strategy)
//!   --autotune         calibrate execution plans against the plan cache
//!   --plan-cache=FILE  plan-cache file (default: $FSC_PLAN_CACHE, then
//!                      the temp-dir default — this flag/env pair is the
//!                      only place the cache path comes from the
//!                      environment; the library takes explicit paths)
//!   --emit-fir         print the FIR module and exit
//!   --emit-stencil     print the extracted, lowered stencil module and exit
//!   --print=a,b        dump the named arrays after the run
//! ```
//!
//! `FSC_FORCE_EXEC_PATH=specialized|jit|fused-vm|generic-vm` forces every
//! nest onto one execution tier (parsed here, at the binary boundary —
//! the library only sees `CompileOptions::force_exec_path`).

use flang_stencil::core::{CompileOptions, Compiler, Target};
use flang_stencil::exec::TuneConfig;

fn parse_grid(s: &str) -> Vec<i64> {
    s.split(['x', 'X', ','])
        .filter_map(|p| p.parse().ok())
        .collect()
}

fn parse_tile(s: &str) -> [i64; 3] {
    let v: Vec<i64> = s.split(',').filter_map(|p| p.parse().ok()).collect();
    [
        v.first().copied().unwrap_or(32),
        v.get(1).copied().unwrap_or(32),
        v.get(2).copied().unwrap_or(1),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut target_name = "cpu".to_string();
    let mut threads = 0u32;
    let mut grid = vec![2i64, 2];
    let mut tile = [32i64, 32, 1];
    let mut explicit_data = true;
    let mut emit_fir = false;
    let mut emit_stencil = false;
    let mut autotune = false;
    let mut plan_cache: Option<std::path::PathBuf> = None;
    let mut dump: Vec<String> = Vec::new();

    for a in &args {
        if let Some(v) = a.strip_prefix("--target=") {
            target_name = v.to_string();
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = v.parse().expect("--threads=N");
        } else if let Some(v) = a.strip_prefix("--grid=") {
            grid = parse_grid(v);
        } else if let Some(v) = a.strip_prefix("--tile=") {
            tile = parse_tile(v);
        } else if a == "--naive-gpu-data" {
            explicit_data = false;
        } else if a == "--autotune" {
            autotune = true;
        } else if let Some(v) = a.strip_prefix("--plan-cache=") {
            plan_cache = Some(std::path::PathBuf::from(v));
        } else if a == "--emit-fir" {
            emit_fir = true;
        } else if a == "--emit-stencil" {
            emit_stencil = true;
        } else if let Some(v) = a.strip_prefix("--print=") {
            dump = v.split(',').map(str::to_string).collect();
        } else if !a.starts_with("--") {
            path = Some(a.clone());
        } else {
            eprintln!("unknown option {a}");
            std::process::exit(2);
        }
    }

    let Some(path) = path else {
        eprintln!("usage: fsc <file.f90> [--target=...] (see source header)");
        std::process::exit(2);
    };
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });

    if emit_fir {
        match flang_stencil::fortran::compile_to_fir(&source) {
            Ok(m) => print!("{}", flang_stencil::ir::print::print_module(&m)),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let target = match target_name.as_str() {
        "flang" => Target::FlangOnly,
        "unopt" => Target::UnoptimizedCpu,
        "cpu" => Target::StencilCpu,
        "openmp" => Target::StencilOpenMp { threads },
        "gpu" => Target::StencilGpu {
            explicit_data,
            tile,
        },
        "dmp" => Target::StencilDistributed { grid: grid.clone() },
        "multigpu" => Target::StencilMultiGpu {
            grid: grid.clone(),
            tile,
        },
        other => {
            eprintln!("unknown target '{other}'");
            std::process::exit(2);
        }
    };

    // The env → options boundary: `FSC_PLAN_CACHE` and
    // `FSC_FORCE_EXEC_PATH` are read here, once, and threaded through as
    // explicit options. Library code never consults the environment (see
    // fsc-exec's plancache docs).
    let tune = autotune.then(|| TuneConfig {
        cache_path: plan_cache.or_else(flang_stencil::exec::env_cache_path),
        no_persist: false,
        reps: 2,
    });
    let force_exec_path = std::env::var("FSC_FORCE_EXEC_PATH").ok().map(|raw| {
        flang_stencil::exec::ExecPath::parse(&raw).unwrap_or_else(|| {
            eprintln!(
                "bad FSC_FORCE_EXEC_PATH '{raw}': expected \
                 specialized|jit|fused-vm|generic-vm"
            );
            std::process::exit(2);
        })
    });
    let compiled = match Compiler::compile(
        &source,
        &CompileOptions {
            target,
            verify_each_pass: false,
            autotune: tune,
            force_exec_path,
            ..Default::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if emit_stencil {
        match &compiled.stencil_module {
            Some(st) => print!("{}", flang_stencil::ir::print::print_module(st)),
            None => eprintln!("(no stencil module for this target)"),
        }
        return;
    }

    let exec = match compiled.run() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("runtime error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ok: wall {:?}, kernels {:?} over {} cells ({} region(s))",
        exec.report.wall,
        exec.report.kernel_wall,
        exec.report.kernel_cells,
        compiled.kernels.len()
    );
    if let Some(t) = &compiled.tuning {
        eprintln!(
            "autotune: {} cache hit(s), {} fresh tune(s), {:?} calibrating",
            t.cache_hits(),
            t.fresh_tunes(),
            t.tuning_wall
        );
        for d in &t.diagnostics {
            eprintln!("{d}");
        }
    }
    if !exec.report.exec_paths.is_empty() {
        let paths: Vec<String> = exec
            .report
            .exec_paths
            .iter()
            .map(|p| p.to_string())
            .collect();
        eprintln!("exec paths: {}", paths.join(", "));
    }
    if !exec.report.jit_artifacts.is_empty() {
        let sources: Vec<&str> = exec
            .report
            .jit_artifacts
            .iter()
            .map(|s| s.describe())
            .collect();
        eprintln!("jit artifacts: {}", sources.join(", "));
    }
    for d in &exec.report.jit_warnings {
        eprintln!("{d}");
    }
    if let Some(gpu) = exec.report.gpu_seconds {
        eprintln!("gpu model: {gpu:.6}s ({:?})", exec.report.gpu.unwrap());
    }
    if let Some(d) = exec.report.distributed_seconds {
        match &exec.report.distributed {
            Some(att) if att.dispatches > 0 => eprintln!(
                "distributed measured: {d:.6}s over {} ranks ({} halos, \
                 overlap fraction {:.3}, {} halo bytes, model/measured {:.3})",
                att.ranks,
                match att.schedule {
                    Some(flang_stencil::exec::HaloSchedule::Overlap) => "overlapped",
                    Some(flang_stencil::exec::HaloSchedule::Blocking) => "blocking",
                    None => "no",
                },
                att.overlap_fraction(),
                att.bytes_exchanged,
                att.model_ratio()
            ),
            _ => eprintln!(
                "distributed model: {d:.6}s over {} ranks",
                exec.report.ranks.unwrap()
            ),
        }
    }
    for name in dump {
        match exec.array(&name) {
            Some(data) => {
                let preview: Vec<f64> = data.iter().copied().take(8).collect();
                println!(
                    "{name}: len={} checksum={:.6} head={preview:?}",
                    data.len(),
                    flang_stencil::workloads::verify::checksum(data)
                );
            }
            None => eprintln!("no array named '{name}'"),
        }
    }
}
