//! Walk the paper's Listing 1 through every stage of the Figure 1 pipeline
//! and print the IR after each transformation — the compiler-engineer's view
//! of what the other examples do end to end.
//!
//! ```sh
//! cargo run --example inspect_pipeline
//! ```

use flang_stencil::ir::print::print_module;
use flang_stencil::ir::Pass as _;
use flang_stencil::passes;

const LISTING1: &str = "
program average
  integer, parameter :: n = 8
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

fn banner(title: &str) {
    println!("\n{}\n{title}\n{}", "=".repeat(72), "=".repeat(72));
}

fn show(m: &flang_stencil::ir::Module, max_lines: usize) {
    let text = print_module(m);
    for line in text.lines().take(max_lines) {
        println!("{line}");
    }
    let total = text.lines().count();
    if total > max_lines {
        println!("... ({total} lines total)");
    }
}

fn main() {
    banner("1. Flang frontend output: the FIR dialect");
    let mut m = flang_stencil::fortran::compile_to_fir(LISTING1).unwrap();
    show(&m, 40);

    banner("2. after discover-stencils + merge-stencils (Listing 3)");
    passes::discover::DiscoverStencils::default()
        .run(&mut m)
        .unwrap();
    show(&m, 40);

    banner("3. after extract-stencils: the FIR module (calls the region)");
    let mut st = passes::extract::extract_stencils(&mut m).unwrap();
    show(&m, 25);

    banner("3b. ... and the extracted stencil module");
    show(&st, 40);

    banner("4. after the CPU pipeline (stencil → scf.parallel/scf.for)");
    passes::pipelines::cpu_pipeline()
        .unwrap()
        .run(&mut st)
        .unwrap();
    show(&st, 50);

    banner("5. the compiled kernel");
    let kernel = flang_stencil::exec::kernel::compile_kernel(&st, "stencil_region_0").unwrap();
    println!("{kernel:#?}");
}
