//! Fault-injected, self-healing distributed Gauss–Seidel: the same halo
//! exchanges as `distributed_gs`, but the messages travel through the
//! resilient transport while a seeded fault plan drops, duplicates,
//! delays and corrupts them — and crashes a rank mid-run. The final field
//! is bit-identical to the fault-free run, and the recovery is attested.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_gs [n] [iters] [drop%]
//! ```

use flang_stencil::baselines::mpi as hand_mpi;
use flang_stencil::core::{CompileOptions, Compiler, Target};
use flang_stencil::mpisim::fault::FaultPlan;
use flang_stencil::mpisim::resilient::ResilientConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let drop_pct: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8.0);
    let ranks = 4;
    println!("Fault-tolerant distributed Gauss–Seidel {n}³, {iters} iterations, {ranks} ranks\n");

    // The adversary: seeded, deterministic message faults plus a fail-stop
    // crash of rank 2 at iteration `iters/2`.
    let mut plan = FaultPlan::lossy(2024, drop_pct / 100.0);
    plan.corrupt_prob = 0.02;
    plan.delay_prob = 0.05;
    plan.max_delay_ms = 3;
    let plan = plan.with_crash(2, iters / 2);
    let cfg = ResilientConfig {
        checkpoint_interval: 2,
        ..Default::default()
    };
    println!(
        "fault plan: {:.0}% drop, {:.0}% dup, {:.0}% corrupt, {:.0}% delay, crash rank 2 @ iter {}",
        plan.drop_prob * 100.0,
        plan.dup_prob * 100.0,
        plan.corrupt_prob * 100.0,
        plan.delay_prob * 100.0,
        iters / 2
    );

    let clean = hand_mpi::gs_run(n, iters, ranks);
    let out = hand_mpi::gs_run_resilient(n, iters, ranks, plan, cfg).expect("resilient run");
    let identical = clean
        .data
        .iter()
        .zip(&out.grid.data)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "recovery must be bit-exact");
    println!("\nresult: bit-identical to the fault-free run ✓");

    let s = &out.stats;
    println!("\nattestation (all ranks):");
    println!("  data messages      {:>6}", s.data_msgs);
    println!("  acks               {:>6}", s.acks_sent);
    println!(
        "  injected faults    {:>6}  ({} drops, {} dups, {} corruptions, {} delays, {} reorders)",
        s.injected(),
        s.injected_drops,
        s.injected_dups,
        s.injected_corruptions,
        s.injected_delays,
        s.injected_reorders
    );
    println!("  retransmissions    {:>6}", s.retries);
    println!("  duplicates dropped {:>6}", s.duplicates_dropped);
    println!("  corruptions caught {:>6}", s.corruptions_detected);
    println!("  checkpoints        {:>6}", s.checkpoints);
    println!(
        "  crashes / restores {:>3} / {}",
        s.injected_crashes, s.restores
    );
    println!("  iterations replayed{:>6}", s.replayed_iterations);

    // The compiler's DMP auto path reports the same attestation surface.
    let source = flang_stencil::workloads::gauss_seidel::fortran_source(12, 2);
    let opts = CompileOptions {
        target: Target::StencilDistributed { grid: vec![2, 2] },
        verify_each_pass: false,
        ..Default::default()
    };
    let compiled = Compiler::compile(&source, &opts).expect("compile");
    let exec = compiled
        .run_with_faults(FaultPlan::lossy(7, 0.05).with_crash(1, 1))
        .expect("run with faults");
    let res = exec.report.resilience.expect("resilience report");
    println!(
        "\nDMP auto path (12³, 2 iters, faults injected): {} injected, {} retries, {} restores — \
         modeled {:.6}s/run",
        res.injected(),
        res.retries,
        res.restores,
        exec.report.distributed_seconds.unwrap()
    );
}
