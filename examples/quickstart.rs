//! Quickstart: compile the paper's Listing 1 through the full pipeline,
//! watch the stencil get discovered, run it, and verify the numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flang_stencil::core::{CompileOptions, Compiler, Target};

fn main() {
    // The paper's Listing 1: a 5-point average over a 2-D grid.
    let source = "
program average
  implicit none
  integer, parameter :: n = 256
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 0, n+1
    do j = 0, n+1
      data(j, i) = 0.001 * i * j
    end do
  end do
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    println!("== compiling through the stencil flow (Figure 1) ==");
    let compiled = Compiler::compile(
        source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("compilation failed");

    println!(
        "extracted {} stencil region(s): {:?}",
        compiled.kernels.len(),
        compiled.kernels.keys().collect::<Vec<_>>()
    );
    for (name, kernel) in &compiled.kernels {
        for (i, nest) in kernel.nests.iter().enumerate() {
            println!(
                "  {name} nest {i}: domain {:?}, {} flops/cell, {} loads/cell",
                nest.bounds, nest.program.flops_per_cell, nest.program.loads_per_cell
            );
        }
    }

    println!("\n== the extracted stencil module (lowered to scf/memref) ==");
    let st = compiled.stencil_module.as_ref().unwrap();
    let text = flang_stencil::ir::print::print_module(st);
    for line in text.lines().take(20) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());

    println!("\n== running ==");
    let exec = compiled.run().expect("execution failed");
    let res = exec.array("res").expect("res array");
    // Spot-check one interior point against the formula.
    let e = 258usize;
    let at = |j: usize, i: usize| res[j + e * i];
    let expect = |j: f64, i: f64| 0.001 * i * j;
    let got = at(100, 100);
    let want = 0.25
        * (expect(100.0, 99.0) + expect(100.0, 101.0) + expect(99.0, 100.0) + expect(101.0, 100.0));
    println!("res(100,100) = {got} (expected {want})");
    assert!((got - want).abs() < 1e-12);
    println!(
        "ok — {} cells through compiled stencil kernels in {:?}",
        exec.report.kernel_cells, exec.report.kernel_wall
    );
    let paths: Vec<String> = exec
        .report
        .exec_paths
        .iter()
        .map(|p| p.to_string())
        .collect();
    println!("execution paths attested: {}", paths.join(", "));
}
