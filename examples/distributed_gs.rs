//! Automatic distributed-memory parallelisation of the unchanged serial
//! Gauss–Seidel source (Figure 6's configuration), validated against the
//! hand-written MPI baseline running real message passing.
//!
//! ```sh
//! cargo run --release --example distributed_gs [n] [iters]
//! ```

use flang_stencil::baselines::mpi as hand_mpi;
use flang_stencil::core::{CompileOptions, Compiler, Target};
use flang_stencil::mpisim::{CostModel, ProcessGrid};
use flang_stencil::workloads::gauss_seidel;
use flang_stencil::workloads::verify::assert_fields_match;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let iters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    println!("Distributed Gauss–Seidel {n}³, {iters} iterations\n");

    // Auto-parallelised: serial source + DMP/MPI lowering, 2-D grid.
    let source = gauss_seidel::fortran_source(n, iters);
    let opts = CompileOptions {
        target: Target::StencilDistributed { grid: vec![2, 2] },
        verify_each_pass: false,
        ..Default::default()
    };
    let exec = Compiler::run(&source, &opts).expect("run");
    println!(
        "auto-parallelised over {} ranks: modeled {:.5}s/run",
        exec.report.ranks.unwrap(),
        exec.report.distributed_seconds.unwrap()
    );

    // Hand-written MPI with real message passing on the rank runtime.
    let hand = hand_mpi::gs_run(n, iters, 4);
    let reference = gauss_seidel::reference(n, iters);
    assert_fields_match(exec.array("u").unwrap(), &reference.data, 1e-12, "auto");
    assert_fields_match(&hand.data, &reference.data, 1e-12, "hand mpi");
    println!("both paths verified against the serial reference ✓\n");

    // Scaling estimate for ARCHER2 node counts (the Figure 6 sweep).
    println!("modeled strong scaling (17B-cell class, per-cell rate 1 ns):");
    let cost = CostModel::default();
    for nodes in [1i64, 2, 4, 8, 16, 32, 64] {
        let ranks = nodes * 128;
        let grid = ProcessGrid::new(vec![128, nodes]);
        let t = hand_mpi::modeled_iteration_time(2048, &grid, &cost, 1e-9);
        let mcells = 2048f64.powi(3) / t / 1e6;
        println!("  {nodes:3} nodes ({ranks:5} ranks): {mcells:10.0} MCells/s");
    }
}
