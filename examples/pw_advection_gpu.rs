//! PW advection on the modeled V100 (Figure 5's configuration): both of the
//! paper's data-management strategies against the hand-written OpenACC
//! baseline.
//!
//! ```sh
//! cargo run --release --example pw_advection_gpu [n] [launches]
//! ```

use flang_stencil::baselines::openacc;
use flang_stencil::core::{CompileOptions, Compiler, Target};
use flang_stencil::gpusim::V100Model;
use flang_stencil::workloads::pw_advection;
use flang_stencil::workloads::verify::assert_fields_match;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let launches: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    println!("PW advection {n}³ on the V100 model ({launches} kernel launches)\n");

    let source = pw_advection::fortran_source(n);
    let mut results = Vec::new();
    for (label, explicit) in [
        ("stencil (host_register data)", false),
        ("stencil (optimised data)   ", true),
    ] {
        let opts = CompileOptions {
            target: Target::StencilGpu {
                explicit_data: explicit,
                tile: [32, 32, 1],
            },
            verify_each_pass: false,
            ..Default::default()
        };
        // The benchmark kernel is launched repeatedly from a larger code;
        // model that by re-running the program and accumulating per-launch
        // costs (residency carries inside one program run; across runs the
        // first-touch cost is charged again, matching a cold start).
        let compiled = Compiler::compile(&source, &opts).expect("compile");
        let exec = compiled.run().expect("run");
        let per_launch = exec.report.gpu_seconds.unwrap();
        // One program run does `1` compute launch; scale by launches with
        // steady-state residency for the explicit path.
        let total = if explicit {
            // First launch pays the upload; the rest are kernel-only.
            let counters = exec.report.gpu.unwrap();
            per_launch + (launches as f64 - 1.0) * counters.kernel_seconds
        } else {
            per_launch * launches as f64
        };
        let cells = (n as f64).powi(3) * launches as f64;
        println!(
            "{label}: {:10.1} MCells/s   ({total:.5}s modeled)",
            cells / total / 1e6
        );
        results.push(exec);
    }

    // The hand-written OpenACC baseline under unified memory.
    let acc = openacc::pw_run(n, launches, V100Model::default());
    println!(
        "hand-written OpenACC        : {:10.1} MCells/s   ({:.5}s modeled)",
        acc.mcells_per_sec(),
        acc.modeled_seconds
    );

    // All three agree numerically.
    let (u, v, w) = pw_advection::initial_fields(n);
    let (su, _, _) = pw_advection::reference(&u, &v, &w);
    for exec in &results {
        assert_fields_match(exec.array("su").unwrap(), &su.data, 1e-12, "su");
    }
    assert_fields_match(&acc.fields[0].data, &su.data, 1e-12, "acc su");
    println!("\nall paths verified against the reference ✓");
}
