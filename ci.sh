#!/usr/bin/env bash
# Tier-1 verification plus lint gates. Run from the repo root.
#
#   ./ci.sh           # everything
#   ./ci.sh --quick   # skip the release build (debug tests + lints only)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
  echo "== build (release) =="
  # --workspace: the root manifest is also a package, so a bare build
  # would only cover flang-stencil and skip the member crates' binaries
  # (fsc-serve, loadgen, the figure bins).
  cargo build --release --workspace
fi

echo "== test =="
# Hard timeout: the mpisim fault/deadlock tests are designed so no code
# path can block forever, but a regression there must fail CI loudly
# instead of hanging it. SIGKILL follows 30s after SIGTERM if needed.
# --workspace for the same reason as the build above.
timeout --kill-after=30s 900s cargo test -q --workspace

echo "== fuzz smoke =="
# Bounded differential fuzzing: every ladder rung and exec tier must be
# bit-identical to the reference on seeded random stencils, and malformed
# input must be rejected with coded diagnostics — never a panic. The fixed
# seed keeps CI deterministic; nightly jobs can rotate it.
timeout --kill-after=30s 300s cargo run -q -p fsc-bench --bin fuzz_diff -- --cases 200 --seed 1

echo "== distributed smoke =="
# Executed distributed run on a 2x2 process grid: rank bodies on the MPI
# micro-sim must produce a bit-identical result to single-rank serial and
# attest a non-zero halo-overlap fraction (asserted inside the binary).
timeout --kill-after=30s 300s \
  cargo run -q -p fsc-bench --bin fig6_distributed -- --smoke

echo "== scaling smoke =="
# 1024 virtual ranks on the work-stealing cooperative scheduler over a
# forced 4-worker pool: the run must stay *measured* (no cost-model
# fallback), match single-rank serial bit-for-bit, attest non-zero
# steals, and finish under the binary's wall budget (all asserted inside
# the binary).
timeout --kill-after=30s 300s \
  cargo run -q -p fsc-bench --bin fig7_rank_scaling -- --smoke

echo "== autotune smoke =="
# Calibration sweep + cache-blocked plan ablation. The sweep threads its
# own throwaway cache path explicitly (the library never reads
# FSC_PLAN_CACHE — env lookup happens only at binary boundaries), so CI
# never reads or pollutes a developer's plan cache. The run itself
# verifies all plan variants bit-identical.
timeout --kill-after=30s 300s \
  cargo run -q -p fsc-bench --bin tile_sweep -- --quick

echo "== jit smoke =="
# The stitched jit tier (DESIGN.md §14): the three non-template kernels
# must land on the jit by default and stay bit-identical to both VM
# tiers, Gauss–Seidel forced onto the jit must stay within 1.2x of the
# hand-specialized template, and a purge/recompile cycle must attest a
# fresh artifact then a cached one (all asserted inside the binary).
timeout --kill-after=30s 300s \
  cargo run -q -p fsc-bench --bin fig8_jit_tier -- --smoke

echo "== server smoke =="
# Compile-server mode: loadgen self-hosts an fsc-serve instance on a
# private socket and storms it with a duplicate-heavy request mix. The
# binary exits non-zero unless every request completed ok, the artifact
# cache was actually reused (hit rate > 0), and singleflight held
# (server-side compiles <= distinct request shapes).
timeout --kill-after=30s 300s \
  cargo run -q -p fsc-serve --bin loadgen -- --smoke

echo "== chaos smoke =="
# Seeded fault-injection soak against the failure model (DESIGN.md §11):
# 500 requests through resilient clients while the server takes worker
# panics, slow compiles past the deadline, truncated response frames,
# plan-cache corruption and artifact purges. The binary exits non-zero
# unless every request ends in exactly one bit-identical success after
# bounded retries, every chaos site actually fired, the scarred server
# drains clean, serves bit-identically after disarm, and stops within its
# hard bound. The fixed seed pins each site's decision stream.
timeout --kill-after=30s 300s \
  cargo run -q -p fsc-serve --bin loadgen -- --chaos --smoke --seed 20260808

echo "== memory smoke =="
# Memory-governance soak (DESIGN.md §12): 500 requests with over-budget
# giants mixed into normal traffic against a self-hosted server capped at
# --mem-budget 256 MiB. The binary exits non-zero unless every giant is
# answered exactly once with the coded E0806 rejection, every admitted
# run is bit-identical with its attested estimate bounding its measured
# peak, the reservation ledger drains to zero, and no worker dies. The
# subshell pins a hard 4 GiB address-space rlimit so an accounting hole
# becomes a real allocator failure, not a missed assertion. The binary is
# prebuilt outside the rlimit because rustc itself needs more than the
# cap.
cargo build -q -p fsc-serve --bin loadgen
loadgen_bin="${CARGO_TARGET_DIR:-target}/debug/loadgen"
( ulimit -v 4194304
  timeout --kill-after=30s 300s \
    "$loadgen_bin" --mem --smoke --seed 20260808 )

echo "ci: all green"
