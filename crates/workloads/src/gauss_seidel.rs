//! The Gauss–Seidel / Laplace benchmark of §4.1: a 7-point, 6-flop
//! neighbour average in three dimensions, iterated with double buffering
//! (so every execution path — interpreter, stencil kernels, baselines —
//! computes the identical Jacobi-style result).

use crate::grid::{init_value, Grid3};

/// FP operations per grid cell (5 adds + 1 divide), as stated in §4.1.
pub const FLOPS_PER_CELL: u64 = 6;

/// The benchmark's Fortran source for interior size `n` and `iters` time
/// steps. This is what the driver feeds the frontend — the same unmodified
/// serial code for every target, which is the paper's headline claim.
pub fn fortran_source(n: usize, iters: usize) -> String {
    format!(
        "program gauss_seidel
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {iters}
  integer :: i, j, k, t
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        u(i, j, k) = 0.01 * i + 0.02 * j + 0.03 * k
      end do
    end do
  end do
  do t = 1, niters
    do k = 1, n
      do j = 1, n
        do i = 1, n
          un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                       + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
        end do
      end do
    end do
    do k = 1, n
      do j = 1, n
        do i = 1, n
          u(i, j, k) = un(i, j, k)
        end do
      end do
    end do
  end do
end program gauss_seidel
"
    )
}

/// One double-buffered sweep: interior of `un` from `u`.
pub fn sweep(u: &Grid3, un: &mut Grid3) {
    let n = u.n;
    for k in 1..=n {
        for j in 1..=n {
            for i in 1..=n {
                let v = (u.at(i - 1, j, k)
                    + u.at(i + 1, j, k)
                    + u.at(i, j - 1, k)
                    + u.at(i, j + 1, k)
                    + u.at(i, j, k - 1)
                    + u.at(i, j, k + 1))
                    / 6.0;
                un.set(i, j, k, v);
            }
        }
    }
}

/// Clarity-first reference: run the full benchmark and return the final `u`.
pub fn reference(n: usize, iters: usize) -> Grid3 {
    let mut u = Grid3::new(n);
    u.init_analytic();
    let mut un = Grid3::new(n);
    for _ in 0..iters {
        sweep(&u, &mut un);
        // Copy interior back (the Fortran copy loop).
        for k in 1..=n {
            for j in 1..=n {
                for i in 1..=n {
                    let v = un.at(i, j, k);
                    u.set(i, j, k, v);
                }
            }
        }
    }
    u
}

/// The expected value of the initial field at `(i,j,k)` (halo cells keep it
/// throughout, since boundaries are never rewritten).
pub fn boundary_value(i: usize, j: usize, k: usize) -> f64 {
    init_value(i, j, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_field_is_harmonic() {
        // u = 0.01 i + 0.02 j + 0.03 k is harmonic: the 6-neighbour average
        // equals the centre, so iteration is a fixed point.
        let u = reference(6, 3);
        for k in 1..=6 {
            for j in 1..=6 {
                for i in 1..=6 {
                    let expect = init_value(i, j, k);
                    assert!(
                        (u.at(i, j, k) - expect).abs() < 1e-12,
                        "({i},{j},{k}): {} vs {expect}",
                        u.at(i, j, k)
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_smooths_a_spike() {
        let n = 5;
        let mut u = Grid3::new(n);
        u.set(3, 3, 3, 6.0);
        let mut un = Grid3::new(n);
        sweep(&u, &mut un);
        assert_eq!(un.at(3, 3, 3), 0.0, "centre sees only zero neighbours");
        assert_eq!(un.at(2, 3, 3), 1.0, "each neighbour sees the spike once");
        assert_eq!(un.at(3, 4, 3), 1.0);
        assert_eq!(un.at(1, 1, 1), 0.0);
    }

    #[test]
    fn source_parses_and_compiles() {
        let src = fortran_source(4, 2);
        let m = fsc_fortran::compile_to_fir(&src).unwrap();
        assert!(m.live_op_count() > 50);
    }

    #[test]
    fn zero_iterations_is_initial_field() {
        let u = reference(4, 0);
        let mut expect = Grid3::new(4);
        expect.init_analytic();
        assert_eq!(u, expect);
    }
}
