//! 3-D grid storage shared by references and baselines.
//!
//! Layout matches the compiler stack: column-major (first index fastest),
//! with a one-cell halo on every side — an array declared
//! `u(0:n+1, 0:n+1, 0:n+1)` in Fortran.

/// A cube grid with halo: extents `(n+2)³`, interior `1..=n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Interior points per dimension.
    pub n: usize,
    /// Extent per dimension (`n + 2`).
    pub e: usize,
    /// Flat column-major storage.
    pub data: Vec<f64>,
}

impl Grid3 {
    /// Zero-filled grid with interior size `n`.
    pub fn new(n: usize) -> Self {
        let e = n + 2;
        Self {
            n,
            e,
            data: vec![0.0; e * e * e],
        }
    }

    /// Linear index of Fortran coordinates `(i, j, k)` with lower bound 0.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        i + self.e * (j + self.e * k)
    }

    /// Read one cell.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Write one cell.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Deterministic analytic initialisation, identical to the loop the
    /// benchmark Fortran sources run: `0.01*i + 0.02*j + 0.03*k` over the
    /// whole extent (halo included).
    pub fn init_analytic(&mut self) {
        for k in 0..self.e {
            for j in 0..self.e {
                for i in 0..self.e {
                    self.set(i, j, k, init_value(i, j, k));
                }
            }
        }
    }

    /// Total cells including halo.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the grid has no storage (never for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Interior cell count (`n³`).
    pub fn interior_cells(&self) -> u64 {
        (self.n as u64).pow(3)
    }
}

/// The shared analytic initial condition.
#[inline]
pub fn init_value(i: usize, j: usize, k: usize) -> f64 {
    0.01 * i as f64 + 0.02 * j as f64 + 0.03 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_column_major() {
        let g = Grid3::new(2);
        assert_eq!(g.e, 4);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 16);
        assert_eq!(g.len(), 64);
    }

    #[test]
    fn init_matches_formula() {
        let mut g = Grid3::new(3);
        g.init_analytic();
        assert_eq!(g.at(1, 2, 3), 0.01 + 0.04 + 0.09);
        assert_eq!(g.at(0, 0, 0), 0.0);
    }

    #[test]
    fn set_then_read() {
        let mut g = Grid3::new(2);
        g.set(2, 1, 3, 42.0);
        assert_eq!(g.at(2, 1, 3), 42.0);
        assert_eq!(g.interior_cells(), 8);
    }
}
