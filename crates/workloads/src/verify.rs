//! Verification helpers for comparing execution paths.

/// Maximum absolute elementwise difference.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square difference.
pub fn rms_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

/// Order-independent checksum for regression tracking.
pub fn checksum(a: &[f64]) -> f64 {
    a.iter()
        .enumerate()
        .map(|(i, &v)| v * ((i % 97) as f64 + 1.0))
        .sum()
}

/// Assert two fields agree to `tol`, with a helpful message.
pub fn assert_fields_match(a: &[f64], b: &[f64], tol: f64, what: &str) {
    let d = max_abs_diff(a, b);
    assert!(d <= tol, "{what}: max |diff| = {d:e} exceeds {tol:e}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffs() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.0];
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!((rms_diff(&a, &b) - (0.25f64 / 3.0).sqrt()).abs() < 1e-15);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn checksum_is_position_sensitive() {
        assert_ne!(checksum(&[1.0, 2.0]), checksum(&[2.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn mismatch_panics() {
        assert_fields_match(&[0.0], &[1.0], 1e-9, "test");
    }
}
