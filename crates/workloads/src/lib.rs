//! # fsc-workloads — the paper's two benchmarks
//!
//! * [`gauss_seidel`] — the 3-D Laplace solver of §4.1: a 7-point stencil
//!   averaging the six orthogonal neighbours, 6 FP ops per grid cell,
//!   iterated with double buffering;
//! * [`pw_advection`] — the Piacsek–Williams advection scheme used by the
//!   Met Office MONC model: three stencil computations over three velocity
//!   fields (≈63 FP ops per grid cell) that the stencil transformation
//!   fuses into a single region.
//!
//! Each workload provides the Fortran source (fed to the `fsc-fortran`
//! frontend exactly as the paper feeds Flang), a clarity-first Rust
//! reference implementation for differential testing, and helpers shared by
//! the verification code ([`verify`], [`grid`]).

pub mod gauss_seidel;
pub mod grid;
pub mod jit_kernels;
pub mod pw_advection;
pub mod verify;

pub use grid::Grid3;
