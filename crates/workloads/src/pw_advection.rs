//! The Piacsek–Williams advection benchmark of §4.1: the momentum advection
//! scheme used by Met Office codes such as MONC. Three stencil computations
//! (source terms `su`, `sv`, `sw` for the three velocity components) over
//! three fields (`u`, `v`, `w`), each combining neighbour products along all
//! three dimensions — 63 FP ops per grid cell (21 per statement), fused by
//! the stencil transformation into a single region.
//!
//! The vertical direction follows MONC's kernel shape: two *separate*
//! coefficients `tzc1`/`tzc2` applied to the up- and down-flux terms
//! individually (MONC derives them from the vertical grid spacing, so on a
//! stretched grid they differ; our uniform grid makes them equal, but the
//! kernel still applies them per term). That is where the 63rd, 62nd and
//! 61st flops live — factoring the z-group under one coefficient, as the
//! horizontal directions do, would drop the count to 60.

use crate::grid::Grid3;

/// FP operations per grid cell as the paper reports it (21 × 3 statements).
pub const FLOPS_PER_CELL: u64 = 63;

/// Advection coefficients (time step over cell spacing per dimension).
pub const TCX: f64 = 0.1;
/// See [`TCX`].
pub const TCY: f64 = 0.2;
/// Vertical up-flux coefficient (MONC: from the level spacing below).
pub const TZC1: f64 = 0.3;
/// Vertical down-flux coefficient (MONC: from the level spacing above).
pub const TZC2: f64 = 0.3;

/// The benchmark's Fortran source: init of the three velocity fields, then
/// one triple nest computing all three source terms (which discovery turns
/// into three applies and fusion merges).
pub fn fortran_source(n: usize) -> String {
    format!(
        "program pw_advection
  implicit none
  integer, parameter :: n = {n}
  real(kind=8), parameter :: tcx = {TCX}
  real(kind=8), parameter :: tcy = {TCY}
  real(kind=8), parameter :: tzc1 = {TZC1}
  real(kind=8), parameter :: tzc2 = {TZC2}
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), v(0:n+1, 0:n+1, 0:n+1), w(0:n+1, 0:n+1, 0:n+1)
  real(kind=8) :: su(0:n+1, 0:n+1, 0:n+1), sv(0:n+1, 0:n+1, 0:n+1), sw(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        u(i, j, k) = 0.01 * i + 0.02 * j + 0.03 * k
        v(i, j, k) = 0.01 * k + 0.02 * i + 0.03 * j
        w(i, j, k) = 0.01 * j + 0.02 * k + 0.03 * i
      end do
    end do
  end do
  do k = 1, n
    do j = 1, n
      do i = 1, n
        su(i, j, k) = tcx * (u(i-1, j, k) * (u(i, j, k) + u(i-1, j, k)) &
                    - u(i+1, j, k) * (u(i, j, k) + u(i+1, j, k))) &
                    + tcy * (v(i, j, k) * (u(i, j-1, k) + u(i, j, k)) &
                    - v(i, j+1, k) * (u(i, j, k) + u(i, j+1, k))) &
                    + tzc1 * w(i, j, k) * (u(i, j, k-1) + u(i, j, k)) &
                    - tzc2 * w(i, j, k+1) * (u(i, j, k) + u(i, j, k+1))
        sv(i, j, k) = tcx * (u(i, j, k) * (v(i-1, j, k) + v(i, j, k)) &
                    - u(i+1, j, k) * (v(i, j, k) + v(i+1, j, k))) &
                    + tcy * (v(i, j-1, k) * (v(i, j, k) + v(i, j-1, k)) &
                    - v(i, j+1, k) * (v(i, j, k) + v(i, j+1, k))) &
                    + tzc1 * w(i, j, k) * (v(i, j, k-1) + v(i, j, k)) &
                    - tzc2 * w(i, j, k+1) * (v(i, j, k) + v(i, j, k+1))
        sw(i, j, k) = tcx * (u(i, j, k) * (w(i-1, j, k) + w(i, j, k)) &
                    - u(i+1, j, k) * (w(i, j, k) + w(i+1, j, k))) &
                    + tcy * (v(i, j, k) * (w(i, j-1, k) + w(i, j, k)) &
                    - v(i, j+1, k) * (w(i, j, k) + w(i, j+1, k))) &
                    + tzc1 * w(i, j, k-1) * (w(i, j, k) + w(i, j, k-1)) &
                    - tzc2 * w(i, j, k+1) * (w(i, j, k) + w(i, j, k+1))
      end do
    end do
  end do
end program pw_advection
"
    )
}

/// Like [`fortran_source`] but with the compute nest wrapped in a time loop
/// of `reps` iterations — models the kernel "called from a larger code base"
/// (§4.4) so GPU residency effects across launches are exercised.
pub fn fortran_source_repeated(n: usize, reps: usize) -> String {
    let single = fortran_source(n);
    // Declare the loop variable and wrap the compute nest (which starts at
    // the first `do k = 1, n`) in `do t = 1, reps`.
    let with_t = single.replace("  integer :: i, j, k\n", "  integer :: i, j, k, t\n");
    let marker = "  do k = 1, n";
    let pos = with_t.find(marker).expect("compute nest marker");
    let (head, tail) = with_t.split_at(pos);
    let tail = tail
        .strip_suffix("end program pw_advection\n")
        .expect("program trailer");
    format!("{head}  do t = 1, {reps}\n{tail}  end do\nend program pw_advection\n")
}

/// The three initial velocity fields the Fortran source sets up.
pub fn initial_fields(n: usize) -> (Grid3, Grid3, Grid3) {
    let mut u = Grid3::new(n);
    let mut v = Grid3::new(n);
    let mut w = Grid3::new(n);
    for k in 0..n + 2 {
        for j in 0..n + 2 {
            for i in 0..n + 2 {
                u.set(i, j, k, 0.01 * i as f64 + 0.02 * j as f64 + 0.03 * k as f64);
                v.set(i, j, k, 0.01 * k as f64 + 0.02 * i as f64 + 0.03 * j as f64);
                w.set(i, j, k, 0.01 * j as f64 + 0.02 * k as f64 + 0.03 * i as f64);
            }
        }
    }
    (u, v, w)
}

/// Clarity-first reference for the source terms.
pub fn reference(u: &Grid3, v: &Grid3, w: &Grid3) -> (Grid3, Grid3, Grid3) {
    let n = u.n;
    let mut su = Grid3::new(n);
    let mut sv = Grid3::new(n);
    let mut sw = Grid3::new(n);
    for k in 1..=n {
        for j in 1..=n {
            for i in 1..=n {
                let su_v = TCX
                    * (u.at(i - 1, j, k) * (u.at(i, j, k) + u.at(i - 1, j, k))
                        - u.at(i + 1, j, k) * (u.at(i, j, k) + u.at(i + 1, j, k)))
                    + TCY
                        * (v.at(i, j, k) * (u.at(i, j - 1, k) + u.at(i, j, k))
                            - v.at(i, j + 1, k) * (u.at(i, j, k) + u.at(i, j + 1, k)))
                    + TZC1 * w.at(i, j, k) * (u.at(i, j, k - 1) + u.at(i, j, k))
                    - TZC2 * w.at(i, j, k + 1) * (u.at(i, j, k) + u.at(i, j, k + 1));
                let sv_v = TCX
                    * (u.at(i, j, k) * (v.at(i - 1, j, k) + v.at(i, j, k))
                        - u.at(i + 1, j, k) * (v.at(i, j, k) + v.at(i + 1, j, k)))
                    + TCY
                        * (v.at(i, j - 1, k) * (v.at(i, j, k) + v.at(i, j - 1, k))
                            - v.at(i, j + 1, k) * (v.at(i, j, k) + v.at(i, j + 1, k)))
                    + TZC1 * w.at(i, j, k) * (v.at(i, j, k - 1) + v.at(i, j, k))
                    - TZC2 * w.at(i, j, k + 1) * (v.at(i, j, k) + v.at(i, j, k + 1));
                let sw_v = TCX
                    * (u.at(i, j, k) * (w.at(i - 1, j, k) + w.at(i, j, k))
                        - u.at(i + 1, j, k) * (w.at(i, j, k) + w.at(i + 1, j, k)))
                    + TCY
                        * (v.at(i, j, k) * (w.at(i, j - 1, k) + w.at(i, j, k))
                            - v.at(i, j + 1, k) * (w.at(i, j, k) + w.at(i, j + 1, k)))
                    + TZC1 * w.at(i, j, k - 1) * (w.at(i, j, k) + w.at(i, j, k - 1))
                    - TZC2 * w.at(i, j, k + 1) * (w.at(i, j, k) + w.at(i, j, k + 1));
                su.set(i, j, k, su_v);
                sv.set(i, j, k, sv_v);
                sw.set(i, j, k, sw_v);
            }
        }
    }
    (su, sv, sw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_parses_and_compiles() {
        let src = fortran_source(4);
        let m = fsc_fortran::compile_to_fir(&src).unwrap();
        assert!(m.live_op_count() > 100);
    }

    #[test]
    fn repeated_source_parses_and_compiles() {
        let src = fortran_source_repeated(4, 3);
        assert!(src.contains("do t = 1, 3"));
        let m = fsc_fortran::compile_to_fir(&src).unwrap();
        assert!(m.live_op_count() > 100);
    }

    #[test]
    fn reference_is_antisymmetric_for_uniform_fields() {
        // Uniform fields: the upwind/downwind products cancel exactly.
        let n = 4;
        let mut u = Grid3::new(n);
        let mut v = Grid3::new(n);
        let mut w = Grid3::new(n);
        for c in [&mut u, &mut v, &mut w] {
            for x in c.data.iter_mut() {
                *x = 2.0;
            }
        }
        let (su, sv, sw) = reference(&u, &v, &w);
        for g in [&su, &sv, &sw] {
            for k in 1..=n {
                for j in 1..=n {
                    for i in 1..=n {
                        assert!(g.at(i, j, k).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn reference_produces_nonzero_terms_for_sheared_fields() {
        let (u, v, w) = initial_fields(4);
        let (su, _, _) = reference(&u, &v, &w);
        assert!(su.at(2, 2, 2).abs() > 1e-9);
    }

    #[test]
    fn halo_untouched_by_reference() {
        let (u, v, w) = initial_fields(4);
        let (su, sv, sw) = reference(&u, &v, &w);
        for g in [&su, &sv, &sw] {
            assert_eq!(g.at(0, 0, 0), 0.0);
            assert_eq!(g.at(5, 5, 5), 0.0);
        }
    }
}
