//! Non-template stencil kernels for the jit tier (Figure 8).
//!
//! Each generator produces a loop nest the specialized template matcher
//! rejects — a transcendental (`sqrt`), a variable per-cell coefficient
//! array, and `min`/`max` clamping — so the fastest available tier for
//! the compute sweep is the stitched jit. The copy sweep still matches
//! the `Copy` template, which makes these programs exercise a *mixed*
//! ladder (specialized + jit) in one region, exactly the gap Figure 8
//! measures against the fused/generic VMs.
//!
//! All three follow the Gauss–Seidel double-buffering idiom (`un` from
//! `u`, then copy back) so every execution tier computes the identical
//! Jacobi-style result, and all three keep their iterates bounded so the
//! benches stay in a numerically tame regime.

/// sqrt-containing relaxation: `un = sqrt(u) + 0.125 * (4 neighbours)`.
/// The `sqrt` keeps it off every linear template; the neighbour sum still
/// collapses into one stitched accumulator chain.
pub fn sqrt_source(n: usize, iters: usize) -> String {
    format!(
        "program jit_sqrt
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {iters}
  integer :: i, j, k, t
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        u(i, j, k) = 1.0 + 0.01 * i + 0.02 * j + 0.03 * k
      end do
    end do
  end do
  do t = 1, niters
    do k = 1, n
      do j = 1, n
        do i = 1, n
          un(i, j, k) = sqrt(u(i, j, k)) + 0.125 * (u(i-1, j, k) + u(i+1, j, k) &
                      + u(i, j-1, k) + u(i, j+1, k))
        end do
      end do
    end do
    do k = 1, n
      do j = 1, n
        do i = 1, n
          u(i, j, k) = un(i, j, k)
        end do
      end do
    end do
  end do
end program jit_sqrt
"
    )
}

/// Variable-coefficient stencil: `un = a(i,j,k) * (4 neighbours)` where
/// `a` is a per-cell array, not a scalar — the templates only accept
/// constant or argument coefficients, so this lands on the jit.
pub fn varcoef_source(n: usize, iters: usize) -> String {
    format!(
        "program jit_varcoef
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {iters}
  integer :: i, j, k, t
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  real(kind=8) :: a(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        u(i, j, k) = 1.0 + 0.01 * i + 0.02 * j + 0.03 * k
        a(i, j, k) = 1.0 / (4.0 + 0.01 * i + 0.01 * j + 0.01 * k)
      end do
    end do
  end do
  do t = 1, niters
    do k = 1, n
      do j = 1, n
        do i = 1, n
          un(i, j, k) = a(i, j, k) * (u(i-1, j, k) + u(i+1, j, k) &
                      + u(i, j-1, k) + u(i, j+1, k))
        end do
      end do
    end do
    do k = 1, n
      do j = 1, n
        do i = 1, n
          u(i, j, k) = un(i, j, k)
        end do
      end do
    end do
  end do
end program jit_varcoef
"
    )
}

/// Flux-limited average: the neighbour average clamped to a band around
/// the centre value via `min`/`max` — non-linear, so template-free.
pub fn minmax_source(n: usize, iters: usize) -> String {
    format!(
        "program jit_minmax
  implicit none
  integer, parameter :: n = {n}
  integer, parameter :: niters = {iters}
  integer :: i, j, k, t
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 0, n+1
    do j = 0, n+1
      do i = 0, n+1
        u(i, j, k) = 1.0 + 0.01 * i + 0.02 * j + 0.03 * k
      end do
    end do
  end do
  do t = 1, niters
    do k = 1, n
      do j = 1, n
        do i = 1, n
          un(i, j, k) = min(max(0.25 * (u(i-1, j, k) + u(i+1, j, k) &
                      + u(i, j-1, k) + u(i, j+1, k)), u(i, j, k) - 0.1), &
                      u(i, j, k) + 0.1)
        end do
      end do
    end do
    do k = 1, n
      do j = 1, n
        do i = 1, n
          u(i, j, k) = un(i, j, k)
        end do
      end do
    end do
  end do
end program jit_minmax
"
    )
}
