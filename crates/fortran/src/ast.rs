//! Abstract syntax tree for the supported Fortran subset.

/// A whole source file: one or more program units.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Program units in source order.
    pub units: Vec<ProgramUnit>,
}

/// Kind of program unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// `program name ... end program`.
    Program,
    /// `subroutine name(args) ... end subroutine`.
    Subroutine,
}

/// A program or subroutine.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramUnit {
    /// Program vs subroutine.
    pub kind: UnitKind,
    /// Unit name (lowercased).
    pub name: String,
    /// Dummy argument names, in order (empty for programs).
    pub args: Vec<String>,
    /// Specification part.
    pub decls: Vec<Decl>,
    /// Execution part.
    pub body: Vec<Stmt>,
}

/// Scalar type of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeSpec {
    /// Default `integer` (32-bit).
    Integer,
    /// `real` with a kind in bytes (4 or 8); `double precision` = kind 8.
    Real {
        /// Kind in bytes.
        kind: u8,
    },
    /// `logical`.
    Logical,
}

/// One dimension of an array declaration: `lower:upper` (default lower 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Dim {
    /// Lower bound expression (must fold to a constant in sema).
    pub lower: Expr,
    /// Upper bound expression.
    pub upper: Expr,
}

/// Declared intent of a dummy argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// `intent(in)`.
    In,
    /// `intent(out)`.
    Out,
    /// `intent(inout)` or unspecified.
    InOut,
}

/// A variable or parameter declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name (lowercased).
    pub name: String,
    /// Scalar element type.
    pub ty: TypeSpec,
    /// Array dimensions; empty = scalar.
    pub dims: Vec<Dim>,
    /// Declared `allocatable` (dims then give rank via `:` placeholders).
    pub allocatable: bool,
    /// `parameter` initialiser, if this is a named constant.
    pub parameter: Option<Expr>,
    /// Dummy-argument intent (meaningful only in subroutines).
    pub intent: Intent,
    /// 1-based source line the declaration starts on (for diagnostics).
    pub line: u32,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `==`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.and.`
    And,
    /// `.or.`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// `.not.`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Logical literal.
    Logical(bool),
    /// Scalar variable or named constant reference.
    Var(String),
    /// Array element `name(i, j, ...)` — also the syntax of function calls;
    /// sema disambiguates using the symbol table.
    Index {
        /// Array (or function) name.
        name: String,
        /// Index (or argument) expressions.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
}

impl Expr {
    /// Build a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Build a unary node.
    pub fn un(op: UnOp, operand: Expr) -> Expr {
        Expr::Un {
            op,
            operand: Box::new(operand),
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element.
    Element {
        /// Array name.
        name: String,
        /// Index expressions.
        indices: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value`.
    Assign {
        /// Left-hand side.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `do var = lb, ub[, step] ... end do`.
    Do {
        /// Loop variable name.
        var: String,
        /// Lower bound.
        lb: Expr,
        /// Inclusive upper bound.
        ub: Expr,
        /// Step (default 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) then ... [else ...] end if`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (empty if absent).
        else_body: Vec<Stmt>,
    },
    /// `call name(args)`.
    Call {
        /// Subroutine name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `allocate(name(dims), ...)`.
    Allocate {
        /// Each allocation: array name plus its runtime dims.
        items: Vec<(String, Vec<Dim>)>,
    },
    /// `deallocate(name, ...)`.
    Deallocate {
        /// Array names.
        names: Vec<String>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::bin(BinOp::Add, Expr::Int(1), Expr::Int(2));
        match e {
            Expr::Bin { op: BinOp::Add, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let n = Expr::un(UnOp::Neg, Expr::Real(1.5));
        match n {
            Expr::Un { op: UnOp::Neg, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
