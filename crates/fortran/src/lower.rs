//! Lowering the analysed AST to the FIR dialect, reproducing Flang's
//! structural patterns (see crate docs).
//!
//! Simplifications relative to full Flang, documented in DESIGN.md:
//!
//! * both `real(4)` and `real(8)` lower to `f64` (as if `-fdefault-real-8`);
//! * `allocate` must appear at the top nesting level of a unit body so the
//!   heap binding dominates all uses;
//! * dummy arguments are passed by reference (`!fir.ref<...>`), arrays with
//!   their full static shape.

use std::collections::HashMap;

use fsc_dialects::{arith, fir, func, math};
use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{Attribute, BlockId, IrError, Module, OpBuilder, Result, Type, ValueId};

use crate::ast::*;
use crate::sema::{expr_type, Analyzed, Symbol, SymbolKind, UnitInfo, INTRINSICS};

fn err(msg: impl std::fmt::Display) -> IrError {
    IrError::from_diagnostic(Diagnostic::error(
        codes::LOWER,
        format!("lowering error: {msg}"),
    ))
}

/// Look up a symbol that sema is expected to have resolved. Failure means
/// the AST and the analysis went out of sync — reported, not panicked on.
fn symbol_of<'i>(info: &'i UnitInfo, name: &str) -> Result<&'i Symbol> {
    info.symbols
        .get(name)
        .ok_or_else(|| err(format!("'{name}' missing from the symbol table")))
}

/// Fetch intrinsic argument `i`, guarding against arity drift between
/// sema's checks and the lowering patterns.
fn arg(args: &[Expr], i: usize) -> Result<&Expr> {
    args.get(i)
        .ok_or_else(|| err(format!("intrinsic argument {i} missing")))
}

/// Attribute on alloca/allocmem ops holding the Fortran lower bounds.
pub const LBOUNDS_ATTR: &str = "fortran_lbounds";
/// Attribute marking the main program's function.
pub const PROGRAM_ATTR: &str = "fortran_program";

/// Lower an analysed source file to a FIR module.
pub fn lower_to_fir(analyzed: &Analyzed) -> Result<Module> {
    let mut module = Module::new();
    for (unit, info) in analyzed.file.units.iter().zip(&analyzed.units) {
        lower_unit(&mut module, unit, info)?;
    }
    Ok(module)
}

/// Map a Fortran scalar type to an IR type.
fn scalar_type(ty: TypeSpec) -> Type {
    match ty {
        TypeSpec::Integer => Type::i32(),
        TypeSpec::Real { .. } => Type::f64(),
        TypeSpec::Logical => Type::bool(),
    }
}

struct Lowerer<'a> {
    module: &'a mut Module,
    info: &'a UnitInfo,
    /// Variable name → reference value (alloca result / heap / dummy arg).
    bindings: HashMap<String, ValueId>,
    /// Fortran lower bounds per array name (for index rebasing).
    lbounds: HashMap<String, Vec<i64>>,
    /// Allocation sites consumed in order (from sema).
    next_allocation: usize,
}

fn lower_unit(module: &mut Module, unit: &ProgramUnit, info: &UnitInfo) -> Result<()> {
    // Build the function signature from dummy arguments.
    let mut arg_types = Vec::new();
    for arg in &unit.args {
        let sym = symbol_of(info, arg)?;
        let ty = match &sym.kind {
            SymbolKind::Scalar => Type::fir_ref(scalar_type(sym.ty)),
            SymbolKind::Array { extents, .. } => {
                Type::fir_ref(Type::fir_array(extents.clone(), scalar_type(sym.ty)))
            }
            SymbolKind::AllocArray { .. } => {
                return Err(err(format!(
                    "allocatable dummy argument '{arg}' unsupported"
                )));
            }
            SymbolKind::Param(_) => {
                return Err(err(format!("dummy argument '{arg}' is a parameter")));
            }
        };
        arg_types.push(ty);
    }
    let (f, entry) = func::build_func(module, &unit.name, arg_types, vec![]);
    if unit.kind == UnitKind::Program {
        module
            .op_mut(f.0)
            .attrs
            .insert(PROGRAM_ATTR.into(), Attribute::Unit);
    }
    // Terminator first; everything else inserts before it.
    {
        let mut b = OpBuilder::at_end(module, entry);
        func::build_return(&mut b, vec![]);
    }

    let mut lw = Lowerer {
        module,
        info,
        bindings: HashMap::new(),
        lbounds: HashMap::new(),
        next_allocation: 0,
    };

    // Bind dummy arguments.
    let args = f.arguments(lw.module);
    for (name, value) in unit.args.iter().zip(args) {
        lw.bindings.insert(name.clone(), value);
        if let SymbolKind::Array { lbounds, .. } = &symbol_of(info, name)?.kind {
            lw.lbounds.insert(name.clone(), lbounds.clone());
        }
    }

    // Allocate locals.
    for (name, sym) in &info.symbols {
        if sym.is_dummy || matches!(sym.kind, SymbolKind::Param(_)) {
            continue;
        }
        match &sym.kind {
            SymbolKind::Scalar => {
                let mut b = lw.cursor(entry)?;
                let r = fir::alloca(&mut b, name, scalar_type(sym.ty));
                lw.bindings.insert(name.clone(), r);
            }
            SymbolKind::Array { lbounds, extents } => {
                let arr_ty = Type::fir_array(extents.clone(), scalar_type(sym.ty));
                let mut b = lw.cursor(entry)?;
                let r = fir::alloca(&mut b, name, arr_ty);
                let op = lw
                    .module
                    .defining_op(r)
                    .ok_or_else(|| err(format!("alloca for '{name}' produced no op")))?;
                lw.module
                    .op_mut(op)
                    .attrs
                    .insert(LBOUNDS_ATTR.into(), Attribute::IndexList(lbounds.clone()));
                lw.bindings.insert(name.clone(), r);
                lw.lbounds.insert(name.clone(), lbounds.clone());
            }
            SymbolKind::AllocArray { .. } => {
                // Bound at the allocate statement.
            }
            SymbolKind::Param(_) => {}
        }
    }

    lw.lower_stmts(entry, &unit.body)?;
    Ok(())
}

impl<'a> Lowerer<'a> {
    /// Builder inserting before the block's terminator. Lowering always
    /// places the terminator first, so a missing one means the module was
    /// corrupted — reported as a diagnostic rather than a panic.
    fn cursor(&mut self, block: BlockId) -> Result<OpBuilder<'_>> {
        let term = self
            .module
            .block_terminator(block)
            .ok_or_else(|| err("block lost its terminator during lowering"))?;
        Ok(OpBuilder::before(self.module, term))
    }

    fn binding(&self, name: &str) -> Result<ValueId> {
        self.bindings.get(name).copied().ok_or_else(|| {
            err(format!(
                "'{name}' has no storage binding (allocate it first?)"
            ))
        })
    }

    fn lower_stmts(&mut self, block: BlockId, stmts: &[Stmt]) -> Result<()> {
        for stmt in stmts {
            self.lower_stmt(block, stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, block: BlockId, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Assign { target, value } => self.lower_assign(block, target, value),
            Stmt::Do {
                var,
                lb,
                ub,
                step,
                body,
            } => self.lower_do(block, var, lb, ub, step.as_ref(), body),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond_v = self.lower_expr_as(block, cond, TypeSpec::Logical)?;
                let if_op = {
                    let mut b = self.cursor(block)?;
                    fir::build_if(&mut b, cond_v)
                };
                let then_b = if_op.then_block(self.module);
                self.lower_stmts(then_b, then_body)?;
                let else_b = if_op.else_block(self.module);
                self.lower_stmts(else_b, else_body)?;
                Ok(())
            }
            Stmt::Call { name, args } => self.lower_call(block, name, args),
            Stmt::Allocate { items } => {
                for (name, _) in items {
                    let (alloc_name, bounds) = self
                        .info
                        .allocations
                        .get(self.next_allocation)
                        .cloned()
                        .ok_or_else(|| err("allocate out of sync with analysis"))?;
                    self.next_allocation += 1;
                    debug_assert_eq!(&alloc_name, name);
                    let sym = symbol_of(self.info, name)?;
                    let extents: Vec<i64> = bounds.iter().map(|&(_, e)| e).collect();
                    let lbs: Vec<i64> = bounds.iter().map(|&(l, _)| l).collect();
                    let arr_ty = Type::fir_array(extents, scalar_type(sym.ty));
                    let mut b = self.cursor(block)?;
                    let r = fir::allocmem(&mut b, name, arr_ty);
                    let op = self
                        .module
                        .defining_op(r)
                        .ok_or_else(|| err(format!("allocmem for '{name}' produced no op")))?;
                    self.module
                        .op_mut(op)
                        .attrs
                        .insert(LBOUNDS_ATTR.into(), Attribute::IndexList(lbs.clone()));
                    self.bindings.insert(name.clone(), r);
                    self.lbounds.insert(name.clone(), lbs);
                }
                Ok(())
            }
            Stmt::Deallocate { names } => {
                for name in names {
                    let heap = self.binding(name)?;
                    let mut b = self.cursor(block)?;
                    fir::freemem(&mut b, heap);
                    self.bindings.remove(name);
                }
                Ok(())
            }
        }
    }

    fn lower_assign(&mut self, block: BlockId, target: &LValue, value: &Expr) -> Result<()> {
        match target {
            LValue::Var(name) => {
                let sym_ty = symbol_of(self.info, name)?.ty;
                let v = self.lower_expr_as(block, value, sym_ty)?;
                let dest = self.binding(name)?;
                let mut b = self.cursor(block)?;
                fir::store(&mut b, v, dest);
                Ok(())
            }
            LValue::Element { name, indices } => {
                let sym_ty = symbol_of(self.info, name)?.ty;
                let v = self.lower_expr_as(block, value, sym_ty)?;
                let elem_ref = self.lower_element_ref(block, name, indices)?;
                let mut b = self.cursor(block)?;
                fir::store(&mut b, v, elem_ref);
                Ok(())
            }
        }
    }

    /// Compute the `!fir.ref<elem>` of `name(indices...)`: per dimension,
    /// evaluate the i32 index expression, widen to i64, subtract the declared
    /// lower bound, and convert to `index` — exactly Flang's addressing
    /// pattern that the discovery pass later walks backwards.
    fn lower_element_ref(
        &mut self,
        block: BlockId,
        name: &str,
        indices: &[Expr],
    ) -> Result<ValueId> {
        let array_ref = self.binding(name)?;
        let lbounds = self
            .lbounds
            .get(name)
            .cloned()
            .unwrap_or_else(|| vec![1; indices.len()]);
        let mut zero_based = Vec::with_capacity(indices.len());
        for (idx_expr, &lb) in indices.iter().zip(&lbounds) {
            let i32_v = self.lower_expr_as(block, idx_expr, TypeSpec::Integer)?;
            let mut b = self.cursor(block)?;
            let wide = fir::convert(&mut b, i32_v, Type::i64());
            let lb_c = arith::const_int(&mut b, lb, Type::i64());
            let rebased = arith::subi(&mut b, wide, lb_c);
            let as_index = fir::convert(&mut b, rebased, Type::Index);
            zero_based.push(as_index);
        }
        let mut b = self.cursor(block)?;
        Ok(fir::coordinate_of(&mut b, array_ref, zero_based))
    }

    /// Lower an expression and coerce the result to `want`.
    fn lower_expr_as(&mut self, block: BlockId, expr: &Expr, want: TypeSpec) -> Result<ValueId> {
        let (v, got) = self.lower_expr(block, expr)?;
        self.coerce(block, v, got, want)
    }

    fn coerce(
        &mut self,
        block: BlockId,
        v: ValueId,
        got: TypeSpec,
        want: TypeSpec,
    ) -> Result<ValueId> {
        let same = matches!(
            (got, want),
            (TypeSpec::Integer, TypeSpec::Integer)
                | (TypeSpec::Logical, TypeSpec::Logical)
                | (TypeSpec::Real { .. }, TypeSpec::Real { .. })
        );
        if same {
            return Ok(v);
        }
        let target = scalar_type(want);
        let mut b = self.cursor(block)?;
        Ok(fir::convert(&mut b, v, target))
    }

    fn lower_expr(&mut self, block: BlockId, expr: &Expr) -> Result<(ValueId, TypeSpec)> {
        match expr {
            Expr::Int(v) => {
                let mut b = self.cursor(block)?;
                Ok((arith::const_int(&mut b, *v, Type::i32()), TypeSpec::Integer))
            }
            Expr::Real(v) => {
                let mut b = self.cursor(block)?;
                Ok((arith::const_f64(&mut b, *v), TypeSpec::Real { kind: 8 }))
            }
            Expr::Logical(v) => {
                let mut b = self.cursor(block)?;
                Ok((
                    arith::const_int(&mut b, *v as i64, Type::bool()),
                    TypeSpec::Logical,
                ))
            }
            Expr::Var(name) => {
                let sym = symbol_of(self.info, name)?;
                if let SymbolKind::Param(c) = sym.kind {
                    let mut b = self.cursor(block)?;
                    return Ok(match c {
                        crate::sema::Const::Int(v) => {
                            (arith::const_int(&mut b, v, Type::i32()), TypeSpec::Integer)
                        }
                        crate::sema::Const::Real(v) => {
                            (arith::const_f64(&mut b, v), TypeSpec::Real { kind: 8 })
                        }
                        crate::sema::Const::Logical(v) => (
                            arith::const_int(&mut b, v as i64, Type::bool()),
                            TypeSpec::Logical,
                        ),
                    });
                }
                let r = self.binding(name)?;
                let mut b = self.cursor(block)?;
                Ok((fir::load(&mut b, r), sym.ty))
            }
            Expr::Index { name, indices } => {
                if INTRINSICS.contains(&name.as_str()) {
                    return self.lower_intrinsic(block, name, indices);
                }
                let sym_ty = symbol_of(self.info, name)?.ty;
                let elem_ref = self.lower_element_ref(block, name, indices)?;
                let mut b = self.cursor(block)?;
                Ok((fir::load(&mut b, elem_ref), sym_ty))
            }
            Expr::Un {
                op: UnOp::Neg,
                operand,
            } => {
                let (v, ty) = self.lower_expr(block, operand)?;
                let mut b = self.cursor(block)?;
                match ty {
                    TypeSpec::Real { .. } => Ok((arith::negf(&mut b, v), ty)),
                    TypeSpec::Integer => {
                        let zero = arith::const_int(&mut b, 0, Type::i32());
                        Ok((arith::subi(&mut b, zero, v), ty))
                    }
                    TypeSpec::Logical => Err(err("cannot negate a logical")),
                }
            }
            Expr::Un {
                op: UnOp::Not,
                operand,
            } => {
                let v = self.lower_expr_as(block, operand, TypeSpec::Logical)?;
                let mut b = self.cursor(block)?;
                let one = arith::const_int(&mut b, 1, Type::bool());
                Ok((
                    arith::binary(&mut b, "arith.xori", v, one),
                    TypeSpec::Logical,
                ))
            }
            Expr::Bin { op, lhs, rhs } => self.lower_binop(block, *op, lhs, rhs),
        }
    }

    fn lower_binop(
        &mut self,
        block: BlockId,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(ValueId, TypeSpec)> {
        use BinOp::*;
        // Special-case small constant integer powers: Flang unrolls these to
        // multiplies, which also keeps stencil bodies free of math calls.
        if op == Pow {
            if let Expr::Int(k) = rhs {
                if (1..=4).contains(k) {
                    let (base, bty) = self.lower_expr(block, lhs)?;
                    if matches!(bty, TypeSpec::Real { .. }) {
                        let mut acc = base;
                        let mut b = self.cursor(block)?;
                        for _ in 1..*k {
                            acc = arith::mulf(&mut b, acc, base);
                        }
                        return Ok((acc, bty));
                    }
                }
            }
            let l = self.lower_expr_as(block, lhs, TypeSpec::Real { kind: 8 })?;
            let r = self.lower_expr_as(block, rhs, TypeSpec::Real { kind: 8 })?;
            let mut b = self.cursor(block)?;
            return Ok((math::powf(&mut b, l, r), TypeSpec::Real { kind: 8 }));
        }

        if matches!(op, And | Or) {
            let l = self.lower_expr_as(block, lhs, TypeSpec::Logical)?;
            let r = self.lower_expr_as(block, rhs, TypeSpec::Logical)?;
            let name = if op == And { "arith.andi" } else { "arith.ori" };
            let mut b = self.cursor(block)?;
            return Ok((arith::binary(&mut b, name, l, r), TypeSpec::Logical));
        }

        let lt = expr_type(lhs, self.info)?;
        let rt = expr_type(rhs, self.info)?;
        let operand_ty =
            if matches!(lt, TypeSpec::Real { .. }) || matches!(rt, TypeSpec::Real { .. }) {
                TypeSpec::Real { kind: 8 }
            } else {
                TypeSpec::Integer
            };
        let l = self.lower_expr_as(block, lhs, operand_ty)?;
        let r = self.lower_expr_as(block, rhs, operand_ty)?;
        let is_real = matches!(operand_ty, TypeSpec::Real { .. });

        if matches!(op, Eq | Ne | Lt | Le | Gt | Ge) {
            let pred = match op {
                Eq => arith::CmpPredicate::Eq,
                Ne => arith::CmpPredicate::Ne,
                Lt => arith::CmpPredicate::Lt,
                Le => arith::CmpPredicate::Le,
                Gt => arith::CmpPredicate::Gt,
                _ => arith::CmpPredicate::Ge,
            };
            let mut b = self.cursor(block)?;
            let v = if is_real {
                arith::cmpf(&mut b, pred, l, r)
            } else {
                arith::cmpi(&mut b, pred, l, r)
            };
            return Ok((v, TypeSpec::Logical));
        }

        let name = match (op, is_real) {
            (Add, true) => "arith.addf",
            (Sub, true) => "arith.subf",
            (Mul, true) => "arith.mulf",
            (Div, true) => "arith.divf",
            (Add, false) => "arith.addi",
            (Sub, false) => "arith.subi",
            (Mul, false) => "arith.muli",
            (Div, false) => "arith.divsi",
            _ => return Err(err(format!("operator {op:?} is not arithmetic"))),
        };
        let mut b = self.cursor(block)?;
        Ok((arith::binary(&mut b, name, l, r), operand_ty))
    }

    fn lower_intrinsic(
        &mut self,
        block: BlockId,
        name: &str,
        args: &[Expr],
    ) -> Result<(ValueId, TypeSpec)> {
        let real8 = TypeSpec::Real { kind: 8 };
        match name {
            "sqrt" | "exp" | "log" | "sin" | "cos" | "tanh" => {
                let v = self.lower_expr_as(block, arg(args, 0)?, real8)?;
                let mut b = self.cursor(block)?;
                let op_name = math::intrinsic_to_op(name)
                    .ok_or_else(|| err(format!("no math op for intrinsic '{name}'")))?;
                Ok((math::unary(&mut b, op_name, v), real8))
            }
            "abs" => {
                let (v, ty) = self.lower_expr(block, arg(args, 0)?)?;
                if matches!(ty, TypeSpec::Real { .. }) {
                    let mut b = self.cursor(block)?;
                    Ok((math::unary(&mut b, "math.absf", v), ty))
                } else {
                    // |i| = select(i < 0, -i, i)
                    let mut b = self.cursor(block)?;
                    let zero = arith::const_int(&mut b, 0, Type::i32());
                    let neg = arith::subi(&mut b, zero, v);
                    let is_neg = arith::cmpi(&mut b, arith::CmpPredicate::Lt, v, zero);
                    Ok((arith::select(&mut b, is_neg, neg, v), ty))
                }
            }
            "atan2" => {
                let x = self.lower_expr_as(block, arg(args, 0)?, real8)?;
                let y = self.lower_expr_as(block, arg(args, 1)?, real8)?;
                let mut b = self.cursor(block)?;
                Ok((math::binary(&mut b, "math.atan2", x, y), real8))
            }
            "min" | "max" => {
                let ty = expr_type(arg(args, 0)?, self.info)?;
                let is_real = matches!(ty, TypeSpec::Real { .. });
                let want = if is_real { real8 } else { TypeSpec::Integer };
                let mut acc = self.lower_expr_as(block, arg(args, 0)?, want)?;
                for a in &args[1..] {
                    let v = self.lower_expr_as(block, a, want)?;
                    let mut b = self.cursor(block)?;
                    acc = if is_real {
                        let op = if name == "min" {
                            "arith.minf"
                        } else {
                            "arith.maxf"
                        };
                        arith::binary(&mut b, op, acc, v)
                    } else {
                        let pred = if name == "min" {
                            arith::CmpPredicate::Lt
                        } else {
                            arith::CmpPredicate::Gt
                        };
                        let c = arith::cmpi(&mut b, pred, acc, v);
                        arith::select(&mut b, c, acc, v)
                    };
                }
                Ok((acc, want))
            }
            "mod" => {
                let l = self.lower_expr_as(block, arg(args, 0)?, TypeSpec::Integer)?;
                let r = self.lower_expr_as(block, arg(args, 1)?, TypeSpec::Integer)?;
                let mut b = self.cursor(block)?;
                Ok((
                    arith::binary(&mut b, "arith.remsi", l, r),
                    TypeSpec::Integer,
                ))
            }
            "dble" | "real" => {
                let v = self.lower_expr_as(block, arg(args, 0)?, real8)?;
                Ok((v, real8))
            }
            "int" => {
                let v = self.lower_expr_as(block, arg(args, 0)?, TypeSpec::Integer)?;
                Ok((v, TypeSpec::Integer))
            }
            other => Err(err(format!("intrinsic '{other}' not supported"))),
        }
    }

    fn lower_do(
        &mut self,
        block: BlockId,
        var: &str,
        lb: &Expr,
        ub: &Expr,
        step: Option<&Expr>,
        body: &[Stmt],
    ) -> Result<()> {
        let lb_i32 = self.lower_expr_as(block, lb, TypeSpec::Integer)?;
        let ub_i32 = self.lower_expr_as(block, ub, TypeSpec::Integer)?;
        let step_i32 = match step {
            Some(s) => self.lower_expr_as(block, s, TypeSpec::Integer)?,
            None => {
                let mut b = self.cursor(block)?;
                arith::const_int(&mut b, 1, Type::i32())
            }
        };
        let var_ref = self.binding(var)?;
        let loop_op = {
            let mut b = self.cursor(block)?;
            let lb_idx = fir::convert(&mut b, lb_i32, Type::Index);
            let ub_idx = fir::convert(&mut b, ub_i32, Type::Index);
            let step_idx = fir::convert(&mut b, step_i32, Type::Index);
            fir::build_do_loop(&mut b, lb_idx, ub_idx, step_idx)
        };
        // Flang stores the iv into the loop variable's alloca at the top of
        // the body; all uses in the body then *load* the variable.
        let body_block = loop_op.body(self.module);
        let iv = loop_op.iv(self.module);
        {
            let mut b = self.cursor(body_block)?;
            let iv_i32 = fir::convert(&mut b, iv, Type::i32());
            fir::store(&mut b, iv_i32, var_ref);
        }
        self.lower_stmts(body_block, body)
    }

    fn lower_call(&mut self, block: BlockId, name: &str, args: &[Expr]) -> Result<()> {
        let mut operands = Vec::with_capacity(args.len());
        for a in args {
            match a {
                // Variables and whole arrays pass their reference.
                Expr::Var(vname)
                    if !matches!(
                        self.info.symbols.get(vname).map(|s| &s.kind),
                        Some(SymbolKind::Param(_)) | None
                    ) =>
                {
                    operands.push(self.binding(vname)?);
                }
                // Everything else: evaluate into a temporary and pass its ref.
                other => {
                    let (v, ty) = self.lower_expr(block, other)?;
                    let mut b = self.cursor(block)?;
                    let tmp = fir::alloca(&mut b, "call_tmp", scalar_type(ty));
                    fir::store(&mut b, v, tmp);
                    operands.push(tmp);
                }
            }
        }
        let mut b = self.cursor(block)?;
        fir::call(&mut b, name, operands, vec![]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_to_fir;
    use fsc_ir::walk::collect_ops_named;

    /// The paper's Listing 1.
    const LISTING1: &str = "
program average
  integer, parameter :: n = 256
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    #[test]
    fn listing1_lowers_to_nested_do_loops() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(LISTING1)?;
        let loops = collect_ops_named(&m, fir::DO_LOOP);
        assert_eq!(loops.len(), 2);
        // The inner loop contains exactly one store (to res).
        let stores = collect_ops_named(&m, fir::STORE);
        // 2 iv stores (one per loop) + 1 array store.
        assert_eq!(stores.len(), 3);
        let coords = collect_ops_named(&m, fir::COORDINATE_OF);
        // 4 reads + 1 write.
        assert_eq!(coords.len(), 5);
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }

    #[test]
    fn program_attr_marks_entry() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir("program t\nend program t")?;
        let f = func::find_func(&m, "t").ok_or("missing value")?;
        assert!(m.op(f.0).attr(PROGRAM_ATTR).is_some());
        Ok(())
    }

    #[test]
    fn array_alloca_records_lbounds() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
real(kind=8) :: u(0:9, -1:5)
u(0, -1) = 1.0
end program t",
        )?;
        let allocas = collect_ops_named(&m, fir::ALLOCA);
        let arr = allocas
            .iter()
            .find(|&&op| m.op(op).attr("bindc_name").and_then(Attribute::as_str) == Some("u"))
            .ok_or("missing value")?;
        assert_eq!(
            m.op(*arr)
                .attr(LBOUNDS_ATTR)
                .ok_or("missing value")?
                .as_index_list(),
            Some(&[0, -1][..])
        );
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }

    #[test]
    fn allocatable_lowers_to_allocmem_freemem(
    ) -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
integer, parameter :: n = 4
real(kind=8), dimension(:,:), allocatable :: u
allocate(u(0:n+1, 0:n+1))
u(1, 1) = 2.0
deallocate(u)
end program t",
        )?;
        assert_eq!(collect_ops_named(&m, fir::ALLOCMEM).len(), 1);
        assert_eq!(collect_ops_named(&m, fir::FREEMEM).len(), 1);
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }

    #[test]
    fn do_loop_stores_iv_into_variable() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
integer :: i
real(kind=8) :: x
do i = 1, 4
  x = 1.0
end do
end program t",
        )?;
        let loops = collect_ops_named(&m, fir::DO_LOOP);
        assert_eq!(loops.len(), 1);
        let lp = fir::DoLoopOp(loops[0]);
        let body_ops = lp.body_ops(&m);
        // First two body ops: convert iv, store to i's alloca.
        assert_eq!(m.op(body_ops[0]).name.full(), fir::CONVERT);
        assert_eq!(m.op(body_ops[1]).name.full(), fir::STORE);
        Ok(())
    }

    #[test]
    fn subroutine_args_are_references() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "subroutine s(a, n2)
real(kind=8), intent(inout) :: a(8)
integer, intent(in) :: n2
a(1) = 1.0
end subroutine s",
        )?;
        let f = func::find_func(&m, "s").ok_or("missing value")?;
        let (ins, _) = f.signature(&m);
        assert_eq!(ins[0], Type::fir_ref(Type::fir_array(vec![8], Type::f64())));
        assert_eq!(ins[1], Type::fir_ref(Type::i32()));
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }

    #[test]
    fn call_passes_array_reference_directly() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let m = compile_to_fir(
            "subroutine s(a)
real(kind=8), intent(inout) :: a(8)
a(1) = 0.0
end subroutine s
program t
real(kind=8) :: x(8)
call s(x)
end program t",
        )?;
        let calls = collect_ops_named(&m, fir::CALL);
        assert_eq!(calls.len(), 1);
        let arg = m.op(calls[0]).operands[0];
        let def = m.defining_op(arg).ok_or("missing value")?;
        assert_eq!(m.op(def).name.full(), fir::ALLOCA);
        Ok(())
    }

    #[test]
    fn if_lowering_builds_two_regions() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
real(kind=8) :: x
if (x > 0.0) then
  x = 1.0
else
  x = 2.0
end if
end program t",
        )?;
        let ifs = collect_ops_named(&m, fir::IF);
        assert_eq!(ifs.len(), 1);
        assert_eq!(m.op(ifs[0]).regions.len(), 2);
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }

    #[test]
    fn integer_pow_unrolls_to_multiplies() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
real(kind=8) :: x, y
y = x ** 2
end program t",
        )?;
        assert!(collect_ops_named(&m, "math.powf").is_empty());
        assert_eq!(collect_ops_named(&m, "arith.mulf").len(), 1);
        Ok(())
    }

    #[test]
    fn general_pow_uses_math() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
real(kind=8) :: x, y, z
z = x ** y
end program t",
        )?;
        assert_eq!(collect_ops_named(&m, "math.powf").len(), 1);
        Ok(())
    }

    #[test]
    fn mixed_arithmetic_inserts_converts() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
integer :: i
real(kind=8) :: x
i = 3
x = x + i
end program t",
        )?;
        // At least one conversion from i32 to f64.
        let converts = collect_ops_named(&m, fir::CONVERT);
        assert!(converts
            .iter()
            .any(|&c| m.value_type(m.result(c)) == &Type::f64()));
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }

    #[test]
    fn intrinsics_lower() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m = compile_to_fir(
            "program t
real(kind=8) :: x, y
integer :: i
y = sqrt(x) + max(x, y) + abs(x)
i = mod(i, 3)
y = min(x, y, 2.0)
end program t",
        )?;
        assert_eq!(collect_ops_named(&m, "math.sqrt").len(), 1);
        assert_eq!(collect_ops_named(&m, "math.absf").len(), 1);
        assert_eq!(collect_ops_named(&m, "arith.maxf").len(), 1);
        assert_eq!(collect_ops_named(&m, "arith.remsi").len(), 1);
        assert_eq!(collect_ops_named(&m, "arith.minf").len(), 2);
        fsc_dialects::verify::verify(&m)?;
        Ok(())
    }
}
