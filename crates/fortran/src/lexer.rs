//! Free-form Fortran lexer.
//!
//! Produces a flat token stream with explicit end-of-statement tokens
//! (newlines and `;`). Handles `!` comments, `&` continuations, and
//! case-insensitive keywords/identifiers (everything is lowercased).

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{IrError, Result};

/// Kinds of lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword, lowercased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (covers `1.0`, `1.d0`, `2.5e-1`, `1.0_8`).
    Real(f64),
    /// `.true.` / `.false.`
    Logical(bool),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    Pow,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// `::`
    DoubleColon,
    /// `:`
    Colon,
    /// `%` (derived-type access; lexed but unsupported downstream)
    Percent,
    /// End of statement (newline or `;`).
    Eos,
    /// End of file.
    Eof,
}

/// A token plus the 1-based source position it starts at.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number of the token's first character.
    pub col: u32,
}

fn err(code: &'static str, line: u32, col: u32, msg: impl std::fmt::Display) -> IrError {
    IrError::from_diagnostic(
        Diagnostic::error(code, format!("lex error: {msg}")).at_line_col(line, col),
    )
}

/// Lex free-form Fortran source into tokens.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut tokens: Vec<Token> = Vec::new();
    let bytes = source.as_bytes();
    let mut pos = 0usize;
    let mut line: u32 = 1;
    // Byte offset where the current line starts, for column tracking.
    let mut line_start = 0usize;
    // Set when a `&` continuation was seen: swallow the next newline.
    let mut continuation = false;

    while pos < bytes.len() {
        let c = bytes[pos];
        let tok_start = pos;
        // Defined inside the loop so it can see `tok_start` (macro hygiene).
        macro_rules! push {
            ($kind:expr) => {
                tokens.push(Token {
                    kind: $kind,
                    line,
                    col: (tok_start - line_start + 1) as u32,
                })
            };
        }
        match c {
            b' ' | b'\t' | b'\r' => pos += 1,
            b'!' => {
                // Comment to end of line.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'\n' => {
                pos += 1;
                if continuation {
                    continuation = false;
                } else if !matches!(tokens.last().map(|t| &t.kind), None | Some(TokenKind::Eos)) {
                    push!(TokenKind::Eos);
                }
                line += 1;
                line_start = pos;
            }
            b';' => {
                pos += 1;
                if !matches!(tokens.last().map(|t| &t.kind), None | Some(TokenKind::Eos)) {
                    push!(TokenKind::Eos);
                }
            }
            b'&' => {
                continuation = true;
                pos += 1;
            }
            b'+' => {
                push!(TokenKind::Plus);
                pos += 1;
            }
            b'-' => {
                push!(TokenKind::Minus);
                pos += 1;
            }
            b'*' => {
                if bytes.get(pos + 1) == Some(&b'*') {
                    push!(TokenKind::Pow);
                    pos += 2;
                } else {
                    push!(TokenKind::Star);
                    pos += 1;
                }
            }
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Ne);
                    pos += 2;
                } else {
                    push!(TokenKind::Slash);
                    pos += 1;
                }
            }
            b'(' => {
                push!(TokenKind::LParen);
                pos += 1;
            }
            b')' => {
                push!(TokenKind::RParen);
                pos += 1;
            }
            b',' => {
                push!(TokenKind::Comma);
                pos += 1;
            }
            b'%' => {
                push!(TokenKind::Percent);
                pos += 1;
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Eq);
                    pos += 2;
                } else {
                    push!(TokenKind::Assign);
                    pos += 1;
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Le);
                    pos += 2;
                } else {
                    push!(TokenKind::Lt);
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(TokenKind::Ge);
                    pos += 2;
                } else {
                    push!(TokenKind::Gt);
                    pos += 1;
                }
            }
            b':' => {
                if bytes.get(pos + 1) == Some(&b':') {
                    push!(TokenKind::DoubleColon);
                    pos += 2;
                } else {
                    push!(TokenKind::Colon);
                    pos += 1;
                }
            }
            b'.' => {
                // Dot-operator (.and., .lt., .true., ...) or a real literal
                // like `.5`.
                if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) {
                    let col = (tok_start - line_start + 1) as u32;
                    let (tok, next) = lex_number(bytes, pos, line, col)?;
                    push!(tok);
                    pos = next;
                } else {
                    let end = bytes[pos + 1..]
                        .iter()
                        .position(|&b| b == b'.')
                        .map(|i| pos + 1 + i)
                        .ok_or_else(|| {
                            err(
                                codes::LEX_BAD_LITERAL,
                                line,
                                (tok_start - line_start + 1) as u32,
                                "unterminated dot-operator",
                            )
                        })?;
                    let word = source[pos + 1..end].to_ascii_lowercase();
                    let kind = match word.as_str() {
                        "and" => TokenKind::And,
                        "or" => TokenKind::Or,
                        "not" => TokenKind::Not,
                        "true" => TokenKind::Logical(true),
                        "false" => TokenKind::Logical(false),
                        "eq" => TokenKind::Eq,
                        "ne" => TokenKind::Ne,
                        "lt" => TokenKind::Lt,
                        "le" => TokenKind::Le,
                        "gt" => TokenKind::Gt,
                        "ge" => TokenKind::Ge,
                        other => {
                            return Err(err(
                                codes::LEX_BAD_LITERAL,
                                line,
                                (tok_start - line_start + 1) as u32,
                                format!("unknown operator .{other}."),
                            ))
                        }
                    };
                    push!(kind);
                    pos = end + 1;
                }
            }
            b'0'..=b'9' => {
                let col = (tok_start - line_start + 1) as u32;
                let (tok, next) = lex_number(bytes, pos, line, col)?;
                push!(tok);
                pos = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let word = source[start..pos].to_ascii_lowercase();
                push!(TokenKind::Ident(word));
            }
            other => {
                return Err(err(
                    codes::LEX_UNEXPECTED_CHAR,
                    line,
                    (tok_start - line_start + 1) as u32,
                    format!("unexpected character '{}'", other as char),
                ));
            }
        }
    }
    let end_col = (bytes.len().saturating_sub(line_start) + 1) as u32;
    if !matches!(tokens.last().map(|t| &t.kind), None | Some(TokenKind::Eos)) {
        tokens.push(Token {
            kind: TokenKind::Eos,
            line,
            col: end_col,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col: end_col,
    });
    Ok(tokens)
}

/// Lex a numeric literal starting at `pos`. Handles Fortran double-precision
/// exponents (`1.5d-3`), kind suffixes (`1.0_8`) and plain integers.
fn lex_number(bytes: &[u8], mut pos: usize, line: u32, col: u32) -> Result<(TokenKind, usize)> {
    let start = pos;
    let mut is_real = false;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos < bytes.len() && bytes[pos] == b'.' {
        // Not a dot-operator: only a real fraction if followed by digit,
        // exponent letter, end, or non-alphabetic. `1.and.` must stay int.
        let next = bytes.get(pos + 1);
        let looks_like_op = next.is_some_and(|&n| n.is_ascii_alphabetic())
            && !matches!(next, Some(b'd' | b'D' | b'e' | b'E'));
        if !looks_like_op {
            is_real = true;
            pos += 1;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
        }
    }
    if pos < bytes.len() && matches!(bytes[pos], b'd' | b'D' | b'e' | b'E') {
        let mut p = pos + 1;
        if p < bytes.len() && matches!(bytes[p], b'+' | b'-') {
            p += 1;
        }
        if p < bytes.len() && bytes[p].is_ascii_digit() {
            is_real = true;
            pos = p;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
        }
    }
    let mut text: String = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
    // Kind suffix `_8` — consume and ignore.
    if pos < bytes.len() && bytes[pos] == b'_' {
        let mut p = pos + 1;
        while p < bytes.len() && (bytes[p].is_ascii_alphanumeric()) {
            p += 1;
        }
        pos = p;
    }
    if is_real {
        // Fortran `d` exponent → `e` for Rust parsing.
        text = text.replace(['d', 'D'], "e");
        let v: f64 = text.parse().map_err(|_| {
            err(
                codes::LEX_BAD_LITERAL,
                line,
                col,
                format!("bad real literal '{text}'"),
            )
        })?;
        Ok((TokenKind::Real(v), pos))
    } else {
        let v: i64 = text.parse().map_err(|_| {
            err(
                codes::LEX_BAD_LITERAL,
                line,
                col,
                format!("bad integer literal '{text}'"),
            )
        })?;
        Ok((TokenKind::Int(v), pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents_lowercased() {
        let ks = kinds("PROGRAM Test");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("program".into()),
                TokenKind::Ident("test".into()),
                TokenKind::Eos,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("2.5")[0], TokenKind::Real(2.5));
        assert_eq!(kinds("1.d0")[0], TokenKind::Real(1.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Real(0.25));
        assert_eq!(kinds("1.0_8")[0], TokenKind::Real(1.0));
        assert_eq!(kinds("1d3")[0], TokenKind::Real(1000.0));
    }

    #[test]
    fn operators() {
        let ks = kinds("a = b ** 2 + c / d");
        assert!(ks.contains(&TokenKind::Assign));
        assert!(ks.contains(&TokenKind::Pow));
        assert!(ks.contains(&TokenKind::Slash));
        let ks = kinds("a <= b .and. c /= d");
        assert!(ks.contains(&TokenKind::Le));
        assert!(ks.contains(&TokenKind::And));
        assert!(ks.contains(&TokenKind::Ne));
    }

    #[test]
    fn dot_operators_and_logicals() {
        let ks = kinds("x .lt. y .or. .true.");
        assert_eq!(ks[1], TokenKind::Lt);
        assert_eq!(ks[3], TokenKind::Or);
        assert_eq!(ks[4], TokenKind::Logical(true));
    }

    #[test]
    fn comments_and_continuation() {
        let ks = kinds("a = 1 ! comment\nb = 2");
        // The comment disappears; two statements remain.
        let eos_count = ks.iter().filter(|k| **k == TokenKind::Eos).count();
        assert_eq!(eos_count, 2);
        let ks = kinds("a = 1 + &\n    2");
        // Continuation: one statement only.
        let eos_count = ks.iter().filter(|k| **k == TokenKind::Eos).count();
        assert_eq!(eos_count, 1);
    }

    #[test]
    fn double_colon_and_dims() {
        let ks = kinds("real(kind=8), dimension(0:n+1) :: u");
        assert!(ks.contains(&TokenKind::DoubleColon));
        assert!(ks.contains(&TokenKind::Colon));
    }

    #[test]
    fn semicolon_separates_statements() {
        let ks = kinds("a = 1; b = 2");
        let eos_count = ks.iter().filter(|k| **k == TokenKind::Eos).count();
        assert_eq!(eos_count, 2);
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a = 1\nb = 2\nc = 3").unwrap();
        let b_tok = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.line, 2);
    }

    #[test]
    fn bad_character_is_error() {
        let err = lex("a = $").unwrap_err();
        let d = err.primary().expect("diagnostic");
        assert_eq!(d.code, fsc_ir::diag::codes::LEX_UNEXPECTED_CHAR);
        assert_eq!(d.span, Some(fsc_ir::Span::new(1, 5)));
    }

    #[test]
    fn columns_tracked() {
        let toks = lex("a = 1\n  b = 22").unwrap();
        let b_tok = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!((b_tok.line, b_tok.col), (2, 3));
        let n_tok = toks.iter().find(|t| t.kind == TokenKind::Int(22)).unwrap();
        assert_eq!((n_tok.line, n_tok.col), (2, 7));
    }

    #[test]
    fn unknown_dot_operator_is_error() {
        assert!(lex("a .bogus. b").is_err());
    }
}
