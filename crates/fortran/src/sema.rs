//! Semantic analysis: symbol tables, constant folding of parameters and
//! array bounds, type inference and use checking.
//!
//! Like the parser, sema *accumulates* diagnostics instead of bailing at
//! the first problem: every declaration and every statement is checked even
//! when earlier ones failed, and the combined batch is returned as one
//! [`IrError`]. Constant folding uses checked arithmetic throughout — an
//! overflowing `parameter` expression is a diagnostic, not a debug-build
//! panic.

use std::collections::BTreeMap;

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{IrError, Result};

use crate::ast::*;

/// Diagnostic cap, mirroring the parser's.
const MAX_ERRORS: usize = 25;

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer constant.
    Int(i64),
    /// Real constant.
    Real(f64),
    /// Logical constant.
    Logical(bool),
}

impl Const {
    /// As integer, if this is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Const::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as f64 (ints promote).
    pub fn as_real(self) -> Option<f64> {
        match self {
            Const::Int(v) => Some(v as f64),
            Const::Real(v) => Some(v),
            Const::Logical(_) => None,
        }
    }
}

/// How a name is used in a unit.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolKind {
    /// A scalar variable.
    Scalar,
    /// A statically shaped array: per-dim declared lower bounds and extents.
    Array {
        /// Declared lower bound of each dimension.
        lbounds: Vec<i64>,
        /// Extent (number of elements) of each dimension.
        extents: Vec<i64>,
    },
    /// An allocatable array of known rank; bounds fixed at `allocate`.
    AllocArray {
        /// Declared rank.
        rank: usize,
    },
    /// A named constant.
    Param(Const),
}

/// A resolved symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// Scalar element type.
    pub ty: TypeSpec,
    /// Role and shape.
    pub kind: SymbolKind,
    /// True for dummy arguments (storage owned by the caller).
    pub is_dummy: bool,
    /// Declared intent (dummy arguments only).
    pub intent: Intent,
}

/// Per-unit analysis results.
#[derive(Debug, Clone)]
pub struct UnitInfo {
    /// Name → symbol.
    pub symbols: BTreeMap<String, Symbol>,
    /// For each `allocate` site (in statement walk order), the folded
    /// bounds: `(array name, per-dim (lbound, extent))`.
    pub allocations: Vec<(String, Vec<(i64, i64)>)>,
}

/// The analysed program: AST plus per-unit symbol information.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// The source AST, unit order preserved.
    pub file: SourceFile,
    /// Analysis results, parallel to `file.units`.
    pub units: Vec<UnitInfo>,
}

/// Names of supported intrinsic functions.
pub const INTRINSICS: &[&str] = &[
    "sqrt", "abs", "exp", "log", "sin", "cos", "tanh", "min", "max", "mod", "dble", "real", "int",
    "atan2",
];

fn err(msg: impl std::fmt::Display) -> IrError {
    err_code(codes::SEMA_TYPE, msg)
}

fn err_code(code: &'static str, msg: impl std::fmt::Display) -> IrError {
    IrError::from_diagnostic(Diagnostic::error(code, format!("semantic error: {msg}")))
}

/// Fold an error into the batch, attaching `line` to any diagnostic that
/// has no span of its own. No-op once the cap is hit.
fn record(diags: &mut Vec<Diagnostic>, e: IrError, line: Option<u32>) {
    if diags.len() >= MAX_ERRORS {
        return;
    }
    if e.diagnostics.is_empty() {
        diags.push(Diagnostic::error(codes::SEMA_TYPE, e.message));
        return;
    }
    for mut d in e.diagnostics {
        if d.span.is_none() {
            if let Some(l) = line {
                d = d.at_line_col(l, 1);
            }
        }
        diags.push(d);
    }
}

/// Run semantic analysis over a parsed source file.
pub fn analyze(file: SourceFile) -> Result<Analyzed> {
    let unit_names: Vec<String> = file.units.iter().map(|u| u.name.clone()).collect();
    let mut units = Vec::with_capacity(file.units.len());
    let mut diags = Vec::new();
    for unit in &file.units {
        units.push(analyze_unit(unit, &unit_names, &mut diags));
    }
    if !diags.is_empty() {
        return Err(IrError::from_diagnostics(diags));
    }
    Ok(Analyzed { file, units })
}

fn analyze_unit(
    unit: &ProgramUnit,
    unit_names: &[String],
    diags: &mut Vec<Diagnostic>,
) -> UnitInfo {
    let mut symbols: BTreeMap<String, Symbol> = BTreeMap::new();
    let mut params: BTreeMap<String, Const> = BTreeMap::new();

    for decl in &unit.decls {
        if let Err(e) = analyze_decl(decl, unit, &mut symbols, &mut params) {
            record(diags, e, Some(decl.line));
        }
    }

    // Every dummy argument must be declared.
    for arg in &unit.args {
        if !symbols.contains_key(arg) {
            record(
                diags,
                err_code(
                    codes::SEMA_UNDECLARED,
                    format!("dummy argument '{arg}' not declared"),
                ),
                None,
            );
        }
    }

    let mut info = UnitInfo {
        symbols,
        allocations: Vec::new(),
    };
    check_stmts(&unit.body, &mut info, &params, unit_names, diags);
    info
}

/// Resolve one declaration into the symbol table.
fn analyze_decl(
    decl: &Decl,
    unit: &ProgramUnit,
    symbols: &mut BTreeMap<String, Symbol>,
    params: &mut BTreeMap<String, Const>,
) -> Result<()> {
    if symbols.contains_key(&decl.name) {
        return Err(err_code(
            codes::SEMA_DUPLICATE,
            format!("'{}' declared twice", decl.name),
        ));
    }
    let is_dummy = unit.args.contains(&decl.name);
    let kind = if let Some(init) = &decl.parameter {
        if is_dummy {
            return Err(err(format!(
                "dummy argument '{}' cannot be a parameter",
                decl.name
            )));
        }
        let v = fold_const(init, params)?;
        params.insert(decl.name.clone(), v);
        SymbolKind::Param(v)
    } else if decl.allocatable {
        if decl.dims.is_empty() {
            return Err(err_code(
                codes::SEMA_ALLOC,
                format!("allocatable '{}' needs a deferred shape", decl.name),
            ));
        }
        SymbolKind::AllocArray {
            rank: decl.dims.len(),
        }
    } else if decl.dims.is_empty() {
        SymbolKind::Scalar
    } else {
        let mut lbounds = Vec::new();
        let mut extents = Vec::new();
        for d in &decl.dims {
            let lo = fold_const(&d.lower, params)?
                .as_int()
                .ok_or_else(|| err(format!("non-integer bound for '{}'", decl.name)))?;
            let hi = fold_const(&d.upper, params)?
                .as_int()
                .ok_or_else(|| err(format!("non-integer bound for '{}'", decl.name)))?;
            if hi < lo {
                return Err(err(format!(
                    "dimension of '{}' has upper bound {hi} < lower bound {lo}",
                    decl.name
                )));
            }
            let extent = hi
                .checked_sub(lo)
                .and_then(|d| d.checked_add(1))
                .ok_or_else(|| {
                    err_code(
                        codes::SEMA_CONST_FOLD,
                        format!("extent of '{}' overflows", decl.name),
                    )
                })?;
            lbounds.push(lo);
            extents.push(extent);
        }
        SymbolKind::Array { lbounds, extents }
    };
    symbols.insert(
        decl.name.clone(),
        Symbol {
            ty: decl.ty,
            kind,
            is_dummy,
            intent: decl.intent,
        },
    );
    Ok(())
}

/// Check a statement list, recording one diagnostic per broken statement
/// and carrying on, so a unit reports all its semantic errors at once.
fn check_stmts(
    stmts: &[Stmt],
    info: &mut UnitInfo,
    params: &BTreeMap<String, Const>,
    unit_names: &[String],
    diags: &mut Vec<Diagnostic>,
) {
    for stmt in stmts {
        if let Err(e) = check_stmt(stmt, info, params, unit_names, diags) {
            record(diags, e, None);
        }
    }
}

fn check_stmt(
    stmt: &Stmt,
    info: &mut UnitInfo,
    params: &BTreeMap<String, Const>,
    unit_names: &[String],
    diags: &mut Vec<Diagnostic>,
) -> Result<()> {
    {
        match stmt {
            Stmt::Assign { target, value } => {
                match target {
                    LValue::Var(name) => {
                        let sym = lookup(info, name)?;
                        if matches!(sym.kind, SymbolKind::Param(_)) {
                            return Err(err(format!("cannot assign to parameter '{name}'")));
                        }
                        if matches!(
                            sym.kind,
                            SymbolKind::Array { .. } | SymbolKind::AllocArray { .. }
                        ) {
                            return Err(err(format!(
                                "whole-array assignment to '{name}' is not supported; use loops"
                            )));
                        }
                    }
                    LValue::Element { name, indices } => {
                        let sym = lookup(info, name)?.clone();
                        let rank = match &sym.kind {
                            SymbolKind::Array { extents, .. } => extents.len(),
                            SymbolKind::AllocArray { rank } => *rank,
                            _ => {
                                return Err(err(format!("'{name}' is not an array")));
                            }
                        };
                        if indices.len() != rank {
                            return Err(err_code(
                                codes::SEMA_RANK_MISMATCH,
                                format!(
                                    "'{name}' has rank {rank} but {} indices given",
                                    indices.len()
                                ),
                            ));
                        }
                        for idx in indices {
                            check_expr(idx, info)?;
                        }
                    }
                }
                check_expr(value, info)?;
            }
            Stmt::Do {
                var,
                lb,
                ub,
                step,
                body,
            } => {
                let sym = lookup(info, var)?;
                if sym.ty != TypeSpec::Integer || !matches!(sym.kind, SymbolKind::Scalar) {
                    return Err(err(format!(
                        "do variable '{var}' must be an integer scalar"
                    )));
                }
                check_expr(lb, info)?;
                check_expr(ub, info)?;
                if let Some(s) = step {
                    check_expr(s, info)?;
                }
                check_stmts(body, info, params, unit_names, diags);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_expr(cond, info)?;
                check_stmts(then_body, info, params, unit_names, diags);
                check_stmts(else_body, info, params, unit_names, diags);
            }
            Stmt::Call { name, args } => {
                if !unit_names.contains(name) {
                    return Err(err_code(
                        codes::SEMA_UNKNOWN_CALL,
                        format!("call to unknown subroutine '{name}'"),
                    ));
                }
                for a in args {
                    check_expr(a, info)?;
                }
            }
            Stmt::Allocate { items } => {
                for (name, dims) in items {
                    let sym = lookup(info, name)?.clone();
                    let SymbolKind::AllocArray { rank } = sym.kind else {
                        return Err(err_code(
                            codes::SEMA_ALLOC,
                            format!("'{name}' is not allocatable"),
                        ));
                    };
                    if dims.len() != rank {
                        return Err(err_code(
                            codes::SEMA_RANK_MISMATCH,
                            format!(
                                "allocate('{name}') rank mismatch: {} vs declared {rank}",
                                dims.len()
                            ),
                        ));
                    }
                    let mut bounds = Vec::new();
                    for d in dims {
                        let lo = fold_const(&d.lower, params)?.as_int().ok_or_else(|| {
                            err_code(codes::SEMA_ALLOC, "allocate bounds must fold to constants")
                        })?;
                        let hi = fold_const(&d.upper, params)?.as_int().ok_or_else(|| {
                            err_code(codes::SEMA_ALLOC, "allocate bounds must fold to constants")
                        })?;
                        if hi < lo {
                            return Err(err_code(
                                codes::SEMA_ALLOC,
                                format!("allocate('{name}') empty dimension"),
                            ));
                        }
                        let extent = hi
                            .checked_sub(lo)
                            .and_then(|d| d.checked_add(1))
                            .ok_or_else(|| {
                                err_code(
                                    codes::SEMA_CONST_FOLD,
                                    format!("allocate('{name}') extent overflows"),
                                )
                            })?;
                        bounds.push((lo, extent));
                    }
                    info.allocations.push((name.clone(), bounds));
                }
            }
            Stmt::Deallocate { names } => {
                for name in names {
                    let sym = lookup(info, name)?;
                    if !matches!(sym.kind, SymbolKind::AllocArray { .. }) {
                        return Err(err_code(
                            codes::SEMA_ALLOC,
                            format!("deallocate of non-allocatable '{name}'"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn lookup<'a>(info: &'a UnitInfo, name: &str) -> Result<&'a Symbol> {
    info.symbols.get(name).ok_or_else(|| {
        err_code(
            codes::SEMA_UNDECLARED,
            format!("'{name}' used but not declared"),
        )
    })
}

/// Inclusive argument-count range each intrinsic accepts (`min`/`max` are
/// variadic: lowering folds them pairwise left to right).
fn intrinsic_arity(name: &str) -> (usize, usize) {
    match name {
        "min" | "max" => (2, usize::MAX),
        "mod" | "atan2" => (2, 2),
        _ => (1, 1),
    }
}

fn check_expr(expr: &Expr, info: &UnitInfo) -> Result<()> {
    match expr {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) => Ok(()),
        Expr::Var(name) => lookup(info, name).map(|_| ()),
        Expr::Index { name, indices } => {
            if INTRINSICS.contains(&name.as_str()) {
                let (lo, hi) = intrinsic_arity(name);
                if indices.len() < lo || indices.len() > hi {
                    let wants = if hi == usize::MAX {
                        format!("at least {lo}")
                    } else if lo == hi {
                        lo.to_string()
                    } else {
                        format!("{lo}..{hi}")
                    };
                    return Err(err_code(
                        codes::SEMA_INTRINSIC_ARITY,
                        format!(
                            "intrinsic '{name}' takes {wants} argument(s) but {} given",
                            indices.len()
                        ),
                    ));
                }
                for a in indices {
                    check_expr(a, info)?;
                }
                return Ok(());
            }
            let sym = lookup(info, name)?;
            let rank = match &sym.kind {
                SymbolKind::Array { extents, .. } => extents.len(),
                SymbolKind::AllocArray { rank } => *rank,
                _ => {
                    return Err(err(format!(
                        "'{name}' is neither an array nor an intrinsic"
                    )));
                }
            };
            if indices.len() != rank {
                return Err(err_code(
                    codes::SEMA_RANK_MISMATCH,
                    format!(
                        "'{name}' has rank {rank} but {} indices given",
                        indices.len()
                    ),
                ));
            }
            for idx in indices {
                check_expr(idx, info)?;
            }
            Ok(())
        }
        Expr::Bin { lhs, rhs, .. } => {
            check_expr(lhs, info)?;
            check_expr(rhs, info)
        }
        Expr::Un { operand, .. } => check_expr(operand, info),
    }
}

/// Fold an expression to a constant using the parameter environment.
pub fn fold_const(expr: &Expr, params: &BTreeMap<String, Const>) -> Result<Const> {
    Ok(match expr {
        Expr::Int(v) => Const::Int(*v),
        Expr::Real(v) => Const::Real(*v),
        Expr::Logical(v) => Const::Logical(*v),
        Expr::Var(name) => *params.get(name).ok_or_else(|| {
            err_code(
                codes::SEMA_CONST_FOLD,
                format!("'{name}' is not a constant"),
            )
        })?,
        Expr::Un {
            op: UnOp::Neg,
            operand,
        } => match fold_const(operand, params)? {
            Const::Int(v) => Const::Int(
                v.checked_neg()
                    .ok_or_else(|| fold_err("negation overflows"))?,
            ),
            Const::Real(v) => Const::Real(-v),
            Const::Logical(_) => return Err(fold_err("cannot negate a logical")),
        },
        Expr::Un {
            op: UnOp::Not,
            operand,
        } => match fold_const(operand, params)? {
            Const::Logical(v) => Const::Logical(!v),
            _ => return Err(fold_err(".not. needs a logical")),
        },
        Expr::Bin { op, lhs, rhs } => {
            let l = fold_const(lhs, params)?;
            let r = fold_const(rhs, params)?;
            fold_binop(*op, l, r)?
        }
        Expr::Index { .. } => {
            return Err(fold_err("array reference in constant expression"));
        }
    })
}

fn fold_err(msg: impl std::fmt::Display) -> IrError {
    err_code(codes::SEMA_CONST_FOLD, msg)
}

/// Checked integer op: overflow is a diagnostic, never a panic.
fn checked(op: &str, v: Option<i64>) -> Result<Const> {
    v.map(Const::Int)
        .ok_or_else(|| fold_err(format!("integer {op} overflows in constant expression")))
}

fn fold_binop(op: BinOp, l: Const, r: Const) -> Result<Const> {
    use BinOp::*;
    if let (Const::Int(a), Const::Int(b)) = (l, r) {
        return match op {
            Add => checked("addition", a.checked_add(b)),
            Sub => checked("subtraction", a.checked_sub(b)),
            Mul => checked("multiplication", a.checked_mul(b)),
            Div => {
                if b == 0 {
                    return Err(fold_err("division by zero in constant expression"));
                }
                checked("division", a.checked_div(b))
            }
            Pow => {
                let e: u32 = b
                    .try_into()
                    .map_err(|_| fold_err("exponent out of range in constant expression"))?;
                checked("exponentiation", a.checked_pow(e))
            }
            Eq => Ok(Const::Logical(a == b)),
            Ne => Ok(Const::Logical(a != b)),
            Lt => Ok(Const::Logical(a < b)),
            Le => Ok(Const::Logical(a <= b)),
            Gt => Ok(Const::Logical(a > b)),
            Ge => Ok(Const::Logical(a >= b)),
            And | Or => Err(fold_err("logical op on integers")),
        };
    }
    if let (Const::Logical(a), Const::Logical(b)) = (l, r) {
        return Ok(match op {
            And => Const::Logical(a && b),
            Or => Const::Logical(a || b),
            Eq => Const::Logical(a == b),
            Ne => Const::Logical(a != b),
            _ => return Err(fold_err("arithmetic on logicals")),
        });
    }
    let a = l
        .as_real()
        .ok_or_else(|| fold_err("mixed logical/numeric constant expression"))?;
    let b = r
        .as_real()
        .ok_or_else(|| fold_err("mixed logical/numeric constant expression"))?;
    Ok(match op {
        Add => Const::Real(a + b),
        Sub => Const::Real(a - b),
        Mul => Const::Real(a * b),
        Div => Const::Real(a / b),
        Pow => Const::Real(a.powf(b)),
        Eq => Const::Logical(a == b),
        Ne => Const::Logical(a != b),
        Lt => Const::Logical(a < b),
        Le => Const::Logical(a <= b),
        Gt => Const::Logical(a > b),
        Ge => Const::Logical(a >= b),
        And | Or => return Err(fold_err("logical op on reals")),
    })
}

/// Infer the scalar type of an expression under a unit's symbols.
pub fn expr_type(expr: &Expr, info: &UnitInfo) -> Result<TypeSpec> {
    Ok(match expr {
        Expr::Int(_) => TypeSpec::Integer,
        Expr::Real(_) => TypeSpec::Real { kind: 8 },
        Expr::Logical(_) => TypeSpec::Logical,
        Expr::Var(name) => lookup(info, name)?.ty,
        Expr::Index { name, indices } => {
            if INTRINSICS.contains(&name.as_str()) {
                match name.as_str() {
                    "int" => TypeSpec::Integer,
                    // Type follows the first argument; a missing argument is
                    // an arity error, not an index panic.
                    "mod" | "min" | "max" | "abs" => match indices.first() {
                        Some(first) => expr_type(first, info)?,
                        None => {
                            return Err(err_code(
                                codes::SEMA_INTRINSIC_ARITY,
                                format!("intrinsic '{name}' called with no arguments"),
                            ))
                        }
                    },
                    _ => TypeSpec::Real { kind: 8 },
                }
            } else {
                lookup(info, name)?.ty
            }
        }
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::Eq
            | BinOp::Ne
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or => TypeSpec::Logical,
            _ => {
                let lt = expr_type(lhs, info)?;
                let rt = expr_type(rhs, info)?;
                if matches!(lt, TypeSpec::Real { .. }) || matches!(rt, TypeSpec::Real { .. }) {
                    TypeSpec::Real { kind: 8 }
                } else {
                    TypeSpec::Integer
                }
            }
        },
        Expr::Un { op: UnOp::Not, .. } => TypeSpec::Logical,
        Expr::Un { operand, .. } => expr_type(operand, info)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_source;

    fn analyze_src(src: &str) -> Result<Analyzed> {
        analyze(parse_source(&lex(src).unwrap())?)
    }

    #[test]
    fn parameters_fold_and_size_arrays() {
        let a = analyze_src(
            "program t
integer, parameter :: n = 16
real(kind=8) :: u(0:n+1, n)
end program t",
        )
        .unwrap();
        let sym = &a.units[0].symbols["u"];
        let SymbolKind::Array { lbounds, extents } = &sym.kind else {
            panic!()
        };
        assert_eq!(lbounds, &vec![0, 1]);
        assert_eq!(extents, &vec![18, 16]);
        assert_eq!(
            a.units[0].symbols["n"].kind,
            SymbolKind::Param(Const::Int(16))
        );
    }

    #[test]
    fn undeclared_variable_rejected() {
        let e = analyze_src("program t\nx = 1.0\nend program t").unwrap_err();
        assert!(e.message.contains("not declared"), "{e}");
    }

    #[test]
    fn rank_mismatch_rejected() {
        let e = analyze_src(
            "program t
real(kind=8) :: u(4, 4)
u(1) = 0.0
end program t",
        )
        .unwrap_err();
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn assign_to_parameter_rejected() {
        let e = analyze_src(
            "program t
integer, parameter :: n = 4
n = 5
end program t",
        )
        .unwrap_err();
        assert!(e.message.contains("parameter"), "{e}");
    }

    #[test]
    fn do_variable_must_be_integer() {
        let e = analyze_src(
            "program t
real(kind=8) :: x
do x = 1, 4
end do
end program t",
        )
        .unwrap_err();
        assert!(e.message.contains("integer scalar"), "{e}");
    }

    #[test]
    fn allocations_are_folded() {
        let a = analyze_src(
            "program t
integer, parameter :: n = 8
real(kind=8), dimension(:,:), allocatable :: u
allocate(u(0:n+1, 1:n))
deallocate(u)
end program t",
        )
        .unwrap();
        assert_eq!(
            a.units[0].allocations,
            vec![("u".to_string(), vec![(0, 10), (1, 8)])]
        );
    }

    #[test]
    fn allocate_rank_mismatch_rejected() {
        let e = analyze_src(
            "program t
real(kind=8), dimension(:,:), allocatable :: u
allocate(u(8))
end program t",
        )
        .unwrap_err();
        assert!(e.message.contains("rank mismatch"), "{e}");
    }

    #[test]
    fn intrinsic_calls_pass_checking() {
        analyze_src(
            "program t
real(kind=8) :: x, y
x = sqrt(y) + abs(y) + max(x, y)
end program t",
        )
        .unwrap();
    }

    #[test]
    fn unknown_subroutine_rejected() {
        let e = analyze_src("program t\ncall nosuch()\nend program t").unwrap_err();
        assert!(e.message.contains("unknown subroutine"), "{e}");
    }

    #[test]
    fn call_to_sibling_unit_ok() {
        analyze_src(
            "subroutine s(x)
real(kind=8), intent(inout) :: x
x = x + 1.0
end subroutine s
program t
real(kind=8) :: v
call s(v)
end program t",
        )
        .unwrap();
    }

    #[test]
    fn expr_types() {
        let a = analyze_src(
            "program t
integer :: i
real(kind=8) :: x
x = x + i
end program t",
        )
        .unwrap();
        let info = &a.units[0];
        assert_eq!(
            expr_type(
                &Expr::bin(BinOp::Add, Expr::Var("x".into()), Expr::Var("i".into())),
                info
            )
            .unwrap(),
            TypeSpec::Real { kind: 8 }
        );
        assert_eq!(
            expr_type(
                &Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Int(1)),
                info
            )
            .unwrap(),
            TypeSpec::Integer
        );
        assert_eq!(
            expr_type(
                &Expr::bin(BinOp::Lt, Expr::Var("i".into()), Expr::Int(1)),
                info
            )
            .unwrap(),
            TypeSpec::Logical
        );
    }

    #[test]
    fn negative_bounds_fold() {
        let a = analyze_src(
            "program t
real(kind=8) :: u(-1:1)
end program t",
        )
        .unwrap();
        let SymbolKind::Array { lbounds, extents } = &a.units[0].symbols["u"].kind else {
            panic!()
        };
        assert_eq!(lbounds, &vec![-1]);
        assert_eq!(extents, &vec![3]);
    }

    #[test]
    fn multiple_errors_reported_at_once() {
        let e = analyze_src(
            "program t
integer :: i
x = 1.0
y = 2.0
i = sqrt(1.0, 2.0)
end program t",
        )
        .unwrap_err();
        let codes: Vec<&str> = e.diagnostics.iter().map(|d| d.code).collect();
        assert!(
            codes
                .iter()
                .filter(|c| **c == fsc_ir::diag::codes::SEMA_UNDECLARED)
                .count()
                >= 2,
            "{codes:?}"
        );
        assert!(
            codes.contains(&fsc_ir::diag::codes::SEMA_INTRINSIC_ARITY),
            "{codes:?}"
        );
    }

    #[test]
    fn const_fold_overflow_is_diagnostic_not_panic() {
        let e = analyze_src(
            "program t
integer, parameter :: big = 9000000000000000000 + 9000000000000000000
end program t",
        )
        .unwrap_err();
        assert!(
            e.diagnostics
                .iter()
                .any(|d| d.code == fsc_ir::diag::codes::SEMA_CONST_FOLD),
            "{e}"
        );
        let e = analyze_src(
            "program t
integer, parameter :: big = 2 ** 9999
end program t",
        )
        .unwrap_err();
        assert!(
            e.message.contains("overflow") || e.message.contains("range"),
            "{e}"
        );
    }

    #[test]
    fn intrinsic_arity_checked() {
        for src in [
            "program t\nreal(kind=8) :: x\nx = sqrt()\nend program t",
            "program t\nreal(kind=8) :: x\nx = sqrt(x, x)\nend program t",
            "program t\nreal(kind=8) :: x\nx = max(x)\nend program t",
        ] {
            let e = analyze_src(src).unwrap_err();
            assert!(
                e.diagnostics
                    .iter()
                    .any(|d| d.code == fsc_ir::diag::codes::SEMA_INTRINSIC_ARITY),
                "{src}: {e}"
            );
        }
    }

    #[test]
    fn decl_diagnostics_carry_the_decl_line() {
        let e = analyze_src(
            "program t
integer :: i
integer :: i
end program t",
        )
        .unwrap_err();
        let d = e.primary().expect("diagnostic");
        assert_eq!(d.code, fsc_ir::diag::codes::SEMA_DUPLICATE);
        assert_eq!(d.span.map(|s| s.line), Some(3));
    }

    #[test]
    fn whole_array_assign_rejected() {
        let e = analyze_src(
            "program t
real(kind=8) :: u(4)
u = 0.0
end program t",
        )
        .unwrap_err();
        assert!(e.message.contains("whole-array"), "{e}");
    }
}
