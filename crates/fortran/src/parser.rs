//! Recursive-descent parser for the supported Fortran subset.
//!
//! The parser *recovers* from errors instead of bailing at the first one:
//! a failed statement records a located [`Diagnostic`] and synchronizes at
//! the next statement boundary (end-of-statement token), a failed unit
//! synchronizes at the next `program`/`subroutine`, so one file reports
//! every problem it contains (bounded by [`MAX_ERRORS`]). When anything
//! was recorded the overall result is an [`IrError`] carrying the full
//! batch; the partially-parsed AST is never handed downstream.

use fsc_ir::diag::{codes, Diagnostic, Span};
use fsc_ir::{IrError, Result};

use crate::ast::*;
use crate::lexer::{Token, TokenKind};

/// Stop recording after this many diagnostics; a file this broken is
/// usually one mistake cascading, and recovery time stays bounded.
const MAX_ERRORS: usize = 25;

/// Parse a token stream into a [`SourceFile`].
pub fn parse_source(tokens: &[Token]) -> Result<SourceFile> {
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
    };
    let mut units = Vec::new();
    p.skip_eos();
    while !p.at(TokenKind::Eof) && p.diags.len() < MAX_ERRORS {
        match p.parse_unit() {
            Ok(u) => units.push(u),
            Err(e) => {
                p.record(e);
                p.sync_to_unit_start();
            }
        }
        p.skip_eos();
    }
    if !p.diags.is_empty() {
        return Err(IrError::from_diagnostics(p.diags));
    }
    if units.is_empty() {
        return Err(IrError::from_diagnostic(Diagnostic::error(
            codes::PARSE_EMPTY_SOURCE,
            "empty source: no program units",
        )));
    }
    Ok(SourceFile { units })
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
    diags: Vec<Diagnostic>,
}

/// Human-readable description of a token for error messages.
fn tok_desc(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => format!("'{s}'"),
        TokenKind::Int(v) => format!("integer literal {v}"),
        TokenKind::Real(v) => format!("real literal {v}"),
        TokenKind::Logical(v) => format!(".{v}."),
        TokenKind::Eos => "end of statement".to_string(),
        TokenKind::Eof => "end of file".to_string(),
        TokenKind::Plus => "'+'".to_string(),
        TokenKind::Minus => "'-'".to_string(),
        TokenKind::Star => "'*'".to_string(),
        TokenKind::Pow => "'**'".to_string(),
        TokenKind::Slash => "'/'".to_string(),
        TokenKind::LParen => "'('".to_string(),
        TokenKind::RParen => "')'".to_string(),
        TokenKind::Comma => "','".to_string(),
        TokenKind::Assign => "'='".to_string(),
        TokenKind::Eq => "'=='".to_string(),
        TokenKind::Ne => "'/='".to_string(),
        TokenKind::Lt => "'<'".to_string(),
        TokenKind::Le => "'<='".to_string(),
        TokenKind::Gt => "'>'".to_string(),
        TokenKind::Ge => "'>='".to_string(),
        TokenKind::And => "'.and.'".to_string(),
        TokenKind::Or => "'.or.'".to_string(),
        TokenKind::Not => "'.not.'".to_string(),
        TokenKind::DoubleColon => "'::'".to_string(),
        TokenKind::Colon => "':'".to_string(),
        TokenKind::Percent => "'%'".to_string(),
    }
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        Span::new(t.line, t.col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn at(&self, kind: TokenKind) -> bool {
        *self.peek() == kind
    }

    fn err(&self, msg: impl std::fmt::Display) -> IrError {
        self.err_code(codes::PARSE_UNEXPECTED_TOKEN, msg)
    }

    fn err_code(&self, code: &'static str, msg: impl std::fmt::Display) -> IrError {
        IrError::from_diagnostic(
            Diagnostic::error(code, format!("parse error: {msg}")).at(self.span()),
        )
    }

    /// Fold an error's diagnostics into the recovery batch (no-op once the
    /// cap is hit — recovery keeps running but stops accumulating).
    fn record(&mut self, e: IrError) {
        if self.diags.len() >= MAX_ERRORS {
            return;
        }
        if e.diagnostics.is_empty() {
            self.diags
                .push(Diagnostic::error(codes::PARSE_UNEXPECTED_TOKEN, e.message));
        } else {
            self.diags.extend(e.diagnostics);
        }
    }

    /// Skip to just past the next end-of-statement (or stop at EOF), so the
    /// next parse attempt starts on a fresh statement.
    fn sync_to_stmt_boundary(&mut self) {
        while !self.at(TokenKind::Eof) && !self.at(TokenKind::Eos) {
            self.bump();
        }
        self.eat(&TokenKind::Eos);
    }

    /// Skip to the next plausible program-unit start (or EOF).
    fn sync_to_unit_start(&mut self) {
        loop {
            if self.at(TokenKind::Eof) || self.at_kw("program") || self.at_kw("subroutine") {
                return;
            }
            self.bump();
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, kind: TokenKind) -> Result<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err_code(
                codes::PARSE_EXPECTED,
                format!(
                    "expected {}, found {}",
                    tok_desc(&kind),
                    tok_desc(self.peek())
                ),
            ))
        }
    }

    /// Is the current token the given (lowercased) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_code(
                codes::PARSE_EXPECTED,
                format!("expected '{kw}', found {}", tok_desc(self.peek())),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Ok(s)
        } else {
            Err(self.err_code(
                codes::PARSE_EXPECTED,
                format!("expected identifier, found {}", tok_desc(self.peek())),
            ))
        }
    }

    fn expect_eos(&mut self) -> Result<()> {
        if self.eat(&TokenKind::Eos) || self.at(TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err_code(
                codes::PARSE_EXPECTED,
                format!("expected end of statement, found {}", tok_desc(self.peek())),
            ))
        }
    }

    fn skip_eos(&mut self) {
        while self.eat(&TokenKind::Eos) {}
    }

    // ------------------------------------------------------------- units

    fn parse_unit(&mut self) -> Result<ProgramUnit> {
        if self.eat_kw("program") {
            let name = self.expect_ident()?;
            self.expect_eos()?;
            let (decls, body) = self.parse_unit_body()?;
            self.parse_end("program", &name)?;
            Ok(ProgramUnit {
                kind: UnitKind::Program,
                name,
                args: vec![],
                decls,
                body,
            })
        } else if self.eat_kw("subroutine") {
            let name = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.expect_ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_tok(TokenKind::RParen)?;
            }
            self.expect_eos()?;
            let (decls, body) = self.parse_unit_body()?;
            self.parse_end("subroutine", &name)?;
            Ok(ProgramUnit {
                kind: UnitKind::Subroutine,
                name,
                args,
                decls,
                body,
            })
        } else {
            Err(self.err(format!(
                "expected 'program' or 'subroutine', found {}",
                tok_desc(self.peek())
            )))
        }
    }

    /// `end [program|subroutine] [name]`.
    fn parse_end(&mut self, unit_kw: &str, name: &str) -> Result<()> {
        if self.at(TokenKind::Eof) {
            return Err(self.err_code(
                codes::PARSE_UNTERMINATED,
                format!("{unit_kw} '{name}' is not closed: missing 'end {unit_kw}'"),
            ));
        }
        self.expect_kw("end")?;
        if self.eat_kw(unit_kw) {
            // Optional repeat of the unit name.
            if matches!(self.peek(), TokenKind::Ident(_)) {
                self.bump();
            }
        }
        self.expect_eos()?;
        Ok(())
    }

    fn parse_unit_body(&mut self) -> Result<(Vec<Decl>, Vec<Stmt>)> {
        let mut decls = Vec::new();
        // Specification part. A bad declaration records its diagnostic and
        // resumes at the next statement so the rest of the unit still gets
        // checked.
        loop {
            self.skip_eos();
            if self.at_kw("implicit") {
                self.bump();
                self.expect_kw("none")?;
                self.expect_eos()?;
            } else if self.at_type_spec() {
                match self.parse_decl_stmt() {
                    Ok(ds) => decls.extend(ds),
                    Err(e) => {
                        self.record(e);
                        if self.diags.len() >= MAX_ERRORS {
                            break;
                        }
                        self.sync_to_stmt_boundary();
                    }
                }
            } else {
                break;
            }
        }
        // Execution part.
        let body = self.parse_stmts(&["end"])?;
        Ok((decls, body))
    }

    fn at_type_spec(&self) -> bool {
        self.at_kw("integer") || self.at_kw("real") || self.at_kw("logical") || self.at_kw("double")
    }

    // ------------------------------------------------------- declarations

    fn parse_type_spec(&mut self) -> Result<TypeSpec> {
        if self.eat_kw("integer") {
            // Optional kind selector, ignored (default integer).
            if self.eat(&TokenKind::LParen) {
                self.skip_kind_selector()?;
            }
            Ok(TypeSpec::Integer)
        } else if self.eat_kw("logical") {
            Ok(TypeSpec::Logical)
        } else if self.eat_kw("double") {
            self.expect_kw("precision")?;
            Ok(TypeSpec::Real { kind: 8 })
        } else if self.eat_kw("real") {
            let mut kind = 4u8;
            if self.eat(&TokenKind::LParen) {
                kind = self.parse_kind_value()?;
            }
            Ok(TypeSpec::Real { kind })
        } else {
            Err(self.err_code(codes::PARSE_BAD_DECL, "expected type specifier"))
        }
    }

    /// After `(`: `kind=8)` or `8)`.
    fn parse_kind_value(&mut self) -> Result<u8> {
        if self.eat_kw("kind") {
            self.expect_tok(TokenKind::Assign)?;
        }
        let v = match self.bump() {
            TokenKind::Int(v) => v as u8,
            other => {
                return Err(self.err_code(
                    codes::PARSE_BAD_DECL,
                    format!("expected kind value, found {}", tok_desc(&other)),
                ))
            }
        };
        self.expect_tok(TokenKind::RParen)?;
        Ok(v)
    }

    fn skip_kind_selector(&mut self) -> Result<()> {
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => depth -= 1,
                TokenKind::Eof => return Err(self.err("unterminated kind selector")),
                _ => {}
            }
        }
        Ok(())
    }

    fn parse_decl_stmt(&mut self) -> Result<Vec<Decl>> {
        let decl_line = self.span().line;
        let ty = self.parse_type_spec()?;
        let mut dims_attr: Vec<Dim> = Vec::new();
        let mut allocatable = false;
        let mut parameter = false;
        let mut intent = Intent::InOut;
        while self.eat(&TokenKind::Comma) {
            if self.eat_kw("dimension") {
                self.expect_tok(TokenKind::LParen)?;
                dims_attr = self.parse_dim_list()?;
                self.expect_tok(TokenKind::RParen)?;
            } else if self.eat_kw("allocatable") {
                allocatable = true;
            } else if self.eat_kw("parameter") {
                parameter = true;
            } else if self.eat_kw("intent") {
                self.expect_tok(TokenKind::LParen)?;
                intent = if self.eat_kw("in") {
                    Intent::In
                } else if self.eat_kw("out") {
                    Intent::Out
                } else if self.eat_kw("inout") {
                    Intent::InOut
                } else {
                    return Err(self.err_code(codes::PARSE_BAD_DECL, "expected in/out/inout"));
                };
                self.expect_tok(TokenKind::RParen)?;
            } else {
                return Err(self.err_code(
                    codes::PARSE_BAD_DECL,
                    format!("unknown declaration attribute {}", tok_desc(self.peek())),
                ));
            }
        }
        self.expect_tok(TokenKind::DoubleColon)?;
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mut dims = dims_attr.clone();
            if self.eat(&TokenKind::LParen) {
                dims = self.parse_dim_list()?;
                self.expect_tok(TokenKind::RParen)?;
            }
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            if parameter && init.is_none() {
                return Err(self.err_code(
                    codes::PARSE_BAD_DECL,
                    format!("parameter '{name}' missing initialiser"),
                ));
            }
            out.push(Decl {
                name,
                ty,
                dims,
                allocatable,
                parameter: if parameter { init } else { None },
                intent,
                line: decl_line,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_eos()?;
        Ok(out)
    }

    /// Dim list items: `expr`, `lower:upper`, or `:` (deferred shape).
    fn parse_dim_list(&mut self) -> Result<Vec<Dim>> {
        let mut dims = Vec::new();
        loop {
            if self.at(TokenKind::Colon) {
                // Deferred shape for allocatables: rank marker only.
                self.bump();
                dims.push(Dim {
                    lower: Expr::Int(1),
                    upper: Expr::Int(0),
                });
            } else {
                let first = self.parse_expr()?;
                if self.eat(&TokenKind::Colon) {
                    let upper = self.parse_expr()?;
                    dims.push(Dim {
                        lower: first,
                        upper,
                    });
                } else {
                    dims.push(Dim {
                        lower: Expr::Int(1),
                        upper: first,
                    });
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(dims)
    }

    // -------------------------------------------------------- statements

    /// Parse statements until one of `stop_kws` begins a line.
    ///
    /// A statement that fails to parse records its diagnostic and recovery
    /// skips to the next statement boundary, so every broken statement in
    /// a block is reported, not just the first.
    fn parse_stmts(&mut self, stop_kws: &[&str]) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            self.skip_eos();
            if self.at(TokenKind::Eof) {
                return Ok(out);
            }
            if let TokenKind::Ident(word) = self.peek() {
                if stop_kws.contains(&word.as_str()) {
                    return Ok(out);
                }
            }
            match self.parse_stmt() {
                Ok(s) => out.push(s),
                Err(e) => {
                    self.record(e);
                    if self.diags.len() >= MAX_ERRORS {
                        return Ok(out);
                    }
                    self.sync_to_stmt_boundary();
                }
            }
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        if self.eat_kw("do") {
            return self.parse_do();
        }
        if self.eat_kw("if") {
            return self.parse_if();
        }
        if self.eat_kw("call") {
            let name = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_tok(TokenKind::RParen)?;
            }
            self.expect_eos()?;
            return Ok(Stmt::Call { name, args });
        }
        if self.eat_kw("allocate") {
            self.expect_tok(TokenKind::LParen)?;
            let mut items = Vec::new();
            loop {
                let name = self.expect_ident()?;
                self.expect_tok(TokenKind::LParen)?;
                let dims = self.parse_dim_list()?;
                self.expect_tok(TokenKind::RParen)?;
                items.push((name, dims));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_tok(TokenKind::RParen)?;
            self.expect_eos()?;
            return Ok(Stmt::Allocate { items });
        }
        if self.eat_kw("deallocate") {
            self.expect_tok(TokenKind::LParen)?;
            let mut names = Vec::new();
            loop {
                names.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_tok(TokenKind::RParen)?;
            self.expect_eos()?;
            return Ok(Stmt::Deallocate { names });
        }
        // Assignment.
        let name = self.expect_ident()?;
        let target = if self.eat(&TokenKind::LParen) {
            let mut indices = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    indices.push(self.parse_expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_tok(TokenKind::RParen)?;
            }
            LValue::Element { name, indices }
        } else {
            LValue::Var(name)
        };
        self.expect_tok(TokenKind::Assign)?;
        let value = self.parse_expr()?;
        self.expect_eos()?;
        Ok(Stmt::Assign { target, value })
    }

    fn parse_do(&mut self) -> Result<Stmt> {
        let var = self.expect_ident()?;
        self.expect_tok(TokenKind::Assign)?;
        let lb = self.parse_expr()?;
        self.expect_tok(TokenKind::Comma)?;
        let ub = self.parse_expr()?;
        let step = if self.eat(&TokenKind::Comma) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect_eos()?;
        let body = self.parse_stmts(&["end", "enddo"])?;
        if self.eat_kw("enddo") {
        } else {
            self.expect_kw("end")?;
            self.expect_kw("do")?;
        }
        self.expect_eos()?;
        Ok(Stmt::Do {
            var,
            lb,
            ub,
            step,
            body,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        self.expect_tok(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_tok(TokenKind::RParen)?;
        if self.eat_kw("then") {
            self.expect_eos()?;
            let then_body = self.parse_stmts(&["end", "endif", "else"])?;
            let mut else_body = Vec::new();
            if self.eat_kw("else") {
                self.expect_eos()?;
                else_body = self.parse_stmts(&["end", "endif"])?;
            }
            if self.eat_kw("endif") {
            } else {
                self.expect_kw("end")?;
                self.expect_kw("if")?;
            }
            self.expect_eos()?;
            Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            })
        } else {
            // One-line logical IF.
            let stmt = self.parse_stmt()?;
            Ok(Stmt::If {
                cond,
                then_body: vec![stmt],
                else_body: vec![],
            })
        }
    }

    // ------------------------------------------------------- expressions

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let e = self.parse_not()?;
            Ok(Expr::un(UnOp::Not, e))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_addsub()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_addsub()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_addsub(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_muldiv()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_muldiv(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            // Fortran: -a**b parses as -(a**b).
            let e = self.parse_unary()?;
            Ok(Expr::un(UnOp::Neg, e))
        } else if self.eat(&TokenKind::Plus) {
            self.parse_unary()
        } else {
            self.parse_power()
        }
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let base = self.parse_primary()?;
        if self.eat(&TokenKind::Pow) {
            // Right-associative; exponent may itself be unary.
            let exp = self.parse_unary()?;
            Ok(Expr::bin(BinOp::Pow, base, exp))
        } else {
            Ok(base)
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        // Peek before committing: erroring *without* consuming keeps the
        // diagnostic span on the offending token, not the one after it.
        if !matches!(
            self.peek(),
            TokenKind::Int(_)
                | TokenKind::Real(_)
                | TokenKind::Logical(_)
                | TokenKind::LParen
                | TokenKind::Ident(_)
        ) {
            return Err(self.err(format!(
                "unexpected {} in expression",
                tok_desc(self.peek())
            )));
        }
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Real(v) => Ok(Expr::Real(v)),
            TokenKind::Logical(v) => Ok(Expr::Logical(v)),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect_tok(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut indices = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            indices.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect_tok(TokenKind::RParen)?;
                    }
                    Ok(Expr::Index { name, indices })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected {} in expression", tok_desc(&other)))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> SourceFile {
        parse_source(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_program() {
        let f = parse("program t\nimplicit none\nend program t\n");
        assert_eq!(f.units.len(), 1);
        assert_eq!(f.units[0].name, "t");
        assert_eq!(f.units[0].kind, UnitKind::Program);
        assert!(f.units[0].body.is_empty());
    }

    #[test]
    fn declarations_with_attrs() {
        let f = parse(
            "program t
integer, parameter :: n = 64
real(kind=8), dimension(0:n+1, 0:n+1) :: u, u_new
real(kind=8), dimension(:,:), allocatable :: h
integer :: i, j
end program t",
        );
        let d = &f.units[0].decls;
        assert_eq!(d.len(), 6);
        assert_eq!(d[0].name, "n");
        assert!(d[0].parameter.is_some());
        assert_eq!(d[1].name, "u");
        assert_eq!(d[1].dims.len(), 2);
        assert_eq!(d[1].ty, TypeSpec::Real { kind: 8 });
        assert!(d[3].allocatable);
        assert_eq!(d[4].ty, TypeSpec::Integer);
    }

    #[test]
    fn nested_do_with_array_assign() {
        let f = parse(
            "program t
integer :: i, j
real(kind=8) :: data(10, 10), res(10, 10)
do i = 2, 9
  do j = 2, 9
    res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
  end do
end do
end program t",
        );
        let body = &f.units[0].body;
        assert_eq!(body.len(), 1);
        let Stmt::Do {
            var, body: inner, ..
        } = &body[0]
        else {
            panic!("expected do");
        };
        assert_eq!(var, "i");
        let Stmt::Do {
            var: jv,
            body: innermost,
            ..
        } = &inner[0]
        else {
            panic!("expected nested do");
        };
        assert_eq!(jv, "j");
        let Stmt::Assign {
            target: LValue::Element { name, indices },
            ..
        } = &innermost[0]
        else {
            panic!("expected array assign");
        };
        assert_eq!(name, "res");
        assert_eq!(indices.len(), 2);
    }

    #[test]
    fn do_with_step_and_enddo() {
        let f = parse("program t\ninteger :: i\ndo i = 1, 10, 2\nenddo\nend program t");
        let Stmt::Do { step, .. } = &f.units[0].body[0] else {
            panic!()
        };
        assert_eq!(step.as_ref(), Some(&Expr::Int(2)));
    }

    #[test]
    fn if_then_else() {
        let f = parse(
            "program t
real(kind=8) :: x
if (x > 0.0) then
  x = 1.0
else
  x = -1.0
end if
end program t",
        );
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &f.units[0].body[0]
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn one_line_if() {
        let f = parse("program t\nreal(kind=8) :: x\nif (x > 0.0) x = 0.0\nend program t");
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &f.units[0].body[0]
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert!(else_body.is_empty());
    }

    #[test]
    fn subroutine_with_args_and_call() {
        let f = parse(
            "subroutine sub(a, b)
real(kind=8), intent(in) :: a(8)
real(kind=8), intent(out) :: b(8)
integer :: i
do i = 1, 8
  b(i) = a(i)
end do
end subroutine sub

program main
real(kind=8) :: x(8), y(8)
call sub(x, y)
end program main",
        );
        assert_eq!(f.units.len(), 2);
        assert_eq!(f.units[0].kind, UnitKind::Subroutine);
        assert_eq!(f.units[0].args, vec!["a", "b"]);
        let Stmt::Call { name, args } = &f.units[1].body[0] else {
            panic!()
        };
        assert_eq!(name, "sub");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn allocate_deallocate() {
        let f = parse(
            "program t
real(kind=8), dimension(:,:), allocatable :: u
allocate(u(0:65, 0:65))
deallocate(u)
end program t",
        );
        let Stmt::Allocate { items } = &f.units[0].body[0] else {
            panic!()
        };
        assert_eq!(items[0].0, "u");
        assert_eq!(items[0].1.len(), 2);
        let Stmt::Deallocate { names } = &f.units[0].body[1] else {
            panic!()
        };
        assert_eq!(names, &vec!["u".to_string()]);
    }

    #[test]
    fn operator_precedence() {
        let f = parse("program t\nreal(kind=8) :: x\nx = 1.0 + 2.0 * 3.0 ** 2\nend program t");
        let Stmt::Assign { value, .. } = &f.units[0].body[0] else {
            panic!()
        };
        // 1 + (2 * (3 ** 2))
        let Expr::Bin {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected + at top, got {value:?}")
        };
        let Expr::Bin {
            op: BinOp::Mul,
            rhs: pow,
            ..
        } = rhs.as_ref()
        else {
            panic!("expected * under +")
        };
        assert!(matches!(pow.as_ref(), Expr::Bin { op: BinOp::Pow, .. }));
    }

    #[test]
    fn unary_minus_binds_looser_than_pow() {
        let f = parse("program t\nreal(kind=8) :: x\nx = -x ** 2\nend program t");
        let Stmt::Assign { value, .. } = &f.units[0].body[0] else {
            panic!()
        };
        // -(x**2)
        assert!(matches!(value, Expr::Un { op: UnOp::Neg, .. }));
    }

    #[test]
    fn missing_end_is_error() {
        let toks = lex("program t\ninteger :: i\n").unwrap();
        let err = parse_source(&toks).unwrap_err();
        assert!(
            err.diagnostics
                .iter()
                .any(|d| d.code == fsc_ir::diag::codes::PARSE_UNTERMINATED),
            "{err}"
        );
    }

    #[test]
    fn recovery_reports_multiple_errors_per_file() {
        // Three independent broken statements: all three must be reported.
        let toks = lex("program t
integer :: i
i = + * 2
i = )
i = 3 +
i = 1
end program t")
        .unwrap();
        let err = parse_source(&toks).unwrap_err();
        assert!(
            err.diagnostics.len() >= 3,
            "expected >=3 diagnostics, got {}: {err}",
            err.diagnostics.len()
        );
        // Each carries a distinct source line.
        let lines: Vec<u32> = err
            .diagnostics
            .iter()
            .filter_map(|d| d.span.map(|s| s.line))
            .collect();
        assert!(lines.contains(&3), "{lines:?}");
        assert!(lines.contains(&4), "{lines:?}");
        assert!(lines.contains(&5), "{lines:?}");
    }

    #[test]
    fn recovery_continues_past_bad_declaration() {
        let toks = lex("program t
integer, bogus :: i
real(kind=8) :: x
x = * 1.0
end program t")
        .unwrap();
        let err = parse_source(&toks).unwrap_err();
        // Both the bad decl attribute and the bad statement are reported.
        assert!(
            err.diagnostics
                .iter()
                .any(|d| d.code == fsc_ir::diag::codes::PARSE_BAD_DECL),
            "{err}"
        );
        assert!(err.diagnostics.len() >= 2, "{err}");
    }

    #[test]
    fn error_count_is_bounded() {
        let mut src = String::from("program t\ninteger :: i\n");
        for _ in 0..200 {
            src.push_str("i = )\n");
        }
        src.push_str("end program t\n");
        let toks = lex(&src).unwrap();
        let err = parse_source(&toks).unwrap_err();
        assert!(err.diagnostics.len() <= 25, "{}", err.diagnostics.len());
    }

    #[test]
    fn errors_have_spans_and_stable_codes() {
        let toks = lex("program t\ninteger :: i\ni = (1 + 2\nend program t").unwrap();
        let err = parse_source(&toks).unwrap_err();
        let d = err.primary().expect("diagnostic");
        assert_eq!(d.code, fsc_ir::diag::codes::PARSE_EXPECTED);
        assert_eq!(d.span.map(|s| s.line), Some(3));
    }
}
