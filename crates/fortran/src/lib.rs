//! # fsc-fortran — a Fortran frontend lowering to the FIR dialect
//!
//! This crate plays the role of Flang in the paper's pipeline (Figure 1):
//! free-form Fortran source in, a module of `fir` + `arith` + `math` IR out,
//! structurally matching what `flang -fc1 -emit-mlir` emits for the same
//! code — in particular the patterns the stencil-discovery pass keys on:
//!
//! * counted `do` loops become `fir.do_loop` whose induction variable is
//!   stored to the loop variable's `fir.alloca` at the top of the body (as
//!   Flang does), so array index expressions *load* the variable rather than
//!   using the SSA iv directly;
//! * array element accesses become explicit 1-based → 0-based index
//!   arithmetic feeding `fir.coordinate_of`;
//! * all scalar arithmetic uses the standard `arith`/`math` dialects.
//!
//! The supported subset is the one the paper's benchmarks (Gauss–Seidel and
//! Piacsek–Williams advection) and tests use: programs and subroutines,
//! `integer`/`real(kind=8)` scalars and arrays with explicit (possibly
//! non-default lower bound) shapes, `parameter` constants, `allocatable`
//! arrays with `allocate`/`deallocate`, nested `do` loops, block `if`, array
//! and scalar assignment, intrinsic calls, and `call`.

// The frontend must never panic on user input: every failure is a coded
// `Diagnostic`. Keep the lint pressure on in non-test code.
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;

pub use ast::{Decl, Expr, ProgramUnit, SourceFile, Stmt, TypeSpec};
pub use lexer::{lex, Token, TokenKind};
pub use lower::lower_to_fir;
pub use parser::parse_source;
pub use sema::analyze;

use fsc_ir::{Module, Result};

/// One-call convenience: source text → analysed AST → FIR module.
///
/// This is "running Flang" in the reproduction: the output module is the
/// input to the stencil discovery pass of `fsc-passes`.
pub fn compile_to_fir(source: &str) -> Result<Module> {
    let tokens = lex(source)?;
    let ast = parse_source(&tokens)?;
    let analysed = analyze(ast)?;
    lower_to_fir(&analysed)
}
