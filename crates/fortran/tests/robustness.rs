//! Frontend robustness: the lexer/parser/sema/lowering chain must never
//! panic — malformed input produces `Err`, never a crash — and valid
//! generated programs always compile.

use fsc_fortran::compile_to_fir;
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup (printable ASCII) must not panic the frontend.
    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\\n]{0,300}") {
        let _ = compile_to_fir(&s);
    }

    /// Fortran-shaped token soup: fragments recombined at random. Most are
    /// invalid; all must fail gracefully.
    #[test]
    fn fortran_shaped_soup_never_panics(
        picks in prop::collection::vec(0usize..16, 0..40)
    ) {
        const FRAGMENTS: &[&str] = &[
            "program t\n", "end program t\n", "integer :: i\n",
            "real(kind=8) :: a(8)\n", "do i = 1, 8\n", "end do\n",
            "a(i) = a(i-1) + 1.0\n", "if (i > 2) then\n", "end if\n",
            "call s(a)\n", "allocate(a(4))\n", "deallocate(a)\n",
            "x = .true. .and. y\n", "** + - ( ) , ::\n",
            "integer, parameter :: n = 4\n", "else\n",
        ];
        let text: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let _ = compile_to_fir(&text);
    }

    /// Structurally valid generated programs always compile and verify.
    #[test]
    fn generated_programs_compile(
        n in 2usize..32,
        lb in -2i64..2,
        coeff in -8i32..8,
        depth in 1usize..4,
    ) {
        let mut body_open = String::new();
        let mut body_close = String::new();
        let vars = ["i", "j", "k"];
        let mut decl_dims = Vec::new();
        for var in vars.iter().take(depth.min(3)) {
            body_open.push_str(&format!("do {var} = 1, {n}\n"));
            body_close.insert_str(0, "end do\n");
            decl_dims.push(format!("{lb}:{}", n as i64 + 2));
        }
        let dims = decl_dims.join(", ");
        let idx = vars[..depth.min(3)].join(", ");
        let src = format!(
            "program g
  implicit none
  integer, parameter :: n = {n}
  integer :: i, j, k
  real(kind=8) :: a({dims}), r({dims})
  {body_open}r({idx}) = {coeff}.0 * a({idx})
{body_close}end program g
"
        );
        let m = compile_to_fir(&src).unwrap();
        fsc_dialects::verify::verify(&m).unwrap();
    }
}

#[test]
fn helpful_errors_for_common_mistakes() {
    let cases = [
        ("program t\nx = 1.0\nend program t", "not declared"),
        ("program t\ninteger :: i\ni = 1", "not closed"), // missing end
        (
            "program t\nreal(kind=8) :: a(2)\na(1,2) = 0.0\nend program t",
            "rank",
        ),
        (
            "program t\ncall nothere()\nend program t",
            "unknown subroutine",
        ),
        (
            "program t\ninteger, parameter :: n = 2\nn = 3\nend program t",
            "parameter",
        ),
    ];
    for (src, needle) in cases {
        let err = compile_to_fir(src).unwrap_err();
        assert!(
            err.message.contains(needle),
            "expected '{needle}' in error for {src:?}, got: {err}"
        );
    }
}
