//! Hardened pass-pipeline driver: snapshot → run → verify → rollback.
//!
//! The plain [`PassManager`] aborts compilation on the first pass error and
//! offers no protection against a pass that *panics* or silently corrupts
//! the module. This driver wraps a pass list with a containment protocol:
//!
//! 1. snapshot the module (cheap arena clone) before each pass;
//! 2. run the pass under [`std::panic::catch_unwind`], so a buggy pass
//!    cannot take the whole compiler down;
//! 3. re-verify the module (structural + dialect checks) after each pass,
//!    so a pass that "succeeded" but broke an invariant is caught at the
//!    pass that broke it;
//! 4. on any failure, restore the snapshot — the module is left in the
//!    last known-verified state — and stop, attesting *which* pass failed,
//!    *how* (error / panic / broke-IR) and *why* in a [`PassFailure`].
//!
//! The driver never turns a pass failure into a process abort: the caller
//! (the degradation ladder in `fsc-core`) receives a [`PipelineReport`] and
//! decides whether to reroute down a simpler pipeline.

use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::pass::PassStat;
use fsc_ir::{IrError, Module, Pass, PassManager, PassResult, Result};

/// How a pass was rejected by the hardened driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The pass returned an error (`E0501`).
    Failed,
    /// The pass panicked; the payload message was captured (`E0502`).
    Panicked,
    /// The pass completed but left the module failing verification
    /// (`E0503`).
    BrokeIr,
}

impl FailureKind {
    /// The diagnostic code attested for this failure class.
    pub fn code(self) -> &'static str {
        match self {
            FailureKind::Failed => codes::PASS_FAILED,
            FailureKind::Panicked => codes::PASS_PANICKED,
            FailureKind::BrokeIr => codes::PASS_BROKE_IR,
        }
    }
}

/// Attestation of a rejected pass.
#[derive(Debug, Clone)]
pub struct PassFailure {
    /// Name of the pass that failed.
    pub pass: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Coded diagnostics describing the failure.
    pub diagnostics: Vec<Diagnostic>,
}

impl PassFailure {
    fn new(pass: &dyn Pass, kind: FailureKind, detail: String) -> Self {
        let verb = match kind {
            FailureKind::Failed => "failed",
            FailureKind::Panicked => "panicked",
            FailureKind::BrokeIr => "broke the IR",
        };
        let diag = Diagnostic::error(
            kind.code(),
            format!("pass '{}' {verb}: {detail}", pass.name()),
        )
        .note("the module was rolled back to its state before this pass");
        Self {
            pass: pass.name().to_string(),
            kind,
            diagnostics: vec![diag],
        }
    }

    /// Convert into the crate error type (for callers without a fallback).
    pub fn into_error(self) -> IrError {
        IrError::from_diagnostics(self.diagnostics)
    }
}

/// Report of one hardened pipeline run.
#[derive(Debug, Default)]
pub struct PipelineReport {
    /// Stats of the passes that ran and were accepted, in order.
    pub stats: Vec<PassStat>,
    /// The first failure, if any; the pipeline stops at it.
    pub failure: Option<PassFailure>,
    /// Whether a snapshot rollback was performed.
    pub rolled_back: bool,
}

impl PipelineReport {
    /// True when every scheduled pass ran and verified.
    pub fn completed(&self) -> bool {
        self.failure.is_none()
    }
}

/// A pass pipeline driven with snapshots, panic containment, post-pass
/// verification and rollback.
pub struct HardenedPipeline {
    passes: Vec<Box<dyn Pass>>,
    /// Name of a pass whose output is deliberately corrupted after it runs
    /// — a fault-injection hook attesting the rollback path end to end.
    sabotage: Option<String>,
}

impl HardenedPipeline {
    /// Wrap the passes of a built pass manager.
    pub fn new(pm: PassManager) -> Self {
        Self {
            passes: pm.into_passes(),
            sabotage: None,
        }
    }

    /// Corrupt the module right after the named pass runs, so its post-pass
    /// verification fails and the rollback path is exercised for real.
    pub fn sabotage_pass(mut self, name: impl Into<String>) -> Self {
        self.sabotage = Some(name.into());
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run the passes in order under the containment protocol. A failure
    /// does not return `Err`: the module is rolled back to its state before
    /// the offending pass and the failure is attested in the report, so the
    /// caller can reroute to a fallback pipeline.
    pub fn run(&self, module: &mut Module) -> PipelineReport {
        let mut report = PipelineReport::default();
        for pass in &self.passes {
            let snapshot = module.clone();
            let start = Instant::now();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| pass.run(module)));
            if self.sabotage.as_deref() == Some(pass.name()) {
                corrupt_module(module);
            }
            let failure = match outcome {
                Err(payload) => Some(PassFailure::new(
                    pass.as_ref(),
                    FailureKind::Panicked,
                    payload_message(payload.as_ref()),
                )),
                Ok(Err(e)) => Some(PassFailure::new(
                    pass.as_ref(),
                    FailureKind::Failed,
                    e.message.clone(),
                )),
                Ok(Ok(result)) => match fsc_dialects::verify::verify(module) {
                    Err(e) => Some(PassFailure::new(
                        pass.as_ref(),
                        FailureKind::BrokeIr,
                        e.message.clone(),
                    )),
                    Ok(()) => {
                        report.stats.push(PassStat {
                            name: pass.name().to_string(),
                            duration: start.elapsed(),
                            changed: result == PassResult::Changed,
                        });
                        None
                    }
                },
            };
            if let Some(failure) = failure {
                *module = snapshot;
                report.rolled_back = true;
                report.failure = Some(failure);
                break;
            }
        }
        report
    }

    /// Strict mode: like [`run`](Self::run), but a failure is returned as
    /// an error (the module is still rolled back first).
    pub fn run_strict(&self, module: &mut Module) -> Result<Vec<PassStat>> {
        let report = self.run(module);
        match report.failure {
            Some(f) => Err(f.into_error()),
            None => Ok(report.stats),
        }
    }
}

/// Render a caught panic payload as a message (shared with the degradation
/// ladder in `fsc-core`, which guards the non-pass compile stages).
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<IrError>() {
        e.message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deliberately break a structural invariant: add an op that uses the
/// result of a *detached* op, which the verifier rejects.
fn corrupt_module(module: &mut Module) {
    let top = module.top_block();
    let detached = module.create_op("sabotage.value", vec![], vec![fsc_ir::Type::i64()], vec![]);
    let v = module.result(detached);
    let user = module.create_op("sabotage.use", vec![v], vec![], vec![]);
    module.append_op(top, user);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_ir::Attribute;

    struct AddMarker;
    impl Pass for AddMarker {
        fn name(&self) -> &str {
            "add-marker"
        }
        fn run(&self, module: &mut Module) -> Result<PassResult> {
            let top = module.top_block();
            let op = module.create_op("test.marker", vec![], vec![], vec![]);
            module.append_op(top, op);
            Ok(PassResult::Changed)
        }
    }

    struct Panicker;
    impl Pass for Panicker {
        fn name(&self) -> &str {
            "panicker"
        }
        fn run(&self, module: &mut Module) -> Result<PassResult> {
            // Mutate first, then die: rollback must undo the mutation.
            let top = module.top_block();
            let op = module.create_op("test.halfdone", vec![], vec![], vec![]);
            module.append_op(top, op);
            panic!("simulated pass bug");
        }
    }

    struct Erroring;
    impl Pass for Erroring {
        fn name(&self) -> &str {
            "erroring"
        }
        fn run(&self, _m: &mut Module) -> Result<PassResult> {
            Err(IrError::new("deliberate failure"))
        }
    }

    struct Breaker;
    impl Pass for Breaker {
        fn name(&self) -> &str {
            "breaker"
        }
        fn run(&self, module: &mut Module) -> Result<PassResult> {
            let top = module.top_block();
            let c = module.create_op(
                "t.c",
                vec![],
                vec![fsc_ir::Type::i64()],
                vec![("value", Attribute::int(0))],
            );
            let v = module.result(c);
            let u = module.create_op("t.use", vec![v], vec![], vec![]);
            module.append_op(top, u);
            Ok(PassResult::Changed)
        }
    }

    fn pipeline_of(passes: Vec<Box<dyn Pass>>) -> HardenedPipeline {
        let mut pm = PassManager::new();
        for p in passes {
            pm.add_boxed(p);
        }
        HardenedPipeline::new(pm)
    }

    #[test]
    fn clean_pipeline_completes_with_stats() {
        let hp = pipeline_of(vec![Box::new(AddMarker), Box::new(AddMarker)]);
        let mut m = Module::new();
        let report = hp.run(&mut m);
        assert!(report.completed());
        assert!(!report.rolled_back);
        assert_eq!(report.stats.len(), 2);
        assert_eq!(m.live_op_count(), 2);
    }

    #[test]
    fn panicking_pass_is_contained_and_rolled_back() {
        let hp = pipeline_of(vec![Box::new(AddMarker), Box::new(Panicker)]);
        let mut m = Module::new();
        let report = hp.run(&mut m);
        let failure = report.failure.as_ref().expect("failure attested");
        assert_eq!(failure.kind, FailureKind::Panicked);
        assert_eq!(failure.pass, "panicker");
        assert!(report.rolled_back);
        // Only the accepted pass's op survives: the panicker's half-done
        // mutation was rolled back.
        assert_eq!(m.live_op_count(), 1);
        let rendered = failure.diagnostics[0].render();
        assert!(rendered.contains("E0502"), "{rendered}");
        assert!(rendered.contains("simulated pass bug"), "{rendered}");
    }

    #[test]
    fn erroring_pass_stops_the_pipeline() {
        let hp = pipeline_of(vec![Box::new(Erroring), Box::new(AddMarker)]);
        let mut m = Module::new();
        let report = hp.run(&mut m);
        let failure = report.failure.as_ref().expect("failure attested");
        assert_eq!(failure.kind, FailureKind::Failed);
        // The pass after the failure never ran.
        assert_eq!(report.stats.len(), 0);
        assert_eq!(m.live_op_count(), 0);
        assert_eq!(failure.diagnostics[0].code, codes::PASS_FAILED);
    }

    #[test]
    fn ir_breaking_pass_is_caught_by_post_verification() {
        let hp = pipeline_of(vec![Box::new(Breaker)]);
        let mut m = Module::new();
        let report = hp.run(&mut m);
        let failure = report.failure.as_ref().expect("failure attested");
        assert_eq!(failure.kind, FailureKind::BrokeIr);
        assert!(report.rolled_back);
        assert_eq!(m.live_op_count(), 0, "corruption rolled back");
    }

    #[test]
    fn sabotage_hook_corrupts_and_rolls_back_the_named_pass() {
        let hp =
            pipeline_of(vec![Box::new(AddMarker), Box::new(AddMarker)]).sabotage_pass("add-marker");
        let mut m = Module::new();
        let report = hp.run(&mut m);
        let failure = report.failure.as_ref().expect("sabotage must be caught");
        assert_eq!(failure.kind, FailureKind::BrokeIr);
        assert_eq!(failure.pass, "add-marker");
        // The very first pass was sabotaged, so nothing survives.
        assert_eq!(m.live_op_count(), 0);
    }

    #[test]
    fn run_strict_surfaces_the_failure_as_an_error() {
        let hp = pipeline_of(vec![Box::new(Erroring)]);
        let mut m = Module::new();
        let err = hp.run_strict(&mut m).expect_err("strict mode errors");
        assert!(err.message.contains("deliberate failure"), "{err}");
        assert_eq!(err.primary().map(|d| d.code), Some(codes::PASS_FAILED));
    }

    #[test]
    fn real_pipeline_runs_hardened() {
        // The actual CPU pipeline over a real lowered module.
        let src = "program t
integer, parameter :: n = 8
integer :: i
real(kind=8) :: a(0:n+1), r(0:n+1)
do i = 1, n
  r(i) = 0.5 * (a(i-1) + a(i+1))
end do
end program t";
        let mut m = fsc_fortran::compile_to_fir(src).expect("compiles");
        let discovery = HardenedPipeline::new(crate::pipelines::discovery_pipeline());
        let report = discovery.run(&mut m);
        assert!(report.completed(), "{:?}", report.failure);
        let mut stencil = crate::extract::extract_stencils(&mut m).expect("extracts");
        let cpu = HardenedPipeline::new(crate::pipelines::cpu_pipeline().expect("builds"));
        let report = cpu.run(&mut stencil);
        assert!(report.completed(), "{:?}", report.failure);
        assert!(report.stats.len() >= 4);
    }
}
