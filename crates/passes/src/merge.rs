//! `merge_stencils_if_possible` (line 29 of the paper's Listing 3): fuse
//! adjacent `stencil.apply` ops that share the same iteration bounds, after
//! deduplicating redundant field/temp loads.
//!
//! This is the transformation responsible for the PW advection benchmark's
//! "three separate stencil computations across three fields which are then
//! fused by our stencil transformation into a single stencil region" (§4.1).

use std::collections::HashMap;

use fsc_dialects::stencil;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{IrError, Module, OpBuilder, OpId, Pass, PassResult, Result, ValueId};

/// The merge pass. Registered as `merge-stencils`.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeStencils;

impl Pass for MergeStencils {
    fn name(&self) -> &str {
        "merge-stencils"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let changed = merge_adjacent_applies(module)?;
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

/// Deduplicate loads, then fuse sibling applies until a fixed point.
/// Returns whether anything changed.
pub fn merge_adjacent_applies(module: &mut Module) -> Result<bool> {
    let mut changed = dedupe_loads(module);
    loop {
        if !fuse_one_pair(module)? {
            break;
        }
        changed = true;
    }
    Ok(changed)
}

/// Within each block, identical `stencil.external_load`s of the same source
/// (and `stencil.load`s of the same field) collapse onto the first one.
fn dedupe_loads(module: &mut Module) -> bool {
    let mut changed = false;
    let blocks: Vec<_> = {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for op in collect_ops_named(module, stencil::EXTERNAL_LOAD)
            .into_iter()
            .chain(collect_ops_named(module, stencil::LOAD))
        {
            if let Some(b) = module.op(op).parent {
                if seen.insert(b) {
                    out.push(b);
                }
            }
        }
        out
    };
    for block in blocks {
        let mut first: HashMap<(String, ValueId, String), ValueId> = HashMap::new();
        for op in module.block_ops(block) {
            let name = module.op(op).name.full().to_string();
            if name != stencil::EXTERNAL_LOAD && name != stencil::LOAD {
                continue;
            }
            let source = module.op(op).operands[0];
            let ty = module.value_type(module.result(op)).to_string();
            let key = (name, source, ty);
            match first.get(&key) {
                Some(&canonical) => {
                    let result = module.result(op);
                    module.replace_all_uses(result, canonical);
                    module.erase_op(op);
                    changed = true;
                }
                None => {
                    first.insert(key, module.result(op));
                }
            }
        }
    }
    changed
}

/// Find one fusible adjacent pair of applies and fuse it.
fn fuse_one_pair(module: &mut Module) -> Result<bool> {
    let applies = collect_ops_named(module, stencil::APPLY);
    for &a in &applies {
        let Some(block) = module.op(a).parent else {
            continue;
        };
        // The next apply in the same block, if any.
        let siblings = module.block_ops(block);
        let Some(a_pos) = siblings.iter().position(|&o| o == a) else {
            continue;
        };
        let Some(&b) = siblings[a_pos + 1..]
            .iter()
            .find(|&&o| module.op(o).name.full() == stencil::APPLY)
        else {
            continue;
        };
        if can_fuse(module, a, b, &siblings[a_pos + 1..]) {
            fuse(module, a, b)?;
            return Ok(true);
        }
    }
    Ok(false)
}

/// `b` can fold into `a` when bounds match and no value or memory
/// dependency runs from `a`'s outputs to `b`'s inputs.
fn can_fuse(m: &Module, a: OpId, b: OpId, between_and_after: &[OpId]) -> bool {
    let bounds_a = stencil::ApplyOp(a).output_bounds(m);
    let bounds_b = stencil::ApplyOp(b).output_bounds(m);
    if bounds_a != bounds_b {
        return false;
    }
    // Direct value dependency: any input of b produced by a.
    for &input in &m.op(b).operands {
        if m.defining_op(input) == Some(a) {
            return false;
        }
    }
    // Memory dependency: a's results stored to a field whose source array is
    // also the source of one of b's input temps.
    let mut stored_bases = Vec::new();
    for &op in between_and_after {
        if m.op(op).name.full() == stencil::STORE {
            let temp = m.op(op).operands[0];
            if m.defining_op(temp) == Some(a) {
                if let Some(base) = field_source(m, m.op(op).operands[1]) {
                    stored_bases.push(base);
                }
            }
        }
    }
    for &input in &m.op(b).operands {
        if let Some(load) = m.defining_op(input) {
            if m.op(load).name.full() == stencil::LOAD {
                if let Some(base) = field_source(m, m.op(load).operands[0]) {
                    if stored_bases.contains(&base) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

use fsc_ir::rewrite::hoist_def_before;

/// The external storage value behind a field.
fn field_source(m: &Module, field: ValueId) -> Option<ValueId> {
    let def = m.defining_op(field)?;
    if m.op(def).name.full() == stencil::EXTERNAL_LOAD {
        Some(m.op(def).operands[0])
    } else {
        None
    }
}

/// Fuse apply `b` into apply `a`, producing a combined apply at `a`'s
/// position with `a`'s results first.
fn fuse(module: &mut Module, a: OpId, b: OpId) -> Result<()> {
    let a_view = stencil::ApplyOp(a);
    let bounds = a_view.output_bounds(module);

    // Deduplicated input list.
    let mut inputs: Vec<ValueId> = Vec::new();
    for &v in module.op(a).operands.iter().chain(&module.op(b).operands) {
        if !inputs.contains(&v) {
            inputs.push(v);
        }
    }
    let mut result_elems = Vec::new();
    for &r in module.op(a).results.iter().chain(&module.op(b).results) {
        let elem = module
            .value_type(r)
            .elem_type()
            .ok_or_else(|| IrError::new("apply result is not a temp type"))?
            .clone();
        result_elems.push(elem);
    }
    let old_results: Vec<ValueId> = module
        .op(a)
        .results
        .iter()
        .chain(&module.op(b).results)
        .copied()
        .collect();

    let fused = {
        let mut builder = OpBuilder::before(module, a);
        stencil::build_apply(&mut builder, inputs.clone(), bounds, result_elems)
    };
    // `b`'s inputs (field/temp loads, captured scalar loads) were created
    // after `a`; hoist them (and their pure dependencies) above the fused
    // apply so SSA dominance holds.
    for &input in &inputs {
        hoist_def_before(module, input, fused.0);
    }
    let fused_body = fused.body(module);

    // Map each original apply's block args onto the fused block args, then
    // move (clone) the body ops across.
    let mut return_values = Vec::new();
    for &src_apply in &[a, b] {
        let view = stencil::ApplyOp(src_apply);
        let src_body = view.body(module);
        let mut map: fsc_ir::rewrite::ValueMap = HashMap::new();
        let src_inputs = module.op(src_apply).operands.clone();
        let src_args = module.block_args(src_body).to_vec();
        for (arg, input) in src_args.iter().zip(&src_inputs) {
            let fused_idx = inputs
                .iter()
                .position(|v| v == input)
                .ok_or_else(|| IrError::new("fused apply lost an input"))?;
            let fused_arg = module.block_args(fused_body)[fused_idx];
            map.insert(*arg, fused_arg);
        }
        let snapshot = module.clone();
        for op in snapshot.block_ops(src_body) {
            if snapshot.op(op).name.full() == stencil::RETURN {
                for &v in &snapshot.op(op).operands {
                    return_values.push(*map.get(&v).unwrap_or(&v));
                }
            } else {
                fsc_ir::rewrite::clone_op_into(&snapshot, op, module, fused_body, &mut map);
            }
        }
        let _ = view;
    }
    {
        let mut builder = OpBuilder::at_end(module, fused_body);
        stencil::build_return(&mut builder, return_values);
    }

    // Rewire consumers (the stencil.stores) and drop the originals.
    let fused_results = module.op(fused.0).results.clone();
    for (old, new) in old_results.iter().zip(&fused_results) {
        module.replace_all_uses(*old, *new);
    }
    module.erase_op(a);
    module.erase_op(b);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use fsc_dialects::verify::verify;
    use fsc_fortran::compile_to_fir;
    use fsc_ir::types::DimBound;

    /// Three same-domain stencils over shared inputs (PW advection shape).
    const THREE_STENCILS: &str = "
program pw
  integer, parameter :: n = 8
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), v(0:n+1, 0:n+1, 0:n+1)
  real(kind=8) :: su(0:n+1, 0:n+1, 0:n+1), sv(0:n+1, 0:n+1, 0:n+1), sw(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        su(i, j, k) = 0.5 * (u(i-1, j, k) + u(i+1, j, k))
        sv(i, j, k) = 0.5 * (v(i, j-1, k) + v(i, j+1, k))
        sw(i, j, k) = 0.25 * (u(i, j, k-1) + v(i, j, k+1))
      end do
    end do
  end do
end program pw
";

    #[test]
    fn three_applies_fuse_into_one() {
        let mut m = compile_to_fir(THREE_STENCILS).unwrap();
        let n = discover_stencils(&mut m).unwrap();
        assert_eq!(n, 3);
        merge_adjacent_applies(&mut m).unwrap();
        let applies = collect_ops_named(&m, stencil::APPLY);
        assert_eq!(applies.len(), 1, "expected one fused apply");
        let apply = stencil::ApplyOp(applies[0]);
        assert_eq!(m.op(applies[0]).results.len(), 3);
        // Shared inputs deduplicated: u and v temps only.
        assert_eq!(apply.inputs(&m).len(), 2);
        // Three stores remain, now fed by the fused apply.
        let stores = collect_ops_named(&m, stencil::STORE);
        assert_eq!(stores.len(), 3);
        for s in stores {
            assert_eq!(m.defining_op(m.op(s).operands[0]), Some(applies[0]));
        }
        verify(&m).unwrap();
    }

    #[test]
    fn dependent_applies_do_not_fuse() {
        // Second stencil reads what the first wrote: must stay separate.
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: a(0:n+1), b(0:n+1), c(0:n+1)
  do i = 1, n
    b(i) = 0.5 * (a(i-1) + a(i+1))
  end do
  do i = 1, n
    c(i) = 0.5 * (b(i-1) + b(i+1))
  end do
end program t
";
        let mut m = compile_to_fir(src).unwrap();
        assert_eq!(discover_stencils(&mut m).unwrap(), 2);
        merge_adjacent_applies(&mut m).unwrap();
        assert_eq!(collect_ops_named(&m, stencil::APPLY).len(), 2);
        verify(&m).unwrap();
    }

    #[test]
    fn different_bounds_do_not_fuse() {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: a(0:n+1), b(0:n+1), c(0:n+1)
  do i = 1, n
    b(i) = a(i)
  end do
  do i = 2, n
    c(i) = a(i)
  end do
end program t
";
        let mut m = compile_to_fir(src).unwrap();
        assert_eq!(discover_stencils(&mut m).unwrap(), 2);
        merge_adjacent_applies(&mut m).unwrap();
        assert_eq!(collect_ops_named(&m, stencil::APPLY).len(), 2);
    }

    #[test]
    fn dedupe_collapses_shared_field_loads() {
        let mut m = compile_to_fir(THREE_STENCILS).unwrap();
        discover_stencils(&mut m).unwrap();
        // After dedupe+fusion, one external_load per distinct array.
        merge_adjacent_applies(&mut m).unwrap();
        let loads = collect_ops_named(&m, stencil::EXTERNAL_LOAD);
        assert_eq!(loads.len(), 5); // u, v, su, sv, sw
        verify(&m).unwrap();
    }

    #[test]
    fn fused_domain_bounds_preserved() {
        let mut m = compile_to_fir(THREE_STENCILS).unwrap();
        discover_stencils(&mut m).unwrap();
        merge_adjacent_applies(&mut m).unwrap();
        let applies = collect_ops_named(&m, stencil::APPLY);
        let apply = stencil::ApplyOp(applies[0]);
        assert_eq!(
            apply.output_bounds(&m),
            vec![
                DimBound::new(1, 8),
                DimBound::new(1, 8),
                DimBound::new(1, 8)
            ]
        );
    }
}
