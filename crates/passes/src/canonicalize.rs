//! Generic cleanup passes: `canonicalize` (constant folding + algebraic
//! identities + DCE), `cse` and `dce` — the "existing MLIR miscellaneous
//! passes" slots of the paper's pipeline.

use std::collections::HashMap;

use fsc_ir::rewrite::{erase_dead_pure_ops, is_pure, replace_op};
use fsc_ir::walk::collect_ops_where;
use fsc_ir::{Attribute, Module, OpBuilder, OpId, Pass, PassResult, Result};

/// Constant folding + identities + dead-code sweep. Registered as
/// `canonicalize`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &str {
        "canonicalize"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let mut changed = false;
        loop {
            let mut round = false;
            round |= fold_constants(module);
            round |= erase_dead_pure_ops(module) > 0;
            if !round {
                break;
            }
            changed = true;
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

/// Common-subexpression elimination over pure ops, per block. Registered as
/// `cse`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &str {
        "cse"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let changed = run_cse(module);
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

/// Dead-code elimination. Registered as `dce`.
#[derive(Debug, Default, Clone, Copy)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let n = erase_dead_pure_ops(module);
        Ok(if n > 0 {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

fn const_of(m: &Module, v: fsc_ir::ValueId) -> Option<&Attribute> {
    let def = m.defining_op(v)?;
    if m.op(def).name.full() == "arith.constant" {
        m.op(def).attr("value")
    } else {
        None
    }
}

/// One folding sweep; returns whether anything changed.
fn fold_constants(m: &mut Module) -> bool {
    let candidates = collect_ops_where(m, |m, op| {
        let name = m.op(op).name.full();
        (name.starts_with("arith.") && name != "arith.constant") || name == "fir.convert"
    });
    let mut changed = false;
    for op in candidates {
        if !m.is_alive(op) {
            continue;
        }
        if try_fold(m, op) {
            changed = true;
        }
    }
    changed
}

fn try_fold(m: &mut Module, op: OpId) -> bool {
    let name = m.op(op).name.full().to_string();
    let operands = m.op(op).operands.clone();
    let result_ty = match m.op(op).results.as_slice() {
        [r] => m.value_type(*r).clone(),
        _ => return false,
    };

    // Integer binary folding.
    let int2 = |m: &Module| -> Option<(i64, i64)> {
        Some((
            const_of(m, operands[0])?.as_int()?,
            const_of(m, operands[1])?.as_int()?,
        ))
    };
    let float2 = |m: &Module| -> Option<(f64, f64)> {
        Some((
            const_of(m, operands[0])?.as_float()?,
            const_of(m, operands[1])?.as_float()?,
        ))
    };

    let folded: Option<Attribute> = match name.as_str() {
        "arith.addi" => int2(m).map(|(a, b)| Attribute::Int(a + b, result_ty.clone())),
        "arith.subi" => int2(m).map(|(a, b)| Attribute::Int(a - b, result_ty.clone())),
        "arith.muli" => int2(m).map(|(a, b)| Attribute::Int(a * b, result_ty.clone())),
        "arith.addf" => float2(m).map(|(a, b)| Attribute::Float(a + b, result_ty.clone())),
        "arith.subf" => float2(m).map(|(a, b)| Attribute::Float(a - b, result_ty.clone())),
        "arith.mulf" => float2(m).map(|(a, b)| Attribute::Float(a * b, result_ty.clone())),
        "arith.divf" => float2(m).map(|(a, b)| Attribute::Float(a / b, result_ty.clone())),
        "fir.convert" | "arith.index_cast" | "arith.extsi" | "arith.trunci" => {
            // Conversions between integer-ish types of a constant.
            const_of(m, operands[0])
                .and_then(Attribute::as_int)
                .and_then(|v| {
                    result_ty
                        .is_int_or_index()
                        .then(|| Attribute::Int(v, result_ty.clone()))
                })
        }
        "arith.sitofp" => const_of(m, operands[0])
            .and_then(Attribute::as_int)
            .map(|v| Attribute::Float(v as f64, result_ty.clone())),
        _ => None,
    };

    if let Some(attr) = folded {
        let anchor = op;
        let mut b = OpBuilder::before(m, anchor);
        let (_, v) = b.op1("arith.constant", vec![], result_ty, vec![("value", attr)]);
        replace_op(m, op, &[v]);
        return true;
    }

    // Algebraic identities: x+0, x-0, x*1, x*0, 0+x, 1*x.
    let ident = match name.as_str() {
        "arith.addf" | "arith.addi" => {
            if const_is_zero(m, operands[1]) {
                Some(operands[0])
            } else if const_is_zero(m, operands[0]) {
                Some(operands[1])
            } else {
                None
            }
        }
        "arith.subf" | "arith.subi" => {
            if const_is_zero(m, operands[1]) {
                Some(operands[0])
            } else {
                None
            }
        }
        "arith.mulf" | "arith.muli" => {
            if const_is_one(m, operands[1]) {
                Some(operands[0])
            } else if const_is_one(m, operands[0]) {
                Some(operands[1])
            } else {
                None
            }
        }
        _ => None,
    };
    if let Some(v) = ident {
        replace_op(m, op, &[v]);
        return true;
    }
    false
}

fn const_is_zero(m: &Module, v: fsc_ir::ValueId) -> bool {
    match const_of(m, v) {
        Some(Attribute::Int(0, _)) => true,
        Some(Attribute::Float(f, _)) => *f == 0.0,
        _ => false,
    }
}

fn const_is_one(m: &Module, v: fsc_ir::ValueId) -> bool {
    match const_of(m, v) {
        Some(Attribute::Int(1, _)) => true,
        Some(Attribute::Float(f, _)) => *f == 1.0,
        _ => false,
    }
}

/// CSE over pure ops, scoped per block.
fn run_cse(m: &mut Module) -> bool {
    let mut changed = false;
    // Group live pure ops by parent block.
    let mut blocks: Vec<fsc_ir::BlockId> = Vec::new();
    for op in m.all_live_ops() {
        if let Some(b) = m.op(op).parent {
            if !blocks.contains(&b) {
                blocks.push(b);
            }
        }
    }
    for block in blocks {
        let mut seen: HashMap<String, fsc_ir::OpId> = HashMap::new();
        for op in m.block_ops(block) {
            let data = m.op(op);
            if !is_pure(data.name.full()) || data.results.len() != 1 || !data.regions.is_empty() {
                continue;
            }
            let key = format!(
                "{}|{:?}|{:?}|{}",
                data.name,
                data.operands,
                data.attrs,
                m.value_type(data.results[0])
            );
            match seen.get(&key) {
                Some(&prev) => {
                    let old = m.result(op);
                    let new = m.result(prev);
                    m.replace_all_uses(old, new);
                    m.erase_op(op);
                    changed = true;
                }
                None => {
                    seen.insert(key, op);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_dialects::arith;
    use fsc_ir::{OpBuilder, Type};

    #[test]
    fn folds_constant_arith_chain() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let two = arith::const_f64(&mut b, 2.0);
        let three = arith::const_f64(&mut b, 3.0);
        let sum = arith::addf(&mut b, two, three);
        let keep = b.op("test.keep", vec![sum], vec![], vec![]);
        let _ = keep;
        Canonicalize.run(&mut m).unwrap();
        // The add folded to a constant 5.0 feeding test.keep.
        let keep_ops = fsc_ir::walk::collect_ops_named(&m, "test.keep");
        let operand = m.op(keep_ops[0]).operands[0];
        let def = m.defining_op(operand).unwrap();
        assert_eq!(m.op(def).name.full(), "arith.constant");
        assert_eq!(m.op(def).attr("value").unwrap().as_float(), Some(5.0));
    }

    #[test]
    fn identity_mul_by_one_removed() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let x = b.op1("test.x", vec![], Type::f64(), vec![]).1;
        let one = arith::const_f64(&mut b, 1.0);
        let y = arith::mulf(&mut b, x, one);
        b.op("test.keep", vec![y], vec![], vec![]);
        Canonicalize.run(&mut m).unwrap();
        let keep_ops = fsc_ir::walk::collect_ops_named(&m, "test.keep");
        assert_eq!(m.op(keep_ops[0]).operands[0], x);
    }

    #[test]
    fn cse_merges_duplicate_constants() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let a = arith::const_f64(&mut b, 7.0);
        let c = arith::const_f64(&mut b, 7.0);
        b.op("test.keep", vec![a, c], vec![], vec![]);
        Cse.run(&mut m).unwrap();
        let keep_ops = fsc_ir::walk::collect_ops_named(&m, "test.keep");
        let ops = m.op(keep_ops[0]).operands.clone();
        assert_eq!(ops[0], ops[1]);
        assert_eq!(
            fsc_ir::walk::collect_ops_named(&m, "arith.constant").len(),
            1
        );
    }

    #[test]
    fn cse_respects_differing_attrs() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let a = arith::const_f64(&mut b, 7.0);
        let c = arith::const_f64(&mut b, 8.0);
        b.op("test.keep", vec![a, c], vec![], vec![]);
        Cse.run(&mut m).unwrap();
        assert_eq!(
            fsc_ir::walk::collect_ops_named(&m, "arith.constant").len(),
            2
        );
    }

    #[test]
    fn dce_removes_unused_pure() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        arith::const_f64(&mut b, 1.0);
        assert_eq!(Dce.run(&mut m).unwrap(), PassResult::Changed);
        assert_eq!(m.live_op_count(), 0);
    }

    #[test]
    fn integer_fold_through_convert() {
        let mut m = Module::new();
        let top = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, top);
        let c = arith::const_int(&mut b, 41, Type::i32());
        let one = arith::const_int(&mut b, 1, Type::i32());
        let sum = arith::addi(&mut b, c, one);
        let conv = fsc_dialects::fir::convert(&mut b, sum, Type::i64());
        b.op("test.keep", vec![conv], vec![], vec![]);
        Canonicalize.run(&mut m).unwrap();
        let keep_ops = fsc_ir::walk::collect_ops_named(&m, "test.keep");
        let def = m.defining_op(m.op(keep_ops[0]).operands[0]).unwrap();
        assert_eq!(m.op(def).attr("value").unwrap().as_int(), Some(42));
    }
}
