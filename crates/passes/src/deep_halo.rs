//! `mpi-deep-halos`: communication-avoiding deep ghost layers.
//!
//! Classic halo exchange moves a `w`-wide face before *every* sweep. With
//! deep halos of depth `k`, each exchange moves a `k·w`-wide face instead,
//! and every rank redundantly computes the `(k−1)·w` ghost cells just past
//! its owned block — shrinking the redundant band by `w` per sweep — so one
//! exchange round feeds `k` consecutive sweeps. The extra face volume is
//! tiny next to `k − 1` saved message latencies, which is what dominates at
//! thousands of ranks.
//!
//! The pass itself is a width transform over the `dmp.swap` ops planted by
//! `stencil-to-dmp`: every non-zero halo width is multiplied by `depth`,
//! and the owning functions are stamped with a `dmp_halo_depth` attribute.
//! Downstream nothing changes shape — `dmp-to-mpi` emits the same exchange
//! structure with wider faces, and the distributed executor reads the
//! attribute to amortise one exchange over `depth` dispatches (falling back
//! to exchanging every dispatch, still with the wider faces and therefore
//! still bit-identical, whenever the kernel is outside the amortisable
//! shape).
//!
//! Gate: the transform only applies to 1-D process grids. On
//! multi-dimension grids the redundant ghost band would additionally need
//! *corner* neighbours' data, which the face-only exchange schedule does
//! not move; rather than emit a subtly wrong schedule the pass leaves the
//! module untouched (classic `k = 1` halos, still correct).

use crate::dmp_lowering::DECOMPOSITION_ATTR;
use fsc_dialects::dmp;
use fsc_ir::pass::PassOptions;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{Attribute, Module, Pass, PassResult, Result};

/// Attribute on `func.func` recording the ghost-layer depth `k`. Swap
/// widths in the module are already multiplied by `k` when this is set.
pub const HALO_DEPTH_ATTR: &str = "dmp_halo_depth";

/// Widest supported ghost depth (matches the executor's clamp).
pub const MAX_HALO_DEPTH: i64 = 64;

/// `mpi-deep-halos{depth=k}`: widen halos ×k for communication avoidance.
#[derive(Debug, Clone)]
pub struct MpiDeepHalos {
    /// Ghost-layer depth `k`; `1` (the default) is a no-op.
    pub depth: i64,
}

impl Default for MpiDeepHalos {
    fn default() -> Self {
        Self { depth: 1 }
    }
}

impl MpiDeepHalos {
    /// From pipeline options (`depth=4`). Out-of-range depths clamp into
    /// `1..=`[`MAX_HALO_DEPTH`].
    pub fn from_options(opts: &PassOptions) -> Self {
        let depth = opts
            .get("depth")
            .and_then(|s| s.trim().parse::<i64>().ok())
            .unwrap_or(1);
        Self {
            depth: depth.clamp(1, MAX_HALO_DEPTH),
        }
    }
}

impl Pass for MpiDeepHalos {
    fn name(&self) -> &str {
        "mpi-deep-halos"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let depth = self.depth.clamp(1, MAX_HALO_DEPTH);
        if depth <= 1 {
            return Ok(PassResult::Unchanged);
        }
        let swaps = collect_ops_named(module, dmp::SWAP);
        if swaps.is_empty() {
            return Ok(PassResult::Unchanged);
        }
        // 1-D grids only: deeper ghost bands on multi-dimension grids need
        // corner exchanges the face schedule does not provide.
        let funcs = module.top_level_ops_named(fsc_dialects::func::FUNC);
        let one_dim = funcs.iter().all(|&f| {
            module
                .op(f)
                .attr(DECOMPOSITION_ATTR)
                .and_then(Attribute::as_index_list)
                .is_none_or(|g| g.len() == 1)
        });
        if !one_dim {
            return Ok(PassResult::Unchanged);
        }
        for swap in swaps {
            let Some(halo) = dmp::swap_halo(module, swap) else {
                continue;
            };
            let widened: Vec<i64> = halo.iter().map(|&w| w * depth).collect();
            module
                .op_mut(swap)
                .attrs
                .insert("halo".into(), Attribute::IndexList(widened));
        }
        for f in funcs {
            if module.op(f).attr(DECOMPOSITION_ATTR).is_some() {
                module
                    .op_mut(f)
                    .attrs
                    .insert(HALO_DEPTH_ATTR.into(), Attribute::int(depth));
            }
        }
        Ok(PassResult::Changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use crate::dmp_lowering::StencilToDmp;
    use crate::extract::extract_stencils;
    use fsc_fortran::compile_to_fir;

    const GS1D: &str = "
program gs
  integer, parameter :: n = 32
  integer :: i
  real(kind=8) :: u(0:n+1), un(0:n+1)
  do i = 1, n
    un(i) = 0.5d0 * (u(i-1) + u(i+1))
  end do
end program gs
";

    fn dmp_module(grid: Vec<i64>) -> Module {
        let mut m = compile_to_fir(GS1D).unwrap();
        discover_stencils(&mut m).unwrap();
        let mut st = extract_stencils(&mut m).unwrap();
        StencilToDmp { grid }.run(&mut st).unwrap();
        st
    }

    #[test]
    fn widens_swaps_and_stamps_depth() {
        let mut st = dmp_module(vec![4]);
        MpiDeepHalos { depth: 3 }.run(&mut st).unwrap();
        let swaps = collect_ops_named(&st, dmp::SWAP);
        assert_eq!(dmp::swap_halo(&st, swaps[0]), Some(vec![3]));
        let f = st.top_level_ops_named(fsc_dialects::func::FUNC)[0];
        assert_eq!(
            st.op(f).attr(HALO_DEPTH_ATTR).and_then(Attribute::as_int),
            Some(3)
        );
    }

    #[test]
    fn depth_one_is_a_no_op() {
        let mut st = dmp_module(vec![4]);
        assert_eq!(
            MpiDeepHalos { depth: 1 }.run(&mut st).unwrap(),
            PassResult::Unchanged
        );
        let swaps = collect_ops_named(&st, dmp::SWAP);
        assert_eq!(dmp::swap_halo(&st, swaps[0]), Some(vec![1]));
    }

    #[test]
    fn multi_dim_grids_are_left_untouched() {
        // 2-D decomposition: the redundant band would need corner data the
        // face exchange never moves, so the pass must refuse to widen.
        const GS3D: &str = "
program gs
  integer, parameter :: n = 8
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                     + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
      end do
    end do
  end do
end program gs
";
        let mut m = compile_to_fir(GS3D).unwrap();
        discover_stencils(&mut m).unwrap();
        let mut st = extract_stencils(&mut m).unwrap();
        StencilToDmp { grid: vec![2, 2] }.run(&mut st).unwrap();
        assert_eq!(
            MpiDeepHalos { depth: 4 }.run(&mut st).unwrap(),
            PassResult::Unchanged
        );
        let swaps = collect_ops_named(&st, dmp::SWAP);
        assert_eq!(dmp::swap_halo(&st, swaps[0]), Some(vec![0, 1, 1]));
        let f = st.top_level_ops_named(fsc_dialects::func::FUNC)[0];
        assert!(st.op(f).attr(HALO_DEPTH_ATTR).is_none());
    }

    #[test]
    fn options_clamp_the_depth() {
        let mut opts = PassOptions::default();
        opts.set("depth", "500");
        assert_eq!(MpiDeepHalos::from_options(&opts).depth, MAX_HALO_DEPTH);
        opts.set("depth", "0");
        assert_eq!(MpiDeepHalos::from_options(&opts).depth, 1);
        assert_eq!(MpiDeepHalos::from_options(&PassOptions::default()).depth, 1);
    }
}
