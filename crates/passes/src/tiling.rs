//! `scf-parallel-loop-tiling{parallel-loop-tile-sizes=...}`: tile a parallel
//! loop nest into parallel-over-tiles with serial intra-tile loops.
//!
//! Listing 4 of the paper passes `32,32,1` for the GPU flow and notes both
//! that performance is sensitive to these values and that bad values can
//! fail at runtime — our Figure-5 ablation bench sweeps them.

use std::collections::HashMap;

use fsc_dialects::{arith, scf};
use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::pass::PassOptions;
use fsc_ir::rewrite::clone_op_into;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{IrError, Module, OpBuilder, OpId, Pass, PassResult, Result, ValueId};

/// The tiling pass.
#[derive(Debug, Clone)]
pub struct ParallelLoopTiling {
    /// Tile size per parallel dimension (in the loop's dimension order);
    /// missing entries default to 1.
    pub tile_sizes: Vec<i64>,
    /// Innermost-dimension unroll hint, stamped as the `"unroll"` attr on
    /// the tiled loop. The kernel compiler seeds each nest's default
    /// execution plan from it (the jit/specialized row skeletons unroll by
    /// 4 when the plan asks for ≥ 4); the autotuner may later replace it.
    pub unroll: i64,
}

impl Default for ParallelLoopTiling {
    fn default() -> Self {
        Self {
            tile_sizes: vec![32, 32, 1],
            unroll: 4,
        }
    }
}

impl ParallelLoopTiling {
    /// Construct from pipeline options
    /// (`parallel-loop-tile-sizes=32,32,1 unroll=4`).
    pub fn from_options(opts: &PassOptions) -> Self {
        let tile_sizes = opts
            .get_int_list("parallel-loop-tile-sizes")
            .unwrap_or_else(|| vec![32, 32, 1]);
        let unroll = opts
            .get_int_list("unroll")
            .and_then(|l| l.first().copied())
            .unwrap_or(4);
        Self { tile_sizes, unroll }
    }

    fn tile_for_dim(&self, d: usize) -> i64 {
        self.tile_sizes.get(d).copied().unwrap_or(1)
    }

    /// Reject out-of-range option values. Explicit zero/negative tile
    /// sizes used to be silently clamped to 1, which hid typos in
    /// `parallel-loop-tile-sizes=` and made ablation sweeps lie about the
    /// configuration they measured; now they are a coded error. Missing
    /// trailing dimensions still default to 1 (untiled) — only values the
    /// user actually wrote are validated.
    fn validate(&self) -> Result<()> {
        if !(1..=8).contains(&self.unroll) {
            return Err(IrError::from_diagnostic(
                Diagnostic::error(
                    codes::PASS_BAD_OPTION,
                    format!(
                        "scf-parallel-loop-tiling: unroll {} is out of range (1..=8)",
                        self.unroll
                    ),
                )
                .note("use 1 to disable unrolling of the innermost row loop"),
            ));
        }
        if let Some(&bad) = self.tile_sizes.iter().find(|&&t| t < 1) {
            return Err(IrError::from_diagnostic(
                Diagnostic::error(
                    codes::PASS_BAD_OPTION,
                    format!(
                        "scf-parallel-loop-tiling: tile size {bad} is out of range \
                         (parallel-loop-tile-sizes entries must be >= 1)"
                    ),
                )
                .note(format!(
                    "requested parallel-loop-tile-sizes={}",
                    self.tile_sizes
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ))
                .note("use 1 to leave a dimension untiled"),
            ));
        }
        Ok(())
    }
}

impl Pass for ParallelLoopTiling {
    fn name(&self) -> &str {
        "scf-parallel-loop-tiling"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        self.validate()?;
        let mut changed = false;
        for par in collect_ops_named(module, scf::PARALLEL) {
            if !module.is_alive(par) {
                continue;
            }
            // Skip already-tiled loops (their bodies start with scf.for
            // nests we created) by only tiling loops not marked.
            if module.op(par).attr("tiled").is_some() {
                continue;
            }
            tile_one(module, par, self)?;
            changed = true;
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

fn tile_one(module: &mut Module, par_op: OpId, cfg: &ParallelLoopTiling) -> Result<()> {
    let par = scf::ParallelOp(par_op);
    let n = par.num_dims(module);
    let lbs = par.lbs(module);
    let ubs = par.ubs(module);
    let steps = par.steps(module);
    let src_body = par.body(module);
    let src_ivs = par.ivs(module);

    // Outer: parallel over tile origins.
    let outer = {
        let mut b = OpBuilder::before(module, par_op);
        let tile_steps: Vec<ValueId> = (0..n)
            .map(|d| arith::const_index(&mut b, cfg.tile_for_dim(d)))
            .collect();
        let outer = scf::build_parallel(&mut b, lbs, ubs.clone(), tile_steps);
        b.module().op_mut(outer.0).attrs.insert(
            "tiled".into(),
            fsc_ir::Attribute::IndexList((0..n).map(|d| cfg.tile_for_dim(d)).collect()),
        );
        b.module().op_mut(outer.0).attrs.insert(
            "unroll".into(),
            fsc_ir::Attribute::Int(cfg.unroll, fsc_ir::Type::Index),
        );
        outer
    };
    let outer_ivs = outer.ivs(module);

    // Inner serial loops: for each dim, origin .. min(origin+tile, ub).
    let mut current = outer.body(module);
    let mut inner_ivs: Vec<ValueId> = Vec::with_capacity(n);
    for d in 0..n {
        let term = module
            .block_terminator(current)
            .ok_or_else(|| IrError::new("tiled loop body lost its terminator"))?;
        let mut b = OpBuilder::before(module, term);
        let tile = arith::const_index(&mut b, cfg.tile_for_dim(d));
        let end = arith::addi(&mut b, outer_ivs[d], tile);
        let clamped = arith::binary(&mut b, "arith.minsi", end, ubs[d]);
        let f = scf::build_for(&mut b, outer_ivs[d], clamped, steps[d]);
        let m2 = b.module();
        inner_ivs.push(f.iv(m2));
        current = f.body(m2);
    }

    // Move the body.
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    for (old, new) in src_ivs.iter().zip(&inner_ivs) {
        map.insert(*old, *new);
    }
    let term = module
        .block_terminator(current)
        .ok_or_else(|| IrError::new("tiled loop body lost its terminator"))?;
    let snapshot = module.clone();
    for op in snapshot.block_ops(src_body) {
        if snapshot.op(op).name.full() == scf::YIELD {
            continue;
        }
        let cloned = clone_op_into(&snapshot, op, module, current, &mut map);
        module.detach_op(cloned);
        module.insert_op_before(term, cloned);
    }
    module.erase_op(par_op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_dialects::verify::verify;

    fn parallel_module(dims: usize, extent: i64) -> Module {
        let mut m = Module::new();
        let (_, entry) = fsc_dialects::func::build_func(&mut m, "k", vec![], vec![]);
        let mut b = OpBuilder::at_end(&mut m, entry);
        let zero = arith::const_index(&mut b, 0);
        let n = arith::const_index(&mut b, extent);
        let one = arith::const_index(&mut b, 1);
        let par = scf::build_parallel(&mut b, vec![zero; dims], vec![n; dims], vec![one; dims]);
        let m2 = b.module();
        let body = par.body(m2);
        let iv = par.ivs(m2)[0];
        let term = m2.block_terminator(body).unwrap();
        let mut ib = OpBuilder::before(m2, term);
        ib.op("test.use", vec![iv], vec![], vec![]);
        m
    }

    #[test]
    fn tiles_two_dims() {
        let mut m = parallel_module(2, 64);
        let pass = ParallelLoopTiling {
            tile_sizes: vec![32, 16],
            ..Default::default()
        };
        assert_eq!(pass.run(&mut m).unwrap(), PassResult::Changed);
        let pars = collect_ops_named(&m, scf::PARALLEL);
        assert_eq!(pars.len(), 1);
        let par = scf::ParallelOp(pars[0]);
        // Steps became the tile sizes.
        let steps: Vec<i64> = par
            .steps(&m)
            .iter()
            .map(|&s| arith::const_int_value(&m, s).unwrap())
            .collect();
        assert_eq!(steps, vec![32, 16]);
        // Two nested intra-tile fors with min-clamped bounds.
        let fors = collect_ops_named(&m, scf::FOR);
        assert_eq!(fors.len(), 2);
        assert_eq!(collect_ops_named(&m, "arith.minsi").len(), 2);
        // Body now uses the inner for's iv.
        let uses = collect_ops_named(&m, "test.use");
        let innermost_for = scf::ForOp(fors[fors.len() - 1]);
        let _ = innermost_for;
        assert_eq!(uses.len(), 1);
        verify(&m).unwrap();
    }

    #[test]
    fn idempotent_on_tiled_loops() {
        let mut m = parallel_module(1, 64);
        let pass = ParallelLoopTiling {
            tile_sizes: vec![8],
            ..Default::default()
        };
        pass.run(&mut m).unwrap();
        assert_eq!(pass.run(&mut m).unwrap(), PassResult::Unchanged);
        assert_eq!(collect_ops_named(&m, scf::PARALLEL).len(), 1);
    }

    #[test]
    fn listing4_sizes_parse() {
        let mut opts = PassOptions::default();
        opts.set("parallel-loop-tile-sizes", "32,32,1");
        let pass = ParallelLoopTiling::from_options(&opts);
        assert_eq!(pass.tile_sizes, vec![32, 32, 1]);
        assert_eq!(pass.tile_for_dim(0), 32);
        assert_eq!(pass.tile_for_dim(2), 1);
        assert_eq!(pass.tile_for_dim(9), 1, "missing dims default to 1");
    }

    #[test]
    fn zero_and_negative_tile_sizes_are_rejected_with_coded_diagnostic() {
        for bad in [vec![0, 32], vec![32, -4, 1]] {
            let mut m = parallel_module(2, 64);
            let err = ParallelLoopTiling {
                tile_sizes: bad.clone(),
                ..Default::default()
            }
            .run(&mut m)
            .expect_err("tile sizes {bad:?} must be rejected");
            let diag = err.diagnostics.first().expect("coded diagnostic");
            assert_eq!(diag.code, codes::PASS_BAD_OPTION);
            assert!(err.message.contains("E0504"), "{}", err.message);
            // The module was not touched: the untiled parallel survives.
            assert_eq!(collect_ops_named(&m, scf::FOR).len(), 0);
        }
    }

    #[test]
    fn records_tile_attr_for_gpu_mapping() {
        let mut m = parallel_module(2, 64);
        ParallelLoopTiling {
            tile_sizes: vec![32, 4],
            ..Default::default()
        }
        .run(&mut m)
        .unwrap();
        let pars = collect_ops_named(&m, scf::PARALLEL);
        assert_eq!(
            m.op(pars[0]).attr("tiled").unwrap().as_index_list(),
            Some(&[32, 4][..])
        );
    }

    #[test]
    fn records_unroll_attr_for_tier_selection() {
        let mut m = parallel_module(2, 64);
        ParallelLoopTiling {
            tile_sizes: vec![16, 16],
            unroll: 2,
        }
        .run(&mut m)
        .unwrap();
        let pars = collect_ops_named(&m, scf::PARALLEL);
        assert_eq!(m.op(pars[0]).attr("unroll").unwrap().as_int(), Some(2));
        // Pipeline option spelling parses into the same place.
        let mut opts = PassOptions::default();
        opts.set("unroll", "8");
        assert_eq!(ParallelLoopTiling::from_options(&opts).unroll, 8);
        assert_eq!(
            ParallelLoopTiling::from_options(&PassOptions::default()).unroll,
            4
        );
    }

    #[test]
    fn out_of_range_unroll_is_rejected_with_coded_diagnostic() {
        for bad in [0i64, 9, -3] {
            let mut m = parallel_module(1, 32);
            let err = ParallelLoopTiling {
                tile_sizes: vec![8],
                unroll: bad,
            }
            .run(&mut m)
            .expect_err("unroll {bad} must be rejected");
            assert_eq!(
                err.diagnostics.first().unwrap().code,
                codes::PASS_BAD_OPTION
            );
        }
    }
}
