//! # fsc-passes — the paper's transformations
//!
//! This crate contains the two bespoke passes that are the paper's core
//! contribution, plus the pre-existing MLIR/xDSL passes its pipeline
//! (Figure 1, Listing 4) leans on, reimplemented over `fsc-ir`:
//!
//! * [`discover`] — *stencil discovery* (the paper's Listing 3): find FIR
//!   loop-nest-driven array stores whose right-hand sides are neighbourhood
//!   reads, and rewrite each into `stencil.apply`;
//! * [`merge`] — `merge_stencils_if_possible`: fuse adjacent compatible
//!   applies (this is what fuses PW advection's three stencils);
//! * [`extract`] — *stencil extraction*: outline the stencil ops into a
//!   separate module connected through a `fir.call` passing `llvm_ptr`s,
//!   because Flang and mlir-opt know disjoint dialect sets (§3);
//! * [`stencil_to_scf`] — the xDSL stencil lowering, with the paper's two
//!   shapes (CPU: outer `scf.parallel` + inner `scf.for`; GPU: one coalesced
//!   `scf.parallel`);
//! * [`openmp`] — `convert-scf-to-openmp`;
//! * [`tiling`] — `scf-parallel-loop-tiling{parallel-loop-tile-sizes=...}`;
//! * [`gpu_lowering`] — `convert-parallel-loops-to-gpu`, kernel outlining,
//!   and the two data-management strategies of Figure 5;
//! * [`dmp_lowering`] — `stencil-to-dmp` and `dmp-to-mpi`;
//! * [`canonicalize`] — canonicalisation, constant folding, CSE and DCE;
//! * [`fir_to_standard`] — `convert-fir-to-standard`: the paper's fourth
//!   further-work avenue (lower FIR into the standard dialects instead of
//!   straight to LLVM-IR), implemented;
//! * [`pipelines`] — named pass pipelines, including the verbatim Listing 4
//!   GPU pipeline string.

// Passes run under the hardened driver's containment protocol, but they
// must still not panic on their own: every failure is a coded diagnostic.
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod analysis;
pub mod canonicalize;
pub mod deep_halo;
pub mod discover;
pub mod dmp_lowering;
pub mod extract;
pub mod fir_to_standard;
pub mod gpu_lowering;
pub mod merge;
pub mod openmp;
pub mod overlap;
pub mod pipeline;
pub mod pipelines;
pub mod stencil_to_scf;
pub mod tiling;

pub use discover::DiscoverStencils;
pub use extract::extract_stencils;
pub use merge::MergeStencils;
pub use pipeline::{FailureKind, HardenedPipeline, PassFailure, PipelineReport};
