//! Distributed-memory lowering: `stencil-to-dmp` and `dmp-to-mpi`
//! (§3 / Figure 6 of the paper).
//!
//! `stencil-to-dmp` computes each apply's halo (the maximum absolute access
//! offset per dimension) and inserts a technology-agnostic `dmp.swap` on
//! every input temp, plus a `dmp.grid` describing the process decomposition
//! (the paper decomposes the 3-D domain over two dimensions).
//!
//! `dmp-to-mpi` specialises every swap into non-blocking point-to-point
//! exchanges with both neighbours along each decomposed dimension, followed
//! by a `mpi.waitall` — the message schedule the `fsc-mpisim` substrate
//! executes and times.

use fsc_dialects::{dmp, mpi, stencil};
use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::pass::PassOptions;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{Attribute, IrError, Module, OpBuilder, Pass, PassResult, Result};

/// Attribute on `func.func` recording the process-grid decomposition.
pub const DECOMPOSITION_ATTR: &str = "dmp_decomposition";

/// `stencil-to-dmp`: annotate applies with halo swaps.
#[derive(Debug, Clone)]
pub struct StencilToDmp {
    /// Process grid shape, aligned to the *last* (slowest) data dimensions.
    /// E.g. `[4, 2]` over a 3-D domain decomposes dims 2 and 1.
    pub grid: Vec<i64>,
}

impl Default for StencilToDmp {
    fn default() -> Self {
        Self { grid: vec![2, 2] }
    }
}

impl StencilToDmp {
    /// From pipeline options (`grid=4,2`).
    pub fn from_options(opts: &PassOptions) -> Self {
        Self {
            grid: opts.get_int_list("grid").unwrap_or_else(|| vec![2, 2]),
        }
    }
}

impl Pass for StencilToDmp {
    fn name(&self) -> &str {
        "stencil-to-dmp"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let applies = collect_ops_named(module, stencil::APPLY);
        if applies.is_empty() {
            return Ok(PassResult::Unchanged);
        }
        for apply_op in applies {
            let apply = stencil::ApplyOp(apply_op);
            let bounds = apply.output_bounds(module);
            let rank = bounds.len();
            // Halo per dim = max |offset| over all accesses in the body.
            let mut halo = vec![0i64; rank];
            for op in module.block_ops(apply.body(module)) {
                if let Some(offs) = stencil::access_offset(module, op) {
                    for (d, &o) in offs.iter().enumerate() {
                        halo[d] = halo[d].max(o.abs());
                    }
                }
            }
            // A decomposed dimension that carries a halo dependency but whose
            // interior extent does not divide evenly over the grid would leave
            // a silent remainder in the naive block partition; reject it with
            // a coded diagnostic. Two shapes stay legal: extents no larger
            // than the part count (the degenerate idle-rank case, which
            // `partition` handles exactly) and dims with zero halo (pointwise
            // nests have no cross-rank dependency, so any block split is
            // correct regardless of remainder).
            let from = rank.saturating_sub(self.grid.len());
            for (axis, &parts) in self.grid.iter().enumerate() {
                let d = from + axis;
                if d >= rank || parts <= 0 || halo[d] == 0 {
                    continue;
                }
                let extent = (bounds[d].upper - bounds[d].lower + 1).max(0);
                // Oversubscription: more ranks than interior cells on a
                // halo-carrying dimension means most ranks idle while the
                // rest cannot hold a full halo — reject up front instead of
                // silently falling back at dispatch. A single rank stays
                // legal (it trivially owns the whole, possibly empty,
                // domain), as does any grid on pointwise dims (no halo).
                if parts > extent.max(1) {
                    return Err(IrError::from_diagnostic(
                        Diagnostic::error(
                            codes::DMP_OVERSUBSCRIBED,
                            format!(
                                "stencil-to-dmp: process grid axis {axis} has {parts} ranks \
                                 but the halo-carrying dimension {d} has only {extent} \
                                 interior cells"
                            ),
                        )
                        .note(format!(
                            "use at most {} ranks along this axis, or enlarge the domain",
                            extent.max(1)
                        )),
                    ));
                }
                if extent > parts && extent % parts != 0 {
                    return Err(IrError::from_diagnostic(
                        Diagnostic::error(
                            codes::DMP_DECOMPOSITION,
                            format!(
                                "stencil-to-dmp: process grid axis {axis} has {parts} ranks \
                                 but the decomposed interior extent of dimension {d} is \
                                 {extent}, which {parts} does not divide"
                            ),
                        )
                        .note(format!(
                            "choose grid axis sizes that divide {extent}, or resize the \
                             domain to a multiple of {parts}"
                        )),
                    ));
                }
            }
            // Which dims are decomposed: the last `grid.len()` ones.
            let decomposed_from = rank.saturating_sub(self.grid.len());
            let mut swap_halo = vec![0i64; rank];
            swap_halo[decomposed_from..rank].copy_from_slice(&halo[decomposed_from..rank]);
            let inputs = module.op(apply_op).operands.clone();
            let mut b = OpBuilder::before(module, apply_op);
            for input in inputs {
                if b.module_ref().value_type(input).stencil_bounds().is_some() {
                    dmp::build_swap(&mut b, input, swap_halo.clone());
                }
            }
        }
        // Record the decomposition on every function containing an apply.
        let funcs = module.top_level_ops_named(fsc_dialects::func::FUNC);
        for f in funcs {
            module.op_mut(f).attrs.insert(
                DECOMPOSITION_ATTR.into(),
                Attribute::IndexList(self.grid.clone()),
            );
        }
        Ok(PassResult::Changed)
    }
}

/// `dmp-to-mpi`: swaps become staged isend/irecv exchanges plus waitall.
///
/// Each swap direction gets *distinct* staging values: an `mpi.pack` feeding
/// the `mpi.isend` (outgoing face gathered out of the field) and an
/// `mpi.halo_buffer` feeding the `mpi.irecv` (landing zone for the incoming
/// face), with an `mpi.unpack` after the `mpi.waitall` scattering the
/// received face back into the field's halo. Receives are posted before
/// sends so the per-rank schedule is post-recv → post-send → (compute) →
/// waitall → unpack, the order the overlapped executor relies on.
#[derive(Debug, Default, Clone, Copy)]
pub struct DmpToMpi;

impl Pass for DmpToMpi {
    fn name(&self) -> &str {
        "dmp-to-mpi"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let swaps = collect_ops_named(module, dmp::SWAP);
        if swaps.is_empty() {
            return Ok(PassResult::Unchanged);
        }
        let mut tag = 0i64;
        for swap in swaps {
            let halo = dmp::swap_halo(module, swap).unwrap_or_default();
            let field = module.op(swap).operands[0];
            let mut specs = Vec::new();
            for (dim, &width) in halo.iter().enumerate() {
                if width == 0 {
                    continue;
                }
                for direction in [-1i64, 1] {
                    specs.push(mpi::HaloSpec {
                        dim: dim as i64,
                        direction,
                        width,
                        tag,
                    });
                    tag += 1;
                }
            }
            let mut b = OpBuilder::before(module, swap);
            // Post all receives first, each into its own staging buffer.
            let recv_staging: Vec<_> = specs
                .iter()
                .map(|spec| {
                    let staging = mpi::halo_buffer(&mut b, field, spec);
                    mpi::irecv(&mut b, staging, spec);
                    staging
                })
                .collect();
            // Then pack and post every send, again through distinct staging.
            for spec in &specs {
                let staging = mpi::pack(&mut b, field, spec);
                mpi::isend(&mut b, staging, spec);
            }
            if !specs.is_empty() {
                mpi::waitall(&mut b);
                for (spec, &staging) in specs.iter().zip(&recv_staging) {
                    mpi::unpack(&mut b, staging, field, spec);
                }
            }
            module.erase_op(swap);
        }
        Ok(PassResult::Changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use crate::extract::extract_stencils;
    use fsc_fortran::compile_to_fir;

    const GS3D: &str = "
program gs
  integer, parameter :: n = 8
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                     + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
      end do
    end do
  end do
end program gs
";

    fn stencil_module() -> Module {
        let mut m = compile_to_fir(GS3D).unwrap();
        discover_stencils(&mut m).unwrap();
        extract_stencils(&mut m).unwrap()
    }

    #[test]
    fn swap_carries_halo_on_decomposed_dims() {
        let mut st = stencil_module();
        StencilToDmp { grid: vec![4, 2] }.run(&mut st).unwrap();
        let swaps = collect_ops_named(&st, dmp::SWAP);
        assert_eq!(swaps.len(), 1, "one input temp");
        // 3-D domain, 2-D grid: dims 1 and 2 decomposed, dim 0 local.
        assert_eq!(dmp::swap_halo(&st, swaps[0]), Some(vec![0, 1, 1]));
        // Decomposition recorded on the function.
        let f = st.top_level_ops_named(fsc_dialects::func::FUNC)[0];
        assert_eq!(
            st.op(f).attr(DECOMPOSITION_ATTR).unwrap().as_index_list(),
            Some(&[4, 2][..])
        );
    }

    #[test]
    fn dmp_to_mpi_generates_neighbour_exchanges() {
        let mut st = stencil_module();
        StencilToDmp { grid: vec![4, 2] }.run(&mut st).unwrap();
        DmpToMpi.run(&mut st).unwrap();
        assert!(collect_ops_named(&st, dmp::SWAP).is_empty());
        // 2 decomposed dims × 2 directions = 4 isend + 4 irecv + 1 waitall.
        assert_eq!(collect_ops_named(&st, mpi::ISEND).len(), 4);
        assert_eq!(collect_ops_named(&st, mpi::IRECV).len(), 4);
        assert_eq!(collect_ops_named(&st, mpi::WAITALL).len(), 1);
        let spec = mpi::halo_spec(&st, collect_ops_named(&st, mpi::ISEND)[0]).unwrap();
        assert_eq!(spec.width, 1);
    }

    #[test]
    fn one_dim_grid_swaps_last_dim_only() {
        let mut st = stencil_module();
        StencilToDmp { grid: vec![8] }.run(&mut st).unwrap();
        let swaps = collect_ops_named(&st, dmp::SWAP);
        assert_eq!(dmp::swap_halo(&st, swaps[0]), Some(vec![0, 0, 1]));
        let mut st2 = st.clone();
        DmpToMpi.run(&mut st2).unwrap();
        assert_eq!(collect_ops_named(&st2, mpi::ISEND).len(), 2);
    }

    #[test]
    fn exchanges_use_distinct_staging_buffers() {
        let mut st = stencil_module();
        StencilToDmp { grid: vec![4, 2] }.run(&mut st).unwrap();
        DmpToMpi.run(&mut st).unwrap();
        // Every send and every recv goes through its own staging value, and
        // the halo spec round-trips through pack/unpack as well.
        let mut staging = std::collections::HashSet::new();
        for op in collect_ops_named(&st, mpi::ISEND)
            .into_iter()
            .chain(collect_ops_named(&st, mpi::IRECV))
        {
            assert!(
                staging.insert(st.op(op).operands[0]),
                "staging buffer shared between exchanges"
            );
        }
        assert_eq!(staging.len(), 8);
        let packs = collect_ops_named(&st, mpi::PACK);
        let unpacks = collect_ops_named(&st, mpi::UNPACK);
        assert_eq!(packs.len(), 4);
        assert_eq!(unpacks.len(), 4);
        for &op in packs.iter().chain(&unpacks) {
            let spec = mpi::halo_spec(&st, op).expect("halo spec on staging op");
            assert_eq!(spec.width, 1);
            assert!(spec.dim == 1 || spec.dim == 2);
        }
        // Receives are posted before any send (overlap-friendly schedule),
        // and every unpack comes after the waitall.
        let mut sequence = Vec::new();
        fsc_ir::walk::walk_module(&st, &mut |op| {
            sequence.push(st.op(op).name.full().to_string())
        });
        let first = |name: &str| sequence.iter().position(|n| n == name).unwrap();
        let last = |name: &str| sequence.iter().rposition(|n| n == name).unwrap();
        assert!(last(mpi::IRECV) < first(mpi::ISEND), "recvs posted first");
        assert!(last(mpi::ISEND) < first(mpi::WAITALL));
        assert!(first(mpi::WAITALL) < first(mpi::UNPACK));
    }

    #[test]
    fn indivisible_grid_is_a_coded_error() {
        let mut st = stencil_module(); // interior extent 8 per dim
        let err = StencilToDmp { grid: vec![3] }.run(&mut st).unwrap_err();
        assert!(
            err.diagnostics
                .iter()
                .any(|d| d.code == fsc_ir::diag::codes::DMP_DECOMPOSITION),
            "expected E0505, got: {err:?}"
        );
        // Divisible and exactly-saturated (one cell per rank) grids stay
        // legal.
        StencilToDmp { grid: vec![4, 2] }
            .run(&mut stencil_module())
            .unwrap();
        StencilToDmp { grid: vec![8] }
            .run(&mut stencil_module())
            .unwrap();
    }

    #[test]
    fn oversubscribed_grid_is_a_coded_error() {
        // Interior extent 8 per dim, but 16 ranks on a halo-carrying dim:
        // more ranks than cells is rejected up front with E0506 rather
        // than silently idling half the grid.
        let mut st = stencil_module();
        let err = StencilToDmp { grid: vec![16] }.run(&mut st).unwrap_err();
        assert!(
            err.diagnostics
                .iter()
                .any(|d| d.code == fsc_ir::diag::codes::DMP_OVERSUBSCRIBED),
            "expected E0506, got: {err:?}"
        );
    }

    #[test]
    fn no_applies_means_unchanged() {
        let mut m = Module::new();
        assert_eq!(
            StencilToDmp::default().run(&mut m).unwrap(),
            PassResult::Unchanged
        );
        assert_eq!(DmpToMpi.run(&mut m).unwrap(), PassResult::Unchanged);
    }
}
