//! *Stencil extraction* (§3 of the paper): lift stencil-dialect ops out of
//! FIR functions into a separate module.
//!
//! Flang does not register the stencil dialect and mlir-opt does not know
//! FIR, so after discovery the mixed module must be split: the stencil
//! cluster in each block becomes a fresh function in a new module, and the
//! original block calls it through `fir.call`. Array storage crosses the
//! boundary as a pointer: the FIR side inserts
//! `fir.convert %ref : !fir.llvm_ptr<elem>` and the extracted function
//! declares the argument as `!llvm.ptr<elem>` — two types that (as the paper
//! notes) only line up because they are semantically identical at link time.
//! Captured scalars are passed by value.

use std::collections::HashMap;

use fsc_dialects::{fir, func};
use fsc_ir::rewrite::{clone_op_into, ValueMap};
use fsc_ir::{IrError, Module, OpBuilder, OpId, Result, Type, ValueId};

/// Split every stencil cluster out of `main`, returning the stencil module.
/// The `main` module is left free of stencil-dialect ops, with `fir.call`s
/// to functions named `stencil_region_<N>`.
pub fn extract_stencils(main: &mut Module) -> Result<Module> {
    let mut stencil_module = Module::new();
    let mut region_counter = 0usize;

    // Blocks containing stencil ops, in discovery order.
    let mut blocks = Vec::new();
    fsc_ir::walk::walk_module(main, &mut |op| {
        if main.op(op).name.dialect() == "stencil" {
            if let Some(b) = main.op(op).parent {
                if !blocks.contains(&b) {
                    blocks.push(b);
                }
            }
        }
    });

    for block in blocks {
        extract_block_clusters(main, &mut stencil_module, block, &mut region_counter)?;
    }
    Ok(stencil_module)
}

/// Extract each *connected* stencil cluster of a block as its own region
/// function. Two stencil ops belong to the same cluster when one's results
/// feed the other (directly or through other stencil ops in the block).
fn extract_block_clusters(
    main: &mut Module,
    stencil_module: &mut Module,
    block: fsc_ir::BlockId,
    region_counter: &mut usize,
) -> Result<()> {
    let stencil_ops: Vec<OpId> = main
        .block_ops(block)
        .into_iter()
        .filter(|&o| main.op(o).name.dialect() == "stencil")
        .collect();
    if stencil_ops.is_empty() {
        return Ok(());
    }
    // Union-find by value flow.
    let mut cluster_of: HashMap<OpId, usize> = HashMap::new();
    let mut next = 0usize;
    for &op in &stencil_ops {
        // Any operand produced by an already-clustered stencil op joins it.
        let mut found: Option<usize> = None;
        for &operand in &main.op(op).operands {
            if let Some(def) = main.defining_op(operand) {
                if let Some(&c) = cluster_of.get(&def) {
                    match found {
                        None => found = Some(c),
                        Some(f) if f != c => {
                            // Merge c into f.
                            for v in cluster_of.values_mut() {
                                if *v == c {
                                    *v = f;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let c = found.unwrap_or_else(|| {
            next += 1;
            next - 1
        });
        cluster_of.insert(op, c);
    }
    let mut clusters: Vec<Vec<OpId>> = Vec::new();
    {
        let mut ids: Vec<usize> = Vec::new();
        for &op in &stencil_ops {
            let c = cluster_of[&op];
            let idx = match ids.iter().position(|&i| i == c) {
                Some(i) => i,
                None => {
                    ids.push(c);
                    clusters.push(Vec::new());
                    ids.len() - 1
                }
            };
            clusters[idx].push(op);
        }
    }
    for cluster in clusters {
        extract_cluster(main, stencil_module, &cluster, region_counter)?;
    }
    Ok(())
}

fn extract_cluster(
    main: &mut Module,
    stencil_module: &mut Module,
    cluster: &[OpId],
    region_counter: &mut usize,
) -> Result<()> {
    // Gather boundary values: operands of cluster ops defined outside it.
    let mut ptr_inputs: Vec<ValueId> = Vec::new(); // fir refs feeding external_load
    let mut scalar_inputs: Vec<ValueId> = Vec::new();
    for &op in cluster {
        for &operand in &main.op(op).operands {
            let defined_inside = main
                .defining_op(operand)
                .is_some_and(|d| cluster.contains(&d));
            if defined_inside {
                continue;
            }
            let is_ptr_like = matches!(
                main.value_type(operand),
                Type::FirRef(_) | Type::FirHeap(_) | Type::FirLlvmPtr(_)
            );
            let list = if is_ptr_like {
                &mut ptr_inputs
            } else {
                &mut scalar_inputs
            };
            if !list.contains(&operand) {
                list.push(operand);
            }
        }
        // Results must not escape the cluster.
        for &r in &main.op(op).results {
            for (user, _) in main.uses(r) {
                if !cluster.contains(&user) {
                    return Err(IrError::new(format!(
                        "stencil result escapes its cluster into '{}'",
                        main.op(user).name
                    )));
                }
            }
        }
    }

    // Build the extracted function.
    let name = format!("stencil_region_{}", *region_counter);
    *region_counter += 1;
    let mut arg_types = Vec::new();
    for &p in &ptr_inputs {
        arg_types.push(Type::LlvmPtr(Some(Box::new(pointee_elem(main, p)))));
    }
    for &s in &scalar_inputs {
        arg_types.push(main.value_type(s).clone());
    }
    let (f, entry) = func::build_func(stencil_module, &name, arg_types, vec![]);
    let args = f.arguments(stencil_module);

    let mut map: ValueMap = HashMap::new();
    for (i, &p) in ptr_inputs.iter().enumerate() {
        map.insert(p, args[i]);
    }
    for (i, &s) in scalar_inputs.iter().enumerate() {
        map.insert(s, args[ptr_inputs.len() + i]);
    }
    let snapshot = main.clone();
    for &op in cluster {
        clone_op_into(&snapshot, op, stencil_module, entry, &mut map);
    }
    {
        let mut b = OpBuilder::at_end(stencil_module, entry);
        func::build_return(&mut b, vec![]);
    }

    // Replace the cluster in the main module with a fir.call.
    let last = *cluster
        .last()
        .ok_or_else(|| IrError::new("empty stencil cluster"))?;
    {
        let mut b = OpBuilder::before(main, last);
        let mut call_args = Vec::new();
        for &p in &ptr_inputs {
            let elem = pointee_elem(b.module_ref(), p);
            call_args.push(fir::convert(&mut b, p, Type::FirLlvmPtr(Box::new(elem))));
        }
        call_args.extend(scalar_inputs.iter().copied());
        fir::call(&mut b, &name, call_args, vec![]);
    }
    for &op in cluster.iter().rev() {
        main.erase_op(op);
    }
    Ok(())
}

/// The element type behind an array reference (`!fir.ref<!fir.array<..xT>>`
/// → `T`).
fn pointee_elem(m: &Module, p: ValueId) -> Type {
    m.value_type(p)
        .elem_type()
        .map(|inner| match inner {
            Type::FirArray { elem, .. } => (**elem).clone(),
            other => other.clone(),
        })
        .unwrap_or(Type::f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use crate::merge::merge_adjacent_applies;
    use fsc_dialects::stencil;
    use fsc_dialects::verify::{assert_dialect_absent, verify};
    use fsc_fortran::compile_to_fir;
    use fsc_ir::walk::collect_ops_named;

    const LISTING1: &str = "
program average
  integer, parameter :: n = 64
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    fn discover_and_extract(src: &str) -> (Module, Module) {
        let mut m = compile_to_fir(src).unwrap();
        discover_stencils(&mut m).unwrap();
        merge_adjacent_applies(&mut m).unwrap();
        let st = extract_stencils(&mut m).unwrap();
        (m, st)
    }

    #[test]
    fn main_module_is_stencil_free_and_calls_region() {
        let (m, st) = discover_and_extract(LISTING1);
        assert_dialect_absent(&m, "stencil").unwrap();
        let calls = collect_ops_named(&m, fir::CALL);
        assert_eq!(calls.len(), 1);
        assert_eq!(
            m.op(calls[0]).attr("callee").unwrap().as_symbol(),
            Some("stencil_region_0")
        );
        assert!(func::find_func(&st, "stencil_region_0").is_some());
        assert_eq!(collect_ops_named(&st, stencil::APPLY).len(), 1);
        verify(&m).unwrap();
        verify(&st).unwrap();
    }

    #[test]
    fn pointers_cross_as_llvm_ptr() {
        let (m, st) = discover_and_extract(LISTING1);
        let calls = collect_ops_named(&m, fir::CALL);
        let operands = m.op(calls[0]).operands.clone();
        assert_eq!(operands.len(), 2);
        for o in operands {
            assert_eq!(
                m.value_type(o),
                &Type::FirLlvmPtr(Box::new(Type::f64())),
                "FIR side passes fir.llvm_ptr"
            );
        }
        let f = func::find_func(&st, "stencil_region_0").unwrap();
        let (ins, _) = f.signature(&st);
        for t in ins {
            assert_eq!(t, Type::LlvmPtr(Some(Box::new(Type::f64()))));
        }
    }

    #[test]
    fn stencil_module_is_fir_free() {
        let (_, st) = discover_and_extract(LISTING1);
        assert_dialect_absent(&st, "fir").unwrap();
    }

    #[test]
    fn captured_scalars_pass_by_value() {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: c
  real(kind=8) :: a(0:n+1), r(0:n+1)
  c = 0.5
  do i = 1, n
    r(i) = c * (a(i-1) + a(i+1))
  end do
end program t
";
        let (m, st) = discover_and_extract(src);
        let calls = collect_ops_named(&m, fir::CALL);
        let operands = m.op(calls[0]).operands.clone();
        assert_eq!(operands.len(), 3);
        assert_eq!(m.value_type(operands[2]), &Type::f64());
        let f = func::find_func(&st, "stencil_region_0").unwrap();
        let (ins, _) = f.signature(&st);
        assert_eq!(ins[2], Type::f64());
    }

    #[test]
    fn call_sits_inside_surviving_time_loop() {
        let src = "
program gs
  integer, parameter :: n = 8
  integer :: i, j, t
  real(kind=8) :: u(0:n+1, 0:n+1), un(0:n+1, 0:n+1)
  do t = 1, 4
    do i = 1, n
      do j = 1, n
        un(j, i) = 0.25 * (u(j-1, i) + u(j+1, i) + u(j, i-1) + u(j, i+1))
      end do
    end do
    do i = 1, n
      do j = 1, n
        u(j, i) = un(j, i)
      end do
    end do
  end do
end program gs
";
        let (m, st) = discover_and_extract(src);
        let loops = collect_ops_named(&m, fir::DO_LOOP);
        assert_eq!(loops.len(), 1);
        let calls = collect_ops_named(&m, fir::CALL);
        // The two applies share their fields (u is read by the first and
        // written by the copy), so they form one connected cluster: a
        // single region call inside the time loop, holding both applies in
        // program order.
        assert_eq!(calls.len(), 1);
        assert!(m.ancestors(calls[0]).contains(&loops[0]));
        assert_eq!(collect_ops_named(&st, stencil::APPLY).len(), 2);
        verify(&st).unwrap();
    }
}
