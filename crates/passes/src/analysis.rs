//! FIR analyses shared by the discovery pass: loop gathering and array
//! index-expression walking.
//!
//! The paper's Listing 3 phrases these as `gather_program_loops`,
//! `is_indexed_by_loops` and the walks backwards from `fir.store` /
//! `fir.load` through `fir.coordinate_of`. The functions here reproduce
//! those walks against the FIR patterns our frontend (like Flang) emits.

use std::collections::HashMap;

use fsc_dialects::fir;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{Module, OpId, Type, ValueId};

/// Information about one `fir.do_loop`.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The loop op.
    pub op: OpId,
    /// The `fir.alloca` of the Fortran loop variable this loop stores its
    /// induction variable into (Flang's pattern), if recognised.
    pub var_alloca: Option<ValueId>,
    /// Constant lower bound (Fortran value), if it folds.
    pub lb: Option<i64>,
    /// Constant inclusive upper bound, if it folds.
    pub ub: Option<i64>,
    /// Constant step, if it folds.
    pub step: Option<i64>,
    /// Nesting depth (number of enclosing `fir.do_loop`s).
    pub depth: usize,
}

/// Gather every `fir.do_loop` in the module with its loop-variable binding
/// and constant bounds (the paper's `gather_program_loops`).
pub fn gather_program_loops(m: &Module) -> Vec<LoopInfo> {
    collect_ops_named(m, fir::DO_LOOP)
        .into_iter()
        .map(|op| {
            let lp = fir::DoLoopOp(op);
            let depth = m
                .ancestors(op)
                .iter()
                .filter(|&&a| m.op(a).name.full() == fir::DO_LOOP)
                .count();
            LoopInfo {
                op,
                var_alloca: loop_var_alloca(m, lp),
                lb: trace_const_int(m, lp.lb(m)),
                ub: trace_const_int(m, lp.ub(m)),
                step: trace_const_int(m, lp.step(m)),
                depth,
            }
        })
        .collect()
}

/// Find the alloca that receives the loop's induction variable: the first
/// `fir.store` in the body whose stored value converts from the iv.
fn loop_var_alloca(m: &Module, lp: fir::DoLoopOp) -> Option<ValueId> {
    let iv = lp.iv(m);
    for op in lp.body_ops(m) {
        if m.op(op).name.full() == fir::STORE {
            let value = m.op(op).operands[0];
            let dest = m.op(op).operands[1];
            if let Some(def) = m.defining_op(value) {
                if m.op(def).name.full() == fir::CONVERT && m.op(def).operands[0] == iv {
                    return Some(dest);
                }
            }
        }
    }
    None
}

/// Fold a compile-time-constant integer value: follows `fir.convert`
/// chains and evaluates constant integer arithmetic (so loop bounds like
/// `n+1` with `n` a parameter resolve).
pub fn trace_const_int(m: &Module, v: ValueId) -> Option<i64> {
    let def = m.defining_op(v)?;
    match m.op(def).name.full() {
        fir::CONVERT | fir::NO_REASSOC => trace_const_int(m, m.op(def).operands[0]),
        "arith.constant" => m.op(def).attr("value")?.as_int(),
        "arith.addi" => Some(
            trace_const_int(m, m.op(def).operands[0])? + trace_const_int(m, m.op(def).operands[1])?,
        ),
        "arith.subi" => Some(
            trace_const_int(m, m.op(def).operands[0])? - trace_const_int(m, m.op(def).operands[1])?,
        ),
        "arith.muli" => Some(
            trace_const_int(m, m.op(def).operands[0])? * trace_const_int(m, m.op(def).operands[1])?,
        ),
        _ => None,
    }
}

/// One dimension of an array subscript, classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexExpr {
    /// `loopvar + offset` — the stencil-friendly form.
    LoopVar {
        /// The loop variable's alloca.
        alloca: ValueId,
        /// Constant offset added to the variable.
        offset: i64,
    },
    /// A constant absolute Fortran index.
    Constant(i64),
    /// Anything else (disqualifies the access from stencil treatment).
    Unknown,
}

/// A fully decoded array element access (read or write).
#[derive(Debug, Clone)]
pub struct ArrayAccess {
    /// The array storage binding (`fir.alloca`/`fir.allocmem` result or a
    /// dummy-argument block argument).
    pub base: ValueId,
    /// Per-dimension classified subscripts, in Fortran order.
    pub index_exprs: Vec<IndexExpr>,
    /// Per-dimension Fortran lower bounds (recovered from the rebasing
    /// arithmetic the frontend emitted).
    pub lbounds: Vec<i64>,
    /// Per-dimension extents, from the array type.
    pub extents: Vec<i64>,
    /// Element type.
    pub elem: Type,
    /// The `fir.coordinate_of` op.
    pub coord_op: OpId,
}

impl ArrayAccess {
    /// True if every subscript is `loopvar + const`.
    pub fn is_loop_indexed(&self) -> bool {
        self.index_exprs
            .iter()
            .all(|e| matches!(e, IndexExpr::LoopVar { .. }))
    }
}

/// Decode the `fir.coordinate_of` feeding a `fir.store`/`fir.load`, walking
/// each index operand back through the frontend's
/// `convert(index) ← subi(lbound) ← convert(i64) ← i32-expr` chain.
///
/// Returns `None` if the address is not a `fir.coordinate_of` on a
/// recognisable array binding.
pub fn decode_access(m: &Module, address: ValueId) -> Option<ArrayAccess> {
    let coord_op = m.defining_op(address)?;
    if m.op(coord_op).name.full() != fir::COORDINATE_OF {
        return None;
    }
    let base = m.op(coord_op).operands[0];
    let (extents, elem) = array_shape(m, base)?;
    let mut index_exprs = Vec::new();
    let mut lbounds = Vec::new();
    for &idx in &m.op(coord_op).operands[1..] {
        let (expr, lb) = decode_index(m, idx);
        index_exprs.push(expr);
        lbounds.push(lb);
    }
    if index_exprs.len() != extents.len() {
        return None;
    }
    Some(ArrayAccess {
        base,
        index_exprs,
        lbounds,
        extents,
        elem,
        coord_op,
    })
}

/// Shape of the array behind a storage binding value.
pub fn array_shape(m: &Module, base: ValueId) -> Option<(Vec<i64>, Type)> {
    match m.value_type(base) {
        Type::FirRef(inner) | Type::FirHeap(inner) => match inner.as_ref() {
            Type::FirArray { shape, elem } => Some((shape.clone(), (**elem).clone())),
            _ => None,
        },
        _ => None,
    }
}

/// Decode one `index`-typed subscript operand. Returns the classified
/// expression plus the Fortran lower bound that the rebasing subtracted
/// (0 if the chain shape is unexpected).
pub fn decode_index(m: &Module, idx: ValueId) -> (IndexExpr, i64) {
    // Expected chain: fir.convert(index) of arith.subi(wide, lb_const),
    // wide = fir.convert(i64) of the i32 expression.
    let Some(conv) = m.defining_op(idx) else {
        return (IndexExpr::Unknown, 0);
    };
    if m.op(conv).name.full() != fir::CONVERT {
        return (IndexExpr::Unknown, 0);
    }
    let rebased = m.op(conv).operands[0];
    let Some(sub) = m.defining_op(rebased) else {
        return (IndexExpr::Unknown, 0);
    };
    if m.op(sub).name.full() != "arith.subi" {
        return (IndexExpr::Unknown, 0);
    }
    let wide = m.op(sub).operands[0];
    let Some(lb) = trace_const_int(m, m.op(sub).operands[1]) else {
        return (IndexExpr::Unknown, 0);
    };
    let Some(wconv) = m.defining_op(wide) else {
        return (IndexExpr::Unknown, lb);
    };
    if m.op(wconv).name.full() != fir::CONVERT {
        return (IndexExpr::Unknown, lb);
    }
    (decode_i32_expr(m, m.op(wconv).operands[0]), lb)
}

/// Classify the i32-level subscript expression: `load var`,
/// `load var ± const`, or a constant.
fn decode_i32_expr(m: &Module, v: ValueId) -> IndexExpr {
    if let Some(c) = trace_const_int(m, v) {
        return IndexExpr::Constant(c);
    }
    let Some(def) = m.defining_op(v) else {
        return IndexExpr::Unknown;
    };
    match m.op(def).name.full() {
        fir::LOAD => {
            let src = m.op(def).operands[0];
            if is_scalar_int_binding(m, src) {
                IndexExpr::LoopVar {
                    alloca: src,
                    offset: 0,
                }
            } else {
                IndexExpr::Unknown
            }
        }
        "arith.addi" | "arith.subi" => {
            let name = m.op(def).name.full().to_string();
            let a = m.op(def).operands[0];
            let b = m.op(def).operands[1];
            let sign = if name == "arith.subi" { -1 } else { 1 };
            match (decode_i32_expr(m, a), trace_const_int(m, b)) {
                (IndexExpr::LoopVar { alloca, offset }, Some(c)) => IndexExpr::LoopVar {
                    alloca,
                    offset: offset + sign * c,
                },
                _ => {
                    // Also allow const + var for addi.
                    if name == "arith.addi" {
                        if let (Some(c), IndexExpr::LoopVar { alloca, offset }) =
                            (trace_const_int(m, a), decode_i32_expr(m, b))
                        {
                            return IndexExpr::LoopVar {
                                alloca,
                                offset: offset + c,
                            };
                        }
                    }
                    IndexExpr::Unknown
                }
            }
        }
        fir::CONVERT => decode_i32_expr(m, m.op(def).operands[0]),
        _ => IndexExpr::Unknown,
    }
}

/// Is `v` a reference to a scalar integer (candidate loop variable)?
fn is_scalar_int_binding(m: &Module, v: ValueId) -> bool {
    matches!(m.value_type(v), Type::FirRef(inner) if matches!(inner.as_ref(), Type::Int(_)))
}

/// Map loop-variable allocas to their loop info, for quick lookup.
pub fn loops_by_var(loops: &[LoopInfo]) -> HashMap<ValueId, &LoopInfo> {
    loops
        .iter()
        .filter_map(|l| l.var_alloca.map(|a| (a, l)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_fortran::compile_to_fir;
    use fsc_ir::walk::collect_ops_named;

    const SRC: &str = "
program t
  integer, parameter :: n = 8
  integer :: i, j
  real(kind=8) :: a(0:n+1, 0:n+1), r(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      r(j, i) = a(j, i-1) + a(j+1, i)
    end do
  end do
end program t
";

    #[test]
    fn gathers_loops_with_bounds_and_vars() {
        let m = compile_to_fir(SRC).unwrap();
        let loops = gather_program_loops(&m);
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.depth == 0).unwrap();
        let inner = loops.iter().find(|l| l.depth == 1).unwrap();
        assert_eq!(outer.lb, Some(1));
        assert_eq!(outer.ub, Some(8));
        assert_eq!(outer.step, Some(1));
        assert!(outer.var_alloca.is_some());
        assert!(inner.var_alloca.is_some());
        assert_ne!(outer.var_alloca, inner.var_alloca);
    }

    #[test]
    fn decodes_store_access() {
        let m = compile_to_fir(SRC).unwrap();
        let loops = gather_program_loops(&m);
        let by_var = loops_by_var(&loops);
        // Find the array store (value is f64).
        let store = collect_ops_named(&m, fir::STORE)
            .into_iter()
            .find(|&s| m.value_type(m.op(s).operands[0]) == &Type::f64())
            .unwrap();
        let access = decode_access(&m, m.op(store).operands[1]).unwrap();
        assert_eq!(access.extents, vec![10, 10]);
        assert_eq!(access.lbounds, vec![0, 0]);
        assert_eq!(access.elem, Type::f64());
        assert!(access.is_loop_indexed());
        // Dim 0 indexed by the inner (j) loop at offset 0; dim 1 by i.
        let IndexExpr::LoopVar {
            alloca: a0,
            offset: o0,
        } = access.index_exprs[0]
        else {
            panic!()
        };
        assert_eq!(o0, 0);
        assert!(by_var.contains_key(&a0));
    }

    #[test]
    fn decodes_read_offsets() {
        let m = compile_to_fir(SRC).unwrap();
        // a(j, i-1) and a(j+1, i): find loads of f64 through coordinates.
        let mut offsets = Vec::new();
        for ld in collect_ops_named(&m, fir::LOAD) {
            if m.value_type(m.result(ld)) != &Type::f64() {
                continue;
            }
            let access = decode_access(&m, m.op(ld).operands[0]).unwrap();
            let offs: Vec<i64> = access
                .index_exprs
                .iter()
                .map(|e| match e {
                    IndexExpr::LoopVar { offset, .. } => *offset,
                    _ => panic!("expected loop var"),
                })
                .collect();
            offsets.push(offs);
        }
        offsets.sort();
        assert_eq!(offsets, vec![vec![0, -1], vec![1, 0]]);
    }

    #[test]
    fn constant_index_classified() {
        let m = compile_to_fir(
            "program t
real(kind=8) :: a(8)
a(3) = 1.0
end program t",
        )
        .unwrap();
        let store = collect_ops_named(&m, fir::STORE)[0];
        let access = decode_access(&m, m.op(store).operands[1]).unwrap();
        assert_eq!(access.index_exprs, vec![IndexExpr::Constant(3)]);
        assert_eq!(access.lbounds, vec![1]);
        assert!(!access.is_loop_indexed());
    }

    #[test]
    fn non_coordinate_address_returns_none() {
        let m = compile_to_fir(
            "program t
real(kind=8) :: x
x = 1.0
end program t",
        )
        .unwrap();
        let store = collect_ops_named(&m, fir::STORE)[0];
        assert!(decode_access(&m, m.op(store).operands[1]).is_none());
    }

    #[test]
    fn scaled_index_is_unknown() {
        // a(2*i) is not a stencil access.
        let m = compile_to_fir(
            "program t
integer :: i
real(kind=8) :: a(16)
do i = 1, 8
  a(2*i) = 0.0
end do
end program t",
        )
        .unwrap();
        let store = collect_ops_named(&m, fir::STORE)
            .into_iter()
            .find(|&s| m.value_type(m.op(s).operands[0]) == &Type::f64())
            .unwrap();
        let access = decode_access(&m, m.op(store).operands[1]).unwrap();
        assert_eq!(access.index_exprs, vec![IndexExpr::Unknown]);
    }
}
