//! Named pass pipelines and the global pass registry.
//!
//! [`LISTING4_PIPELINE`] is the paper's GPU `mlir-opt` invocation (Listing
//! 4) verbatim (minus the shell quoting and `builtin.module(...)` wrapper).
//! Passes that only matter on a real LLVM backend — pointer finalisation,
//! NVVM conversion, cubin embedding — are registered as documented no-op
//! *markers* so the verbatim pipeline parses and runs; the semantically
//! load-bearing entries (tiling, canonicalisation, the parallel-loops→GPU
//! conversion) are the real implementations.

use fsc_ir::pass::{PassOptions, PassRegistry};
use fsc_ir::{Module, Pass, PassManager, PassResult, Result};

use crate::canonicalize::{Canonicalize, Cse, Dce};
use crate::discover::DiscoverStencils;
use crate::dmp_lowering::{DmpToMpi, StencilToDmp};
use crate::gpu_lowering::{ConvertParallelLoopsToGpu, GpuDataExplicit, GpuDataNaive};
use crate::merge::MergeStencils;
use crate::openmp::ConvertScfToOpenMp;
use crate::stencil_to_scf::StencilToScf;
use crate::tiling::ParallelLoopTiling;

/// The paper's Listing 4 GPU pipeline, verbatim.
pub const LISTING4_PIPELINE: &str = "test-math-algebraic-simplification,\
scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1},canonicalize,\
test-expand-math,func.func(gpu-map-parallel-loops),\
convert-parallel-loops-to-gpu,fold-memref-alias-ops,\
finalize-memref-to-llvm{index-bitwidth=64 use-opaque-pointers=false},\
lower-affine,gpu-kernel-outlining,func.func(gpu-async-region),canonicalize,\
convert-arith-to-llvm{index-bitwidth=64},\
finalize-memref-to-llvm{index-bitwidth=64 use-opaque-pointers=false},\
convert-scf-to-cf,convert-cf-to-llvm{index-bitwidth=64},\
finalize-memref-to-llvm{use-opaque-pointers=false},\
gpu.module(convert-gpu-to-nvvm,reconcile-unrealized-casts,canonicalize,gpu-to-cubin),\
fold-memref-alias-ops,lower-affine,gpu-to-llvm{use-opaque-pointers=false},\
finalize-memref-to-llvm{index-bitwidth=64 use-opaque-pointers=false},\
reconcile-unrealized-casts";

/// A documented no-op standing in for an MLIR pass whose effect only exists
/// on a real LLVM backend (pointer finalisation, NVVM, cubin, ...).
pub struct MarkerPass {
    name: &'static str,
}

impl Pass for MarkerPass {
    fn name(&self) -> &str {
        self.name
    }

    fn run(&self, _module: &mut Module) -> Result<PassResult> {
        Ok(PassResult::Unchanged)
    }
}

/// Names registered as markers.
pub const MARKER_PASSES: &[&str] = &[
    "test-math-algebraic-simplification",
    "test-expand-math",
    "gpu-map-parallel-loops",
    "fold-memref-alias-ops",
    "finalize-memref-to-llvm",
    "lower-affine",
    "gpu-kernel-outlining",
    "gpu-async-region",
    "convert-arith-to-llvm",
    "convert-scf-to-cf",
    "convert-cf-to-llvm",
    "convert-gpu-to-nvvm",
    "reconcile-unrealized-casts",
    "gpu-to-cubin",
    "gpu-to-llvm",
    "scf-for-loop-specialization",
    "scf-parallel-loop-specialization",
];

/// Build the registry holding every pass in this crate.
pub fn registry() -> PassRegistry {
    let mut reg = PassRegistry::new();
    reg.register("canonicalize", |_| Box::new(Canonicalize));
    reg.register("cse", |_| Box::new(Cse));
    reg.register("dce", |_| Box::new(Dce));
    reg.register("discover-stencils", |_| {
        Box::new(DiscoverStencils::default())
    });
    reg.register("merge-stencils", |_| Box::new(MergeStencils));
    reg.register("stencil-to-scf", |o| {
        Box::new(StencilToScf::from_options(o))
    });
    reg.register("convert-scf-to-openmp", |o| {
        Box::new(ConvertScfToOpenMp::from_options(o))
    });
    reg.register("scf-parallel-loop-tiling", |o| {
        Box::new(ParallelLoopTiling::from_options(o))
    });
    reg.register("convert-parallel-loops-to-gpu", |_| {
        Box::new(ConvertParallelLoopsToGpu)
    });
    reg.register("gpu-data-host-register", |_| Box::new(GpuDataNaive));
    reg.register("gpu-data-explicit", |_| Box::new(GpuDataExplicit));
    reg.register("stencil-to-dmp", |o| {
        Box::new(StencilToDmp::from_options(o))
    });
    reg.register("dmp-to-mpi", |_| Box::new(DmpToMpi));
    reg.register("mpi-deep-halos", |o| {
        Box::new(crate::deep_halo::MpiDeepHalos::from_options(o))
    });
    reg.register("mpi-overlap-halos", |o| {
        Box::new(crate::overlap::OverlapHalos::from_options(o))
    });
    reg.register("convert-fir-to-standard", |_| {
        Box::new(crate::fir_to_standard::ConvertFirToStandard)
    });
    // fn-pointer factories cannot capture the marker name; register each
    // explicitly instead.
    macro_rules! marker {
        ($reg:expr, $name:literal) => {
            $reg.register($name, |_: &PassOptions| {
                Box::new(MarkerPass { name: $name })
            });
        };
    }
    marker!(reg, "test-math-algebraic-simplification");
    marker!(reg, "test-expand-math");
    marker!(reg, "gpu-map-parallel-loops");
    marker!(reg, "fold-memref-alias-ops");
    marker!(reg, "finalize-memref-to-llvm");
    marker!(reg, "lower-affine");
    marker!(reg, "gpu-kernel-outlining");
    marker!(reg, "gpu-async-region");
    marker!(reg, "convert-arith-to-llvm");
    marker!(reg, "convert-scf-to-cf");
    marker!(reg, "convert-cf-to-llvm");
    marker!(reg, "convert-gpu-to-nvvm");
    marker!(reg, "reconcile-unrealized-casts");
    marker!(reg, "gpu-to-cubin");
    marker!(reg, "gpu-to-llvm");
    marker!(reg, "scf-for-loop-specialization");
    marker!(reg, "scf-parallel-loop-specialization");
    reg
}

/// Discovery pipeline run over the Flang-emitted FIR module (Figure 1's
/// green boxes, before extraction).
pub fn discovery_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(DiscoverStencils::default()).add(MergeStencils);
    pm
}

/// Discovery without fusion — used by the unoptimised comparison tier and
/// the fusion ablation.
pub fn discovery_pipeline_unfused() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(DiscoverStencils { fuse: false });
    pm
}

/// Stencil-module pipeline for the unoptimised ("Flang only") tier: the
/// same CPU loop shapes, but no CSE — Flang's direct FIR→LLVM flow cannot
/// deduplicate array loads across statements (stores might alias), so the
/// comparison tier must not either.
pub fn unoptimized_cpu_pipeline() -> Result<PassManager> {
    registry().parse_pipeline("stencil-to-scf{target=cpu},canonicalize")
}

/// The degradation ladder's middle rung: plain sequential `scf.for`
/// lowering with no fusion-dependent cleanup and no target-specific
/// shaping. Deliberately minimal — the fewer passes on the fallback path,
/// the fewer ways it can fail.
pub fn scf_fallback_pipeline() -> Result<PassManager> {
    registry().parse_pipeline("stencil-to-scf{target=cpu},canonicalize")
}

/// CPU single-core / vectorised flow for the extracted stencil module.
pub fn cpu_pipeline() -> Result<PassManager> {
    registry().parse_pipeline(
        "canonicalize,cse,stencil-to-scf{target=cpu},\
         scf-parallel-loop-specialization,canonicalize,cse",
    )
}

/// CPU flow with explicit cache-block tiling: `scf-parallel-loop-tiling`
/// runs after the stencil lowering so the parallel nest carries tile sizes
/// (the `"tiled"` attribute) into the kernel compiler's default plan.
pub fn cpu_pipeline_tiled(tile_sizes: &[i64]) -> Result<PassManager> {
    let tiles: Vec<String> = tile_sizes.iter().map(i64::to_string).collect();
    registry().parse_pipeline(&format!(
        "canonicalize,cse,stencil-to-scf{{target=cpu}},\
         scf-parallel-loop-tiling{{parallel-loop-tile-sizes={}}},\
         canonicalize,cse",
        tiles.join(",")
    ))
}

/// Multithreaded CPU flow: CPU shape then `convert-scf-to-openmp`.
pub fn openmp_pipeline(num_threads: u32) -> Result<PassManager> {
    registry().parse_pipeline(&format!(
        "canonicalize,cse,stencil-to-scf{{target=cpu}},canonicalize,cse,\
         convert-scf-to-openmp{{num-threads={num_threads}}}"
    ))
}

/// Multithreaded CPU flow with explicit cache-block tiling: the tiling
/// pass shapes the parallel nest *before* the OpenMP conversion, and the
/// conversion carries the `"tiled"` attribute across, so `omp` kernels
/// execute cache-blocked too.
pub fn openmp_pipeline_tiled(num_threads: u32, tile_sizes: &[i64]) -> Result<PassManager> {
    let tiles: Vec<String> = tile_sizes.iter().map(i64::to_string).collect();
    registry().parse_pipeline(&format!(
        "canonicalize,cse,stencil-to-scf{{target=cpu}},\
         scf-parallel-loop-tiling{{parallel-loop-tile-sizes={}}},\
         canonicalize,cse,\
         convert-scf-to-openmp{{num-threads={num_threads}}}",
        tiles.join(",")
    ))
}

/// GPU flow: gpu-shaped stencil lowering, then the verbatim Listing 4
/// pipeline, then one of the two data-management strategies.
pub fn gpu_pipeline(explicit_data: bool, tile_sizes: &[i64]) -> Result<PassManager> {
    let tiles: Vec<String> = tile_sizes.iter().map(i64::to_string).collect();
    let listing4 = LISTING4_PIPELINE.replace(
        "parallel-loop-tile-sizes=32,32,1",
        &format!("parallel-loop-tile-sizes={}", tiles.join(",")),
    );
    let data = if explicit_data {
        "gpu-data-explicit"
    } else {
        "gpu-data-host-register"
    };
    registry().parse_pipeline(&format!(
        "canonicalize,cse,stencil-to-scf{{target=gpu}},{listing4},{data}"
    ))
}

/// Multi-node GPU flow — the paper's fifth further-work avenue
/// ("combining distributed memory parallelism with GPU execution, enabling
/// multinode GPU execution", §6): DMP halo analysis and MPI specialisation
/// feed the full GPU pipeline, so each rank owns a device-resident slab.
pub fn gpu_dmp_pipeline(grid: &[i64], tile_sizes: &[i64]) -> Result<PassManager> {
    let g: Vec<String> = grid.iter().map(i64::to_string).collect();
    let tiles: Vec<String> = tile_sizes.iter().map(i64::to_string).collect();
    let listing4 = LISTING4_PIPELINE.replace(
        "parallel-loop-tile-sizes=32,32,1",
        &format!("parallel-loop-tile-sizes={}", tiles.join(",")),
    );
    registry().parse_pipeline(&format!(
        "canonicalize,cse,stencil-to-dmp{{grid={}}},dmp-to-mpi,\
         stencil-to-scf{{target=gpu}},{listing4},gpu-data-explicit",
        g.join(",")
    ))
}

/// Distributed-memory flow: halo analysis, MPI specialisation, CPU loops.
/// Overlapped halo exchange is on by default; see [`dmp_pipeline_with`].
pub fn dmp_pipeline(grid: &[i64]) -> Result<PassManager> {
    dmp_pipeline_with(grid, true)
}

/// Distributed-memory flow with an explicit halo schedule:
/// `mpi-overlap-halos{enabled=...}` proves the interior/boundary split and
/// stamps `"overlap"` (exchange hidden behind interior compute) or
/// `"blocking"` (recv-all-then-compute) on every legal nest.
pub fn dmp_pipeline_with(grid: &[i64], overlap: bool) -> Result<PassManager> {
    dmp_pipeline_deep(grid, overlap, 1)
}

/// [`dmp_pipeline_with`] plus communication-avoiding deep halos:
/// `mpi-deep-halos{depth=k}` widens every swap to `k` ghost layers (1-D
/// grids only) so the executor can amortise one exchange round over `k`
/// consecutive sweeps. `halo_depth = 1` is the classic flow.
pub fn dmp_pipeline_deep(grid: &[i64], overlap: bool, halo_depth: u32) -> Result<PassManager> {
    let g: Vec<String> = grid.iter().map(i64::to_string).collect();
    registry().parse_pipeline(&format!(
        "canonicalize,cse,stencil-to-dmp{{grid={}}},\
         mpi-deep-halos{{depth={halo_depth}}},dmp-to-mpi,\
         mpi-overlap-halos{{enabled={overlap}}},\
         stencil-to-scf{{target=cpu}},canonicalize,cse",
        g.join(",")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing4_parses_verbatim() {
        let pm = registry().parse_pipeline(LISTING4_PIPELINE).unwrap();
        let names = pm.pass_names();
        // Anchored entries flattened; count a few landmarks.
        assert!(names.contains(&"scf-parallel-loop-tiling"));
        assert!(names.contains(&"convert-parallel-loops-to-gpu"));
        assert!(names.contains(&"gpu-map-parallel-loops"));
        assert!(names.contains(&"gpu-to-cubin"));
        assert_eq!(names.iter().filter(|n| **n == "canonicalize").count(), 3);
        assert_eq!(
            names
                .iter()
                .filter(|n| **n == "finalize-memref-to-llvm")
                .count(),
            4
        );
    }

    #[test]
    fn named_pipelines_build() {
        assert!(cpu_pipeline().is_ok());
        assert!(cpu_pipeline_tiled(&[1, 16]).is_ok());
        assert!(openmp_pipeline(64).is_ok());
        assert!(openmp_pipeline_tiled(8, &[1, 16, 16]).is_ok());
        assert!(gpu_pipeline(true, &[32, 32, 1]).is_ok());
        assert!(gpu_pipeline(false, &[16, 16, 1]).is_ok());
        assert!(dmp_pipeline(&[4, 2]).is_ok());
        assert!(dmp_pipeline_with(&[4, 2], false).is_ok());
        assert!(dmp_pipeline_deep(&[64], true, 4).is_ok());
        let pm = dmp_pipeline(&[4, 2]).unwrap();
        let names = pm.pass_names();
        assert!(names.contains(&"mpi-overlap-halos"));
        assert!(names.contains(&"mpi-deep-halos"));
    }

    #[test]
    fn gpu_pipeline_ends_with_data_strategy() {
        let pm = gpu_pipeline(true, &[32, 32, 1]).unwrap();
        assert_eq!(*pm.pass_names().last().unwrap(), "gpu-data-explicit");
        let pm = gpu_pipeline(false, &[32, 32, 1]).unwrap();
        assert_eq!(*pm.pass_names().last().unwrap(), "gpu-data-host-register");
    }

    #[test]
    fn tiled_openmp_pipeline_orders_tiling_before_conversion() {
        let pm = openmp_pipeline_tiled(4, &[1, 8]).unwrap();
        let names = pm.pass_names();
        let t = names
            .iter()
            .position(|n| *n == "scf-parallel-loop-tiling")
            .unwrap();
        let o = names
            .iter()
            .position(|n| *n == "convert-scf-to-openmp")
            .unwrap();
        assert!(t < o, "tiling must shape the nest before the omp rewrite");
    }

    #[test]
    fn registry_rejects_unknown() {
        assert!(registry().parse_pipeline("no-such-pass").is_err());
    }

    #[test]
    fn markers_are_noops() {
        let mut m = Module::new();
        let pm = registry()
            .parse_pipeline("gpu-to-cubin,lower-affine")
            .unwrap();
        let stats = pm.run(&mut m).unwrap();
        assert!(stats.iter().all(|s| !s.changed));
    }
}
