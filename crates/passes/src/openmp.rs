//! `convert-scf-to-openmp`: rewrite top-level `scf.parallel` loops into the
//! `omp.parallel { omp.wsloop }` nest, as MLIR's pass of the same name does.
//!
//! This is the step that gives the paper its automatic multi-threading: the
//! Fortran source was serial, the parallel loop came from the stencil
//! lowering, and the OpenMP mapping here is what Figures 3 and 4 measure.

use std::collections::HashMap;

use fsc_dialects::{omp, scf};
use fsc_ir::pass::PassOptions;
use fsc_ir::rewrite::clone_op_into;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{IrError, Module, OpBuilder, Pass, PassResult, Result};

/// The `convert-scf-to-openmp` pass. Option `num-threads=N` fixes the team
/// size (0 = runtime default).
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertScfToOpenMp {
    /// Requested team size; 0 lets the runtime decide.
    pub num_threads: u32,
}

impl ConvertScfToOpenMp {
    /// Construct from pipeline options.
    pub fn from_options(opts: &PassOptions) -> Self {
        let num_threads = opts
            .get("num-threads")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Self { num_threads }
    }
}

impl Pass for ConvertScfToOpenMp {
    fn name(&self) -> &str {
        "convert-scf-to-openmp"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let mut changed = false;
        for par_op in collect_ops_named(module, scf::PARALLEL) {
            if !module.is_alive(par_op) {
                continue;
            }
            // Only *outermost* parallel loops fork a team.
            let nested_in_parallel = module
                .ancestors(par_op)
                .iter()
                .any(|&a| matches!(module.op(a).name.full(), scf::PARALLEL | omp::WSLOOP));
            if nested_in_parallel {
                continue;
            }
            convert_one(module, par_op, self.num_threads)?;
            changed = true;
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

fn convert_one(module: &mut Module, par_op: fsc_ir::OpId, num_threads: u32) -> Result<()> {
    let par = scf::ParallelOp(par_op);
    let lbs = par.lbs(module);
    let ubs = par.ubs(module);
    let steps = par.steps(module);
    let src_body = par.body(module);
    let src_ivs = par.ivs(module);

    // omp.parallel { omp.wsloop(...) { body } } in place of the scf loop.
    let (omp_par, par_body) = {
        let mut b = OpBuilder::before(module, par_op);
        omp::build_parallel(&mut b, num_threads)
    };
    // A tiled scf.parallel carries its tile sizes in the "tiled"
    // attribute; the kernel compiler reads that attribute off the loop
    // *root* (here the omp.parallel) to seed the default execution plan,
    // so carry it across the dialect conversion.
    if let Some(tiles) = module.op(par_op).attr("tiled").cloned() {
        module.op_mut(omp_par).attrs.insert("tiled".into(), tiles);
    }
    let ws = {
        let term = module
            .block_terminator(par_body)
            .ok_or_else(|| IrError::new("omp.parallel body lost its terminator"))?;
        let mut b = OpBuilder::before(module, term);
        omp::build_wsloop(&mut b, lbs, ubs, steps)
    };
    let ws_body = ws.body(module);
    let ws_ivs = ws.ivs(module);

    // Move the loop body across (clone + erase original).
    let mut map: HashMap<fsc_ir::ValueId, fsc_ir::ValueId> = HashMap::new();
    for (old, new) in src_ivs.iter().zip(&ws_ivs) {
        map.insert(*old, *new);
    }
    let term = module
        .block_terminator(ws_body)
        .ok_or_else(|| IrError::new("omp.wsloop body lost its terminator"))?;
    let snapshot = module.clone();
    for op in snapshot.block_ops(src_body) {
        if snapshot.op(op).name.full() == scf::YIELD {
            continue;
        }
        let cloned = clone_op_into(&snapshot, op, module, ws_body, &mut map);
        // clone_op_into appends; keep the terminator last.
        module.detach_op(cloned);
        module.insert_op_before(term, cloned);
    }
    module.erase_op(par_op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_dialects::arith;
    use fsc_dialects::verify::verify;
    use fsc_ir::Type;

    fn module_with_parallel(dims: usize) -> Module {
        let mut m = Module::new();
        let (_, entry) = fsc_dialects::func::build_func(&mut m, "k", vec![], vec![]);
        {
            let mut b = OpBuilder::at_end(&mut m, entry);
            let zero = arith::const_index(&mut b, 0);
            let n = arith::const_index(&mut b, 16);
            let one = arith::const_index(&mut b, 1);
            let par = scf::build_parallel(&mut b, vec![zero; dims], vec![n; dims], vec![one; dims]);
            let m2 = b.module();
            let body = par.body(m2);
            let iv = par.ivs(m2)[0];
            let term = m2.block_terminator(body).unwrap();
            let mut ib = OpBuilder::before(m2, term);
            ib.op("test.use", vec![iv], vec![], vec![]);
        }
        {
            let f = fsc_dialects::func::find_func(&m, "k").unwrap();
            let entry = f.entry_block(&m).unwrap();
            let mut b = OpBuilder::at_end(&mut m, entry);
            fsc_dialects::func::build_return(&mut b, vec![]);
        }
        m
    }

    #[test]
    fn wraps_parallel_in_omp_nest() {
        let mut m = module_with_parallel(2);
        let pass = ConvertScfToOpenMp { num_threads: 8 };
        assert_eq!(pass.run(&mut m).unwrap(), PassResult::Changed);
        assert!(collect_ops_named(&m, scf::PARALLEL).is_empty());
        let pars = collect_ops_named(&m, omp::PARALLEL);
        assert_eq!(pars.len(), 1);
        assert_eq!(omp::parallel_num_threads(&m, pars[0]), 8);
        let loops = collect_ops_named(&m, omp::WSLOOP);
        assert_eq!(loops.len(), 1);
        let ws = omp::WsLoopOp(loops[0]);
        assert_eq!(ws.num_dims(&m), 2);
        // Body moved across with remapped ivs.
        let uses = collect_ops_named(&m, "test.use");
        assert_eq!(uses.len(), 1);
        assert_eq!(m.op(uses[0]).operands[0], ws.ivs(&m)[0]);
        verify(&m).unwrap();
    }

    #[test]
    fn unchanged_when_no_parallel_loops() {
        let mut m = Module::new();
        assert_eq!(
            ConvertScfToOpenMp::default().run(&mut m).unwrap(),
            PassResult::Unchanged
        );
    }

    #[test]
    fn options_parse_num_threads() {
        let mut opts = PassOptions::default();
        opts.set("num-threads", "64");
        assert_eq!(ConvertScfToOpenMp::from_options(&opts).num_threads, 64);
    }

    #[test]
    fn inner_scf_for_survives() {
        // parallel { for { use } } — the for must move intact.
        let mut m = Module::new();
        let (_, entry) = fsc_dialects::func::build_func(&mut m, "k", vec![], vec![]);
        {
            let mut b = OpBuilder::at_end(&mut m, entry);
            let zero = arith::const_index(&mut b, 0);
            let n = arith::const_index(&mut b, 8);
            let one = arith::const_index(&mut b, 1);
            let par = scf::build_parallel(&mut b, vec![zero], vec![n], vec![one]);
            let m2 = b.module();
            let pbody = par.body(m2);
            let term = m2.block_terminator(pbody).unwrap();
            let mut ib = OpBuilder::before(m2, term);
            let f = scf::build_for(&mut ib, zero, n, one);
            let m3 = ib.module();
            let fbody = f.body(m3);
            let fiv = f.iv(m3);
            let fterm = m3.block_terminator(fbody).unwrap();
            let mut fb = OpBuilder::before(m3, fterm);
            fb.op("test.use", vec![fiv], vec![], vec![]);
        }
        ConvertScfToOpenMp::default().run(&mut m).unwrap();
        let fors = collect_ops_named(&m, scf::FOR);
        assert_eq!(fors.len(), 1);
        let ws = collect_ops_named(&m, omp::WSLOOP);
        assert!(m.ancestors(fors[0]).contains(&ws[0]));
        assert_eq!(collect_ops_named(&m, "test.use").len(), 1);
    }

    #[test]
    fn tiled_attr_survives_conversion() {
        let mut m = module_with_parallel(2);
        let par = collect_ops_named(&m, scf::PARALLEL)[0];
        m.op_mut(par)
            .attrs
            .insert("tiled".into(), fsc_ir::Attribute::IndexList(vec![16, 4]));
        ConvertScfToOpenMp { num_threads: 4 }.run(&mut m).unwrap();
        let omp_par = collect_ops_named(&m, omp::PARALLEL)[0];
        assert_eq!(
            m.op(omp_par).attr("tiled").unwrap().as_index_list(),
            Some(&[16, 4][..]),
            "omp.parallel must carry the scf.parallel's tile sizes"
        );
    }

    #[test]
    fn type_of_ivs_is_index() {
        let mut m = module_with_parallel(1);
        ConvertScfToOpenMp::default().run(&mut m).unwrap();
        let ws = omp::WsLoopOp(collect_ops_named(&m, omp::WSLOOP)[0]);
        for iv in ws.ivs(&m) {
            assert_eq!(m.value_type(iv), &Type::Index);
        }
    }
}
