//! `convert-fir-to-standard` — the paper's fourth further-work avenue,
//! implemented:
//!
//! > "we believe that it would be worth exploring the potential of lowering
//! > FIR into the standard MLIR dialects rather than directly to LLVM-IR.
//! > This could reduce the maintenance burden … and would also aid in
//! > bringing additional dialects into the Flang ecosystem." (§6)
//!
//! The pass rewrites a FIR module into `scf`/`memref`/`arith`/`func` only:
//!
//! * `fir.do_loop` (inclusive bound) → `scf.for` (exclusive bound);
//! * `fir.if` → `scf.if`; `fir.result` → `scf.yield`;
//! * array `fir.alloca`/`fir.allocmem` → `memref.alloc`, scalar allocations
//!   → rank-1 single-element memrefs;
//! * `fir.load`/`fir.store` through `fir.coordinate_of` → `memref.load` /
//!   `memref.store` with the same indices;
//! * `fir.convert` → the matching `arith` cast (or forwarding);
//! * `fir.no_reassoc` → forwarded; `fir.call` → `func.call`;
//! * pointer hand-off converts (`!fir.llvm_ptr`) forward the memref value —
//!   the callee receives the same buffer either way.
//!
//! The resulting module contains no `fir` ops and runs on the same
//! interpreter — demonstrating exactly the composability the paper argues
//! Flang forgoes.

use fsc_dialects::{fir, func, memref};
use fsc_ir::rewrite::replace_op;
use fsc_ir::walk::{collect_ops_named, collect_ops_where};
use fsc_ir::{
    Attribute, IrError, Module, OpBuilder, OpId, Pass, PassResult, Result, Type, ValueId,
};

/// The conversion pass. Registered as `convert-fir-to-standard`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertFirToStandard;

impl Pass for ConvertFirToStandard {
    fn name(&self) -> &str {
        "convert-fir-to-standard"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let had_fir = collect_ops_where(module, |m, op| m.op(op).name.dialect() == "fir")
            .into_iter()
            .next()
            .is_some();
        if !had_fir {
            return Ok(PassResult::Unchanged);
        }
        convert(module)?;
        fsc_dialects::verify::assert_dialect_absent(module, "fir")?;
        Ok(PassResult::Changed)
    }
}

fn err(msg: impl std::fmt::Display) -> IrError {
    IrError::new(format!("convert-fir-to-standard: {msg}"))
}

/// The memref type a FIR allocation lowers to.
fn lowered_alloc_type(in_type: &Type) -> Result<Type> {
    Ok(match in_type {
        Type::FirArray { shape, elem } => Type::memref(shape.clone(), (**elem).clone()),
        scalar if scalar.is_scalar() => Type::memref(vec![1], scalar.clone()),
        other => return Err(err(format!("cannot lower allocation of {other}"))),
    })
}

fn convert(module: &mut Module) -> Result<()> {
    // 1. Allocations → memref.alloc (keeping the Fortran metadata attrs).
    for op in collect_ops_where(module, |m, o| {
        matches!(m.op(o).name.full(), fir::ALLOCA | fir::ALLOCMEM)
    }) {
        let in_type = module
            .op(op)
            .attr("in_type")
            .and_then(Attribute::as_type)
            .cloned()
            .ok_or_else(|| err("allocation without in_type"))?;
        let ty = lowered_alloc_type(&in_type)?;
        let attrs: Vec<(String, Attribute)> = module
            .op(op)
            .attrs
            .iter()
            .filter(|(k, _)| k.as_str() != "in_type")
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let new = {
            let mut b = OpBuilder::before(module, op);
            let (alloc, v) = b.op1(
                memref::ALLOC,
                vec![],
                ty,
                attrs.iter().map(|(k, a)| (k.as_str(), a.clone())).collect(),
            );
            let _ = alloc;
            v
        };
        replace_op(module, op, &[new]);
    }
    for op in collect_ops_named(module, fir::FREEMEM) {
        let buf = module.op(op).operands[0];
        {
            let mut b = OpBuilder::before(module, op);
            b.op(memref::DEALLOC, vec![buf], vec![], vec![]);
        }
        module.erase_op(op);
    }

    // 2. Loads/stores. Element accesses go through fir.coordinate_of; the
    //    indices transfer directly. Scalar accesses index element 0.
    for op in collect_ops_named(module, fir::LOAD) {
        if !module.is_alive(op) {
            continue;
        }
        let addr = module.op(op).operands[0];
        let (buf, indices) = lowered_address(module, op, addr)?;
        let result_ty = module.value_type(module.result(op)).clone();
        let mut operands = vec![buf];
        operands.extend(indices);
        let new = {
            let mut b = OpBuilder::before(module, op);
            b.op1(memref::LOAD, operands, result_ty, vec![]).1
        };
        replace_op(module, op, &[new]);
    }
    for op in collect_ops_named(module, fir::STORE) {
        if !module.is_alive(op) {
            continue;
        }
        let value = module.op(op).operands[0];
        let addr = module.op(op).operands[1];
        let (buf, indices) = lowered_address(module, op, addr)?;
        let mut operands = vec![value, buf];
        operands.extend(indices);
        {
            let mut b = OpBuilder::before(module, op);
            b.op(memref::STORE, operands, vec![], vec![]);
        }
        module.erase_op(op);
    }
    // Dead coordinate_of chains.
    fsc_ir::rewrite::erase_dead_pure_ops(module);

    // 3. Structured control flow: in-place renames (the region shapes of
    //    fir.do_loop/scf.for and fir.if/scf.if are identical).
    for op in collect_ops_named(module, fir::DO_LOOP) {
        // Exclusive upper bound.
        let ub = module.op(op).operands[1];
        let new_ub = {
            let mut b = OpBuilder::before(module, op);
            let one = fsc_dialects::arith::const_index(&mut b, 1);
            fsc_dialects::arith::addi(&mut b, ub, one)
        };
        module.op_mut(op).operands[1] = new_ub;
        module.op_mut(op).name = "scf.for".into();
    }
    for op in collect_ops_named(module, fir::IF) {
        module.op_mut(op).name = "scf.if".into();
    }
    for op in collect_ops_named(module, fir::RESULT) {
        module.op_mut(op).name = "scf.yield".into();
    }

    // 4. Converts: numeric casts or forwarding.
    for op in collect_ops_named(module, fir::CONVERT) {
        if !module.is_alive(op) {
            continue;
        }
        let from = module.value_type(module.op(op).operands[0]).clone();
        let to = module.value_type(module.result(op)).clone();
        let operand = module.op(op).operands[0];
        let replacement = match (&from, &to) {
            // Pointer hand-off: the memref value *is* the buffer.
            (Type::MemRef { .. }, _) | (_, Type::FirLlvmPtr(_) | Type::LlvmPtr(_)) => operand,
            _ if from == to => operand,
            (Type::Int(_) | Type::Index, Type::Float(_)) => {
                cast(module, op, operand, "arith.sitofp", to.clone())
            }
            (Type::Float(_), Type::Int(_) | Type::Index) => {
                cast(module, op, operand, "arith.fptosi", to.clone())
            }
            (Type::Int(a), Type::Int(b)) if b > a => {
                cast(module, op, operand, "arith.extsi", to.clone())
            }
            (Type::Int(a), Type::Int(b)) if b < a => {
                cast(module, op, operand, "arith.trunci", to.clone())
            }
            (Type::Index, Type::Int(_)) | (Type::Int(_), Type::Index) => {
                cast(module, op, operand, "arith.index_cast", to.clone())
            }
            (Type::Float(_), Type::Float(_)) => operand,
            (f, t) => return Err(err(format!("unsupported conversion {f} -> {t}"))),
        };
        replace_op(module, op, &[replacement]);
    }
    for op in collect_ops_named(module, fir::NO_REASSOC) {
        if module.is_alive(op) {
            let operand = module.op(op).operands[0];
            replace_op(module, op, &[operand]);
        }
    }

    // 5. Calls.
    for op in collect_ops_named(module, fir::CALL) {
        module.op_mut(op).name = func::CALL.into();
    }
    fsc_ir::rewrite::erase_dead_pure_ops(module);
    Ok(())
}

fn cast(module: &mut Module, anchor: OpId, operand: ValueId, name: &str, to: Type) -> ValueId {
    let mut b = OpBuilder::before(module, anchor);
    b.op1(name, vec![operand], to, vec![]).1
}

/// The (buffer, indices) a FIR memory access lowers to.
fn lowered_address(
    module: &mut Module,
    access: OpId,
    addr: ValueId,
) -> Result<(ValueId, Vec<ValueId>)> {
    match module.defining_op(addr) {
        Some(def) if module.op(def).name.full() == fir::COORDINATE_OF => {
            let base = module.op(def).operands[0];
            let indices = module.op(def).operands[1..].to_vec();
            Ok((base, indices))
        }
        _ => {
            // A scalar allocation (now a rank-1 memref): index 0.
            let zero = {
                let mut b = OpBuilder::before(module, access);
                fsc_dialects::arith::const_index(&mut b, 0)
            };
            Ok((addr, vec![zero]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_dialects::scf;
    use fsc_exec::interp::{Interpreter, NoDispatch};
    use fsc_exec::value::Ref;

    const PROGRAM: &str = "
program t
  implicit none
  integer, parameter :: n = 6
  integer :: i, t2
  real(kind=8) :: a(0:n+1), r(0:n+1)
  do i = 0, n+1
    a(i) = 0.5 * i
  end do
  do t2 = 1, 2
    do i = 1, n
      r(i) = 0.25 * (a(i-1) + a(i+1)) + 0.5 * a(i)
    end do
    do i = 1, n
      a(i) = r(i)
    end do
  end do
end program t
";

    fn run_module(m: &Module) -> Vec<f64> {
        let mut interp = Interpreter::new(m, NoDispatch);
        interp.run_func("t", vec![]).unwrap();
        match interp.array_binding("a") {
            Some(Ref::Array { buf, .. }) => interp.memory.buffer(buf).to_vec(),
            other => panic!("no binding for a: {other:?}"),
        }
    }

    #[test]
    fn converted_module_is_fir_free_and_equivalent(
    ) -> std::result::Result<(), Box<dyn std::error::Error>> {
        let m1 = fsc_fortran::compile_to_fir(PROGRAM)?;
        let before = run_module(&m1);

        let mut m2 = fsc_fortran::compile_to_fir(PROGRAM)?;
        assert_eq!(ConvertFirToStandard.run(&mut m2)?, PassResult::Changed);
        fsc_dialects::verify::assert_dialect_absent(&m2, "fir")?;
        fsc_ir::verifier::verify_module(&m2)?;
        let after = run_module(&m2);
        assert_eq!(before, after, "same numbers through standard dialects");
        Ok(())
    }

    #[test]
    fn loop_bounds_become_exclusive() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut m = fsc_fortran::compile_to_fir(
            "program t
integer :: i
real(kind=8) :: a(4)
do i = 1, 4
  a(i) = 1.0
end do
end program t",
        )?;
        ConvertFirToStandard.run(&mut m)?;
        let fors = collect_ops_named(&m, scf::FOR);
        assert_eq!(fors.len(), 1);
        // Executing must fill exactly 4 cells.
        let mut interp = Interpreter::new(&m, NoDispatch);
        interp.run_func("t", vec![])?;
        let Ref::Array { buf, .. } = interp.array_binding("a").ok_or("missing value")? else {
            panic!()
        };
        assert_eq!(interp.memory.buffer(buf), &[1.0, 1.0, 1.0, 1.0]);
        Ok(())
    }

    #[test]
    fn if_and_intrinsics_convert() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut m = fsc_fortran::compile_to_fir(
            "program t
integer :: i
real(kind=8) :: a(4)
do i = 1, 4
  if (i <= 2) then
    a(i) = sqrt(16.0)
  else
    a(i) = max(1.0, 2.0)
  end if
end do
end program t",
        )?;
        ConvertFirToStandard.run(&mut m)?;
        assert!(collect_ops_named(&m, "scf.if").len() == 1);
        let mut interp = Interpreter::new(&m, NoDispatch);
        interp.run_func("t", vec![])?;
        let Ref::Array { buf, .. } = interp.array_binding("a").ok_or("missing value")? else {
            panic!()
        };
        assert_eq!(interp.memory.buffer(buf), &[4.0, 4.0, 2.0, 2.0]);
        Ok(())
    }

    #[test]
    fn idempotent_on_standard_modules() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut m = fsc_fortran::compile_to_fir("program t\nend program t")?;
        ConvertFirToStandard.run(&mut m)?;
        assert_eq!(ConvertFirToStandard.run(&mut m)?, PassResult::Unchanged);
        Ok(())
    }
}
