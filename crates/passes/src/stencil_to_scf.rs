//! The xDSL stencil lowering: `stencil` → `scf` + `memref` + `arith`.
//!
//! As described in §3 of the paper, both architecture flavours share one
//! implementation driven by an option:
//!
//! * **CPU** — "converts the top level loop into `scf.parallel` and nested
//!   inner loops into `scf.for`": the slowest-varying dimension becomes a
//!   1-D `scf.parallel`, remaining dimensions nested serial `scf.for`s with
//!   the contiguous (first Fortran) dimension innermost;
//! * **GPU** — "attempts to coalesce the loops into a single `scf.parallel`
//!   loop": one multi-dimensional `scf.parallel` over the whole domain.
//!
//! Memory model: a `!stencil.field<[l0,u0]x...>` lowers to a
//! `memref<e0x...xT>` viewed over the external pointer
//! ([`fsc_dialects::memref::FROM_PTR`]), with **column-major linearisation**
//! (dimension 0 fastest) matching Fortran array layout. All loop
//! coordinates stay in the global (Fortran index) space; address arithmetic
//! subtracts the field's lower bound per dimension.

use std::collections::HashMap;

use fsc_dialects::{arith, memref, scf, stencil};
use fsc_ir::pass::PassOptions;
use fsc_ir::types::DimBound;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{
    Attribute, BlockId, IrError, Module, OpBuilder, OpId, Pass, PassResult, Result, Type, ValueId,
};

/// Which loop shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoweringTarget {
    /// Outer `scf.parallel` over the slowest dimension, inner `scf.for`s.
    #[default]
    Cpu,
    /// One coalesced multi-dimensional `scf.parallel`.
    Gpu,
}

/// The `stencil-to-scf` pass (option `target=cpu|gpu`).
#[derive(Debug, Default, Clone, Copy)]
pub struct StencilToScf {
    /// Loop shape flavour.
    pub target: LoweringTarget,
}

impl StencilToScf {
    /// Construct from pipeline options.
    pub fn from_options(opts: &PassOptions) -> Self {
        let target = match opts.get("target") {
            Some("gpu") => LoweringTarget::Gpu,
            _ => LoweringTarget::Cpu,
        };
        Self { target }
    }
}

impl Pass for StencilToScf {
    fn name(&self) -> &str {
        "stencil-to-scf"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let changed = lower_stencils(module, self.target)?;
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

/// A lowered view of a field/temp: the memref plus the global lower bound
/// per dimension.
#[derive(Debug, Clone)]
struct View {
    memref: ValueId,
    lbs: Vec<i64>,
}

/// Lower all stencil ops in the module; returns whether anything changed.
pub fn lower_stencils(module: &mut Module, target: LoweringTarget) -> Result<bool> {
    let applies = collect_ops_named(module, stencil::APPLY);
    if applies.is_empty() && collect_ops_named(module, stencil::EXTERNAL_LOAD).is_empty() {
        return Ok(false);
    }

    // 1. Lower external_loads to memref views; record field → view.
    let mut views: HashMap<ValueId, View> = HashMap::new();
    for op in collect_ops_named(module, stencil::EXTERNAL_LOAD) {
        let source = module.op(op).operands[0];
        let field = module.result(op);
        let (bounds, elem) = match module.value_type(field) {
            Type::StencilField { bounds, elem } => (bounds.clone(), (**elem).clone()),
            other => {
                return Err(IrError::new(format!("external_load produced {other}")));
            }
        };
        let extents: Vec<i64> = bounds.iter().map(DimBound::extent).collect();
        let lbs: Vec<i64> = bounds.iter().map(|b| b.lower).collect();
        let mr = {
            let mut b = OpBuilder::before(module, op);
            memref::from_ptr(&mut b, source, Type::memref(extents, elem))
        };
        views.insert(field, View { memref: mr, lbs });
    }

    // 2. Temps from stencil.load alias their field's view.
    for op in collect_ops_named(module, stencil::LOAD) {
        let field = module.op(op).operands[0];
        let temp = module.result(op);
        let view = views
            .get(&field)
            .cloned()
            .ok_or_else(|| IrError::new("stencil.load of unlowered field"))?;
        views.insert(temp, view);
    }

    // 3. Lower each apply (+ its stores) to a loop nest.
    for apply_op in collect_ops_named(module, stencil::APPLY) {
        lower_apply(module, apply_op, &views, target)?;
    }

    // 4. Halo-exchange ops inserted by `stencil-to-dmp` / `dmp-to-mpi`
    // reference fields/temps; retarget every such operand at the memref
    // views so the stencil ops can be erased. (`mpi.pack`/`mpi.halo_buffer`
    // carry the field as operand 0, `mpi.unpack` as operand 1; staging
    // operands are never stencil-typed and pass through untouched.)
    for name in [
        fsc_dialects::dmp::SWAP,
        fsc_dialects::mpi::ISEND,
        fsc_dialects::mpi::IRECV,
        fsc_dialects::mpi::PACK,
        fsc_dialects::mpi::HALO_BUFFER,
        fsc_dialects::mpi::UNPACK,
    ] {
        for op in collect_ops_named(module, name) {
            for i in 0..module.op(op).operands.len() {
                let buffer = module.op(op).operands[i];
                if let Some(view) = views.get(&buffer) {
                    let mr = view.memref;
                    module.op_mut(op).operands[i] = mr;
                    fsc_ir::rewrite::hoist_def_before(module, mr, op);
                }
            }
        }
    }

    // 5. Erase the stencil ops (stores first — they use apply results).
    for op in collect_ops_named(module, stencil::STORE)
        .into_iter()
        .chain(collect_ops_named(module, stencil::APPLY))
        .chain(collect_ops_named(module, stencil::LOAD))
        .chain(collect_ops_named(module, stencil::EXTERNAL_LOAD))
        .chain(collect_ops_named(module, stencil::EXTERNAL_STORE))
    {
        if module.is_alive(op) {
            module.erase_op(op);
        }
    }
    Ok(true)
}

fn lower_apply(
    module: &mut Module,
    apply_op: OpId,
    views: &HashMap<ValueId, View>,
    target: LoweringTarget,
) -> Result<()> {
    let apply = stencil::ApplyOp(apply_op);
    let bounds = apply.output_bounds(module);
    let rank = bounds.len();

    // Pair each apply result with the store consuming it.
    let results = module.op(apply_op).results.clone();
    let mut out_views: Vec<View> = Vec::with_capacity(results.len());
    for &r in &results {
        let store = module
            .uses(r)
            .into_iter()
            .map(|(op, _)| op)
            .find(|&op| module.op(op).name.full() == stencil::STORE)
            .ok_or_else(|| IrError::new("apply result is never stored"))?;
        let field = module.op(store).operands[1];
        let view = views
            .get(&field)
            .cloned()
            .ok_or_else(|| IrError::new("store to unlowered field"))?;
        out_views.push(view);
    }

    // The from_ptr views for fields loaded *after* this apply in the block
    // (an artefact of fusion ordering) must dominate the loop nest.
    for v in &out_views {
        fsc_ir::rewrite::hoist_def_before(module, v.memref, apply_op);
    }

    // Map apply inputs: temps → views (with copies where an input aliases an
    // output), scalars → the operand value itself.
    let operands = module.op(apply_op).operands.clone();
    let body = apply.body(module);
    let body_args = module.block_args(body).to_vec();
    let mut input_views: HashMap<ValueId, View> = HashMap::new(); // keyed by body arg
    let mut scalar_map: HashMap<ValueId, ValueId> = HashMap::new();
    for (&operand, &arg) in operands.iter().zip(&body_args) {
        if let Some(view) = views.get(&operand) {
            let aliases_output = out_views.iter().any(|ov| ov.memref == view.memref);
            let v = if aliases_output {
                // Value semantics: snapshot the input before writing.
                let mr_ty = module.value_type(view.memref).clone();
                let mut b = OpBuilder::before(module, apply_op);
                let copy = memref::alloc(&mut b, mr_ty);
                memref::copy(&mut b, view.memref, copy);
                View {
                    memref: copy,
                    lbs: view.lbs.clone(),
                }
            } else {
                view.clone()
            };
            input_views.insert(arg, v);
        } else {
            scalar_map.insert(arg, operand);
        }
    }

    // Build the loop nest before the apply.
    // ivs[d] = induction variable for dimension d (global coords).
    let mut ivs: Vec<ValueId> = vec![ValueId(u32::MAX); rank];
    let innermost: BlockId;
    let loop_root: OpId;
    {
        let mut b = OpBuilder::before(module, apply_op);
        let lb_consts: Vec<ValueId> = bounds
            .iter()
            .map(|d| arith::const_index(&mut b, d.lower))
            .collect();
        let ub_consts: Vec<ValueId> = bounds
            .iter()
            .map(|d| arith::const_index(&mut b, d.upper + 1))
            .collect();
        let one = arith::const_index(&mut b, 1);

        match target {
            LoweringTarget::Gpu => {
                // One coalesced parallel loop, slowest dim first.
                let order: Vec<usize> = (0..rank).rev().collect();
                let par = scf::build_parallel(
                    &mut b,
                    order.iter().map(|&d| lb_consts[d]).collect(),
                    order.iter().map(|&d| ub_consts[d]).collect(),
                    vec![one; rank],
                );
                let m = b.module();
                let par_ivs = par.ivs(m);
                for (pos, &d) in order.iter().enumerate() {
                    ivs[d] = par_ivs[pos];
                }
                innermost = par.body(m);
                loop_root = par.0;
            }
            LoweringTarget::Cpu => {
                // Parallel over the slowest dim, serial loops inwards.
                let top_dim = rank - 1;
                let par = scf::build_parallel(
                    &mut b,
                    vec![lb_consts[top_dim]],
                    vec![ub_consts[top_dim]],
                    vec![one],
                );
                let m = b.module();
                ivs[top_dim] = par.ivs(m)[0];
                let mut current = par.body(m);
                for d in (0..top_dim).rev() {
                    let term = m
                        .block_terminator(current)
                        .ok_or_else(|| IrError::new("loop body lost its terminator"))?;
                    let mut ib = OpBuilder::before(m, term);
                    let f = scf::build_for(&mut ib, lb_consts[d], ub_consts[d], one);
                    let m2 = ib.module();
                    ivs[d] = f.iv(m2);
                    current = f.body(m2);
                }
                innermost = current;
                loop_root = par.0;
            }
        }
    }

    // The halo schedule proved by `mpi-overlap-halos` rides on the loop
    // root, like the tiling pass's `"tiled"` attribute, so the kernel
    // compiler can surface it per nest.
    if let Some(sched) = module.op(apply_op).attr("halo_schedule").cloned() {
        module
            .op_mut(loop_root)
            .attrs
            .insert("halo_schedule".into(), sched);
    }

    // Populate the innermost body from the apply region.
    let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();
    let body_ops = module.block_ops(body);
    let term = module
        .block_terminator(innermost)
        .ok_or_else(|| IrError::new("innermost loop body lost its terminator"))?;
    for op in body_ops {
        let name = module.op(op).name.full().to_string();
        match name.as_str() {
            stencil::ACCESS => {
                let temp_arg = module.op(op).operands[0];
                let offsets = stencil::access_offset(module, op)
                    .ok_or_else(|| IrError::new("access without offset"))?;
                let view = input_views
                    .get(&temp_arg)
                    .ok_or_else(|| IrError::new("access of unmapped temp"))?
                    .clone();
                let result = module.result(op);
                let mut b = OpBuilder::before(module, term);
                let indices = address_indices(&mut b, &ivs, &offsets, &view.lbs);
                let loaded = memref::load(&mut b, view.memref, indices);
                value_map.insert(result, loaded);
            }
            stencil::INDEX => {
                let dim = module
                    .op(op)
                    .attr("dim")
                    .and_then(Attribute::as_int)
                    .unwrap_or(0) as usize;
                value_map.insert(module.result(op), ivs[dim]);
            }
            stencil::RETURN => {
                let values = module.op(op).operands.clone();
                for (i, v) in values.into_iter().enumerate() {
                    let out = out_views[i].clone();
                    let stored = *value_map.get(&v).unwrap_or(&v);
                    let mut b = OpBuilder::before(module, term);
                    let indices = address_indices(&mut b, &ivs, &vec![0; rank], &out.lbs);
                    memref::store(&mut b, stored, out.memref, indices);
                }
            }
            _ => {
                // arith/math ops: clone with remapped operands.
                let operands: Vec<ValueId> = module
                    .op(op)
                    .operands
                    .iter()
                    .map(|o| *value_map.get(o).or_else(|| scalar_map.get(o)).unwrap_or(o))
                    .collect();
                let result_tys: Vec<Type> = module
                    .op(op)
                    .results
                    .iter()
                    .map(|&r| module.value_type(r).clone())
                    .collect();
                let attrs: Vec<(String, Attribute)> = module
                    .op(op)
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let old_results = module.op(op).results.clone();
                let mut b = OpBuilder::before(module, term);
                let new_op = b.op(
                    name.as_str(),
                    operands,
                    result_tys,
                    attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect(),
                );
                let new_results = module.op(new_op).results.clone();
                for (old, new) in old_results.into_iter().zip(new_results) {
                    value_map.insert(old, new);
                }
            }
        }
    }
    Ok(())
}

/// Build the memref indices `iv_d + (offset_d - lb_d)` for each dimension.
fn address_indices(
    b: &mut OpBuilder,
    ivs: &[ValueId],
    offsets: &[i64],
    lbs: &[i64],
) -> Vec<ValueId> {
    ivs.iter()
        .zip(offsets.iter().zip(lbs))
        .map(|(&iv, (&off, &lb))| {
            let shift = off - lb;
            if shift == 0 {
                iv
            } else {
                let c = arith::const_index(b, shift);
                arith::addi(b, iv, c)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use crate::extract::extract_stencils;
    use crate::merge::merge_adjacent_applies;
    use fsc_dialects::verify::{assert_dialect_absent, verify};
    use fsc_fortran::compile_to_fir;

    const LISTING1: &str = "
program average
  integer, parameter :: n = 64
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    fn stencil_module(src: &str) -> Module {
        let mut m = compile_to_fir(src).unwrap();
        discover_stencils(&mut m).unwrap();
        merge_adjacent_applies(&mut m).unwrap();
        extract_stencils(&mut m).unwrap()
    }

    #[test]
    fn cpu_shape_is_parallel_plus_for() {
        let mut st = stencil_module(LISTING1);
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        assert_dialect_absent(&st, "stencil").unwrap();
        let pars = collect_ops_named(&st, scf::PARALLEL);
        assert_eq!(pars.len(), 1);
        assert_eq!(scf::ParallelOp(pars[0]).num_dims(&st), 1);
        let fors = collect_ops_named(&st, scf::FOR);
        assert_eq!(fors.len(), 1);
        // The for is nested inside the parallel.
        assert!(st.ancestors(fors[0]).contains(&pars[0]));
        verify(&st).unwrap();
    }

    #[test]
    fn gpu_shape_is_one_coalesced_parallel() {
        let mut st = stencil_module(LISTING1);
        lower_stencils(&mut st, LoweringTarget::Gpu).unwrap();
        let pars = collect_ops_named(&st, scf::PARALLEL);
        assert_eq!(pars.len(), 1);
        assert_eq!(scf::ParallelOp(pars[0]).num_dims(&st), 2);
        assert!(collect_ops_named(&st, scf::FOR).is_empty());
        verify(&st).unwrap();
    }

    #[test]
    fn memref_views_built_from_pointers() {
        let mut st = stencil_module(LISTING1);
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        let views = collect_ops_named(&st, memref::FROM_PTR);
        assert_eq!(views.len(), 2);
        for v in views {
            assert_eq!(
                st.value_type(st.result(v)),
                &Type::memref(vec![66, 66], Type::f64())
            );
        }
    }

    #[test]
    fn loop_bounds_match_domain() {
        let mut st = stencil_module(LISTING1);
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        let pars = collect_ops_named(&st, scf::PARALLEL);
        let par = scf::ParallelOp(pars[0]);
        let lb = arith::const_int_value(&st, par.lbs(&st)[0]).unwrap();
        let ub = arith::const_int_value(&st, par.ubs(&st)[0]).unwrap();
        assert_eq!((lb, ub), (1, 65), "domain 1..=64 → exclusive 65");
    }

    #[test]
    fn in_place_apply_gets_snapshot_copy() {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: u(0:n+1)
  do i = 1, n
    u(i) = 0.5 * (u(i-1) + u(i+1))
  end do
end program t
";
        let mut st = stencil_module(src);
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        assert_eq!(collect_ops_named(&st, memref::ALLOC).len(), 1);
        assert_eq!(collect_ops_named(&st, memref::COPY).len(), 1);
        verify(&st).unwrap();
    }

    #[test]
    fn no_copy_for_disjoint_in_out() {
        let mut st = stencil_module(LISTING1);
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        assert!(collect_ops_named(&st, memref::ALLOC).is_empty());
        assert!(collect_ops_named(&st, memref::COPY).is_empty());
    }

    #[test]
    fn fused_apply_lowered_with_multiple_stores() {
        let src = "
program pw
  integer, parameter :: n = 8
  integer :: i, k
  real(kind=8) :: u(0:n+1, 0:n+1), su(0:n+1, 0:n+1), sv(0:n+1, 0:n+1)
  do k = 1, n
    do i = 1, n
      su(i, k) = 0.5 * (u(i-1, k) + u(i+1, k))
      sv(i, k) = 0.5 * (u(i, k-1) + u(i, k+1))
    end do
  end do
end program pw
";
        let mut st = stencil_module(src);
        lower_stencils(&mut st, LoweringTarget::Cpu).unwrap();
        // One loop nest, two memref.stores in the innermost body.
        assert_eq!(collect_ops_named(&st, scf::PARALLEL).len(), 1);
        assert_eq!(collect_ops_named(&st, memref::STORE).len(), 2);
        verify(&st).unwrap();
    }

    #[test]
    fn pass_options_select_target() {
        let mut opts = PassOptions::default();
        opts.set("target", "gpu");
        assert_eq!(
            StencilToScf::from_options(&opts).target,
            LoweringTarget::Gpu
        );
        assert_eq!(
            StencilToScf::from_options(&PassOptions::default()).target,
            LoweringTarget::Cpu
        );
    }
}
