//! *Stencil discovery* — the paper's Listing 3.
//!
//! For every `fir.store` indexed by loops, walk the right-hand side's
//! backward slice; if it is built purely from neighbourhood array reads
//! (`loopvar + const` subscripts), captured loop-invariant scalars, loop
//! indices and `arith`/`math` arithmetic, rewrite the computation as
//! `stencil.external_load` / `stencil.load` / `stencil.apply` /
//! `stencil.store` ops inserted directly before the outermost applicable
//! loop, erase the original body computation, and finally delete loops left
//! empty. Adjacent compatible applies are merged afterwards
//! (`merge_stencils_if_possible`, line 29 of Listing 3 — our
//! [`crate::merge`] pass).
//!
//! The stencil coordinate system is the Fortran index space: a field built
//! from an array declared `a(0:n+1, 0:n+1)` gets bounds `[0,n+1]x[0,n+1]`,
//! and the apply's domain is the loop range, exactly as in the paper's
//! Listing 2 where `data(-1:256)` iterated over `1..256` yields
//! `!stencil.temp<[-1,255]x...>` (zero-based there because C-style bounds).

use std::collections::HashMap;

use fsc_dialects::{fir, stencil};
use fsc_ir::rewrite::erase_dead_pure_ops;
use fsc_ir::types::DimBound;
use fsc_ir::walk::{collect_nested_ops, collect_ops_named};
use fsc_ir::{
    Attribute, IrError, Module, OpBuilder, OpId, Pass, PassResult, Result, Type, ValueId,
};

use crate::analysis::{decode_access, gather_program_loops, ArrayAccess, IndexExpr, LoopInfo};
use crate::merge;

/// The discovery pass. Registered as `discover-stencils`. `fuse` controls
/// whether line 29 of Listing 3 (`merge_stencils_if_possible`) runs — the
/// fusion ablation and the unoptimised comparison tier turn it off.
#[derive(Debug, Clone, Copy)]
pub struct DiscoverStencils {
    /// Run the adjacent-apply fusion after discovery.
    pub fuse: bool,
}

impl Default for DiscoverStencils {
    fn default() -> Self {
        Self { fuse: true }
    }
}

impl Pass for DiscoverStencils {
    fn name(&self) -> &str {
        "discover-stencils"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let found = discover_stencils(module)?;
        if found == 0 {
            return Ok(PassResult::Unchanged);
        }
        if self.fuse {
            merge::merge_adjacent_applies(module)?;
        }
        Ok(PassResult::Changed)
    }
}

/// Run discovery; returns the number of stencils created.
pub fn discover_stencils(module: &mut Module) -> Result<usize> {
    let loops = gather_program_loops(module);
    let mut built = 0usize;
    // Identify candidate stores first (ids stay valid across rewrites).
    let stores: Vec<OpId> = collect_ops_named(module, fir::STORE)
        .into_iter()
        .filter(|&s| module.value_type(module.op(s).operands[0]).is_float())
        .collect();
    for store in stores {
        if !module.is_alive(store) {
            continue;
        }
        if let Some(cand) = analyze_candidate(module, store, &loops) {
            build_stencil(module, &cand)?;
            module.erase_op(store);
            built += 1;
        }
    }
    if built > 0 {
        erase_dead_pure_ops(module);
        remove_empty_loops(module);
    }
    Ok(built)
}

/// Everything needed to materialise one stencil.
struct Candidate {
    /// The original array store.
    store: OpId,
    /// Decoded store target.
    target: ArrayAccess,
    /// Store subscript offsets per dimension.
    store_offsets: Vec<i64>,
    /// The loop driving each store dimension.
    dim_loops: Vec<LoopInfo>,
    /// Outermost applicable loop (insertion anchor).
    top_loop: OpId,
    /// Loop-variable alloca → store dimension.
    var_dims: HashMap<ValueId, usize>,
    /// Captured loop-invariant scalar allocas, in first-use order.
    captured: Vec<ValueId>,
    /// Array reads in the slice (deduplicated by base), in first-use order.
    read_bases: Vec<ValueId>,
    /// Representative access per read base (for bounds).
    read_info: HashMap<ValueId, ArrayAccess>,
}

fn analyze_candidate(m: &Module, store: OpId, loops: &[LoopInfo]) -> Option<Candidate> {
    let target = decode_access(m, m.op(store).operands[1])?;
    if !target.is_loop_indexed() {
        return None;
    }
    let ancestors = m.ancestors(store);
    // Map each store dim to its loop. The same Fortran variable may drive
    // several loops in the program (e.g. reused `i` across nests), so each
    // subscript resolves to the *enclosing* loop bound to that variable.
    let mut dim_loops: Vec<LoopInfo> = Vec::new();
    let mut var_dims = HashMap::new();
    let mut store_offsets = Vec::new();
    for (d, expr) in target.index_exprs.iter().enumerate() {
        let IndexExpr::LoopVar { alloca, offset } = *expr else {
            return None;
        };
        let info = loops
            .iter()
            .filter(|l| l.var_alloca == Some(alloca) && ancestors.contains(&l.op))
            .max_by_key(|l| l.depth)?
            .clone();
        if info.step != Some(1) || info.lb.is_none() || info.ub.is_none() {
            return None;
        }
        if var_dims.insert(alloca, d).is_some() {
            return None; // same loop used twice
        }
        store_offsets.push(offset);
        dim_loops.push(info);
    }
    let top_loop = dim_loops.iter().min_by_key(|l| l.depth).map(|l| l.op)?;
    // No conditional control flow between the store and the outermost
    // applicable loop: every ancestor on that path must itself be a
    // `fir.do_loop` (extracting the store would otherwise change which
    // iterations write).
    for &anc in &ancestors {
        if m.op(anc).name.full() != fir::DO_LOOP {
            return None;
        }
        if anc == top_loop {
            break;
        }
    }

    // Validate the RHS slice and collect reads/captures.
    let mut ctx = SliceCtx {
        m,
        var_dims: &var_dims,
        target_rank: target.extents.len(),
        top_loop,
        captured: Vec::new(),
        read_bases: Vec::new(),
        read_info: HashMap::new(),
    };
    if !ctx.validate(m.op(store).operands[0]) {
        return None;
    }
    let SliceCtx {
        captured,
        read_bases,
        read_info,
        ..
    } = ctx;
    Some(Candidate {
        store,
        store_offsets,
        dim_loops,
        top_loop,
        var_dims,
        captured,
        read_bases,
        read_info,
        target,
    })
}

struct SliceCtx<'a> {
    m: &'a Module,
    var_dims: &'a HashMap<ValueId, usize>,
    target_rank: usize,
    top_loop: OpId,
    captured: Vec<ValueId>,
    read_bases: Vec<ValueId>,
    read_info: HashMap<ValueId, ArrayAccess>,
}

impl<'a> SliceCtx<'a> {
    fn validate(&mut self, v: ValueId) -> bool {
        let m = self.m;
        let Some(def) = m.defining_op(v) else {
            // Block arguments (loop ivs) as raw values are not expected in
            // the value slice (the frontend goes through the alloca).
            return false;
        };
        let name = m.op(def).name.full();
        match name {
            fir::LOAD => {
                let addr = m.op(def).operands[0];
                if let Some(access) = decode_access(m, addr) {
                    // Array read: every dim must be loopvar+const with the
                    // loop matching the store's dimension.
                    if access.index_exprs.len() != self.target_rank {
                        return false;
                    }
                    for (d, e) in access.index_exprs.iter().enumerate() {
                        let IndexExpr::LoopVar { alloca, .. } = e else {
                            return false;
                        };
                        if self.var_dims.get(alloca) != Some(&d) {
                            return false;
                        }
                    }
                    if !self.read_bases.contains(&access.base) {
                        self.read_bases.push(access.base);
                        self.read_info.insert(access.base, access.clone());
                    }
                    true
                } else {
                    // Scalar load: loop variable or captured invariant.
                    let src = m.op(def).operands[0];
                    if self.var_dims.contains_key(&src) {
                        return true; // loop index used as a value
                    }
                    if !matches!(m.value_type(src), Type::FirRef(_)) {
                        return false;
                    }
                    if self.is_mutated_inside_nest(src) {
                        return false;
                    }
                    if !self.captured.contains(&src) {
                        self.captured.push(src);
                    }
                    true
                }
            }
            "arith.constant" => true,
            fir::CONVERT | fir::NO_REASSOC => self.validate(m.op(def).operands[0]),
            _ if name.starts_with("arith.") || name.starts_with("math.") => {
                m.op(def).operands.clone().iter().all(|&o| self.validate(o))
            }
            _ => false,
        }
    }

    /// A captured scalar must not be written anywhere inside the loop nest.
    fn is_mutated_inside_nest(&self, alloca: ValueId) -> bool {
        let m = self.m;
        collect_nested_ops(m, self.top_loop)
            .iter()
            .any(|&op| m.op(op).name.full() == fir::STORE && m.op(op).operands[1] == alloca)
    }
}

/// Materialise the stencil ops for a candidate, inserted before its top
/// loop.
fn build_stencil(m: &mut Module, cand: &Candidate) -> Result<()> {
    let rank = cand.target.extents.len();
    let elem = cand.target.elem.clone();

    // Output domain bounds in Fortran index space.
    let mut out_bounds: Vec<DimBound> = Vec::with_capacity(rank);
    for d in 0..rank {
        let (Some(lb), Some(ub)) = (cand.dim_loops[d].lb, cand.dim_loops[d].ub) else {
            return Err(IrError::new(
                "stencil candidate has non-constant loop bounds",
            ));
        };
        out_bounds.push(DimBound::new(
            lb + cand.store_offsets[d],
            ub + cand.store_offsets[d],
        ));
    }

    // 1. Field loads for every read array and the output array.
    let mut temps: HashMap<ValueId, ValueId> = HashMap::new();
    let mut fields: HashMap<ValueId, ValueId> = HashMap::new();
    {
        let mut b = OpBuilder::before(m, cand.top_loop);
        for &base in &cand.read_bases {
            let acc = &cand.read_info[&base];
            let bounds = field_bounds(acc);
            let field = stencil::external_load(&mut b, base, bounds, acc.elem.clone());
            fields.insert(base, field);
            let temp = stencil::load(&mut b, field);
            temps.insert(base, temp);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = fields.entry(cand.target.base) {
            let bounds = field_bounds(&cand.target);
            let field = stencil::external_load(&mut b, cand.target.base, bounds, elem.clone());
            e.insert(field);
        }
    }

    // 2. Captured scalars become loads just before the apply.
    let mut scalar_inputs = Vec::new();
    {
        let mut b = OpBuilder::before(m, cand.top_loop);
        for &alloca in &cand.captured {
            scalar_inputs.push(fir::load(&mut b, alloca));
        }
    }

    // 3. The apply op.
    let mut inputs: Vec<ValueId> = cand.read_bases.iter().map(|b| temps[b]).collect();
    let num_temps = inputs.len();
    inputs.extend(scalar_inputs.iter().copied());
    let apply = {
        let mut b = OpBuilder::before(m, cand.top_loop);
        stencil::build_apply(&mut b, inputs, out_bounds.clone(), vec![elem])
    };

    // 4. Populate the body by re-emitting the stored value's slice.
    let body = apply.body(m);
    let mut emitter = BodyEmitter {
        cand,
        memo: HashMap::new(),
        temp_args: cand
            .read_bases
            .iter()
            .enumerate()
            .map(|(i, &base)| (base, apply.body_arg(m, i)))
            .collect(),
        scalar_args: cand
            .captured
            .iter()
            .enumerate()
            .map(|(i, &alloca)| (alloca, apply.body_arg(m, num_temps + i)))
            .collect(),
    };
    let stored_value = m.op(cand.store).operands[0];
    let result = emitter.emit(m, body, stored_value)?;
    {
        let mut b = OpBuilder::at_end(m, body);
        stencil::build_return(&mut b, vec![result]);
    }

    // 5. Store the apply result back to the output field.
    {
        let apply_result = m.result(apply.0);
        let mut b = OpBuilder::before(m, cand.top_loop);
        stencil::store(&mut b, apply_result, fields[&cand.target.base], out_bounds);
    }
    Ok(())
}

/// Field bounds of an array in Fortran index space.
fn field_bounds(acc: &ArrayAccess) -> Vec<DimBound> {
    acc.lbounds
        .iter()
        .zip(&acc.extents)
        .map(|(&lb, &e)| DimBound::new(lb, lb + e - 1))
        .collect()
}

struct BodyEmitter<'a> {
    cand: &'a Candidate,
    memo: HashMap<ValueId, ValueId>,
    temp_args: HashMap<ValueId, ValueId>,
    scalar_args: HashMap<ValueId, ValueId>,
}

impl<'a> BodyEmitter<'a> {
    /// Re-emit the computation of `v` inside the apply body, returning the
    /// body-local value.
    fn emit(&mut self, m: &mut Module, body: fsc_ir::BlockId, v: ValueId) -> Result<ValueId> {
        if let Some(&done) = self.memo.get(&v) {
            return Ok(done);
        }
        let def = m
            .defining_op(v)
            .ok_or_else(|| IrError::new("slice value without defining op"))?;
        let name = m.op(def).name.full().to_string();
        let out = match name.as_str() {
            fir::LOAD => {
                let addr = m.op(def).operands[0];
                if let Some(access) = decode_access(m, addr) {
                    // Relative offsets versus the store position.
                    let mut offsets = Vec::with_capacity(access.index_exprs.len());
                    for (d, e) in access.index_exprs.iter().enumerate() {
                        match e {
                            IndexExpr::LoopVar { offset, .. } => {
                                offsets.push(offset - self.cand.store_offsets[d]);
                            }
                            _ => {
                                return Err(IrError::new("stencil read index is not loop-indexed"))
                            }
                        }
                    }
                    let temp = *self
                        .temp_args
                        .get(&access.base)
                        .ok_or_else(|| IrError::new("stencil read base missing a temp argument"))?;
                    let mut b = OpBuilder::at_end(m, body);
                    stencil::access(&mut b, temp, offsets)
                } else {
                    let src = m.op(def).operands[0];
                    if let Some(&dim) = self.cand.var_dims.get(&src) {
                        // Loop index as a value: stencil.index gives the
                        // current coordinate; correct for the store offset
                        // and narrow to the Fortran integer type.
                        let off = self.cand.store_offsets[dim];
                        let mut b = OpBuilder::at_end(m, body);
                        let idx = stencil::index(&mut b, dim as i64);
                        let as_i32 = b.op1("arith.index_cast", vec![idx], Type::i32(), vec![]).1;
                        if off != 0 {
                            let c = fsc_dialects::arith::const_int(&mut b, off, Type::i32());
                            fsc_dialects::arith::subi(&mut b, as_i32, c)
                        } else {
                            as_i32
                        }
                    } else {
                        *self.scalar_args.get(&src).ok_or_else(|| {
                            IrError::new("scalar load not captured during validation")
                        })?
                    }
                }
            }
            "arith.constant" => {
                let value = m
                    .op(def)
                    .attr("value")
                    .cloned()
                    .ok_or_else(|| IrError::new("arith.constant without a value attr"))?;
                let ty = m.value_type(v).clone();
                let mut b = OpBuilder::at_end(m, body);
                b.op1("arith.constant", vec![], ty, vec![("value", value)])
                    .1
            }
            fir::NO_REASSOC => {
                let inner = m.op(def).operands[0];
                self.emit(m, body, inner)?
            }
            fir::CONVERT => {
                let inner = m.op(def).operands[0];
                let from = m.value_type(inner).clone();
                let to = m.value_type(v).clone();
                let iv = self.emit(m, body, inner)?;
                emit_standard_convert(m, body, iv, &from, &to)
            }
            _ if name.starts_with("arith.") || name.starts_with("math.") => {
                let operands = m.op(def).operands.clone();
                let mut emitted = Vec::with_capacity(operands.len());
                for o in operands {
                    emitted.push(self.emit(m, body, o)?);
                }
                let ty = m.value_type(v).clone();
                let attrs: Vec<(String, Attribute)> = m
                    .op(def)
                    .attrs
                    .iter()
                    .map(|(k, a)| (k.clone(), a.clone()))
                    .collect();
                let mut b = OpBuilder::at_end(m, body);
                let op = b.op(
                    name.as_str(),
                    emitted,
                    vec![ty],
                    attrs.iter().map(|(k, a)| (k.as_str(), a.clone())).collect(),
                );
                b.module().result(op)
            }
            other => {
                return Err(IrError::new(format!(
                    "unexpected op '{other}' in validated stencil slice"
                )));
            }
        };
        self.memo.insert(v, out);
        Ok(out)
    }
}

/// Translate a `fir.convert` into the equivalent standard-dialect cast —
/// needed because the extracted stencil module must not contain FIR (§3).
fn emit_standard_convert(
    m: &mut Module,
    body: fsc_ir::BlockId,
    v: ValueId,
    from: &Type,
    to: &Type,
) -> ValueId {
    if from == to {
        return v;
    }
    let name = match (from, to) {
        (Type::Int(_) | Type::Index, Type::Float(_)) => "arith.sitofp",
        (Type::Float(_), Type::Int(_) | Type::Index) => "arith.fptosi",
        (Type::Int(a), Type::Int(b)) if b > a => "arith.extsi",
        (Type::Int(a), Type::Int(b)) if b < a => "arith.trunci",
        (Type::Index, Type::Int(_)) | (Type::Int(_), Type::Index) => "arith.index_cast",
        (Type::Float(_), Type::Float(_)) => {
            return v; // single float width in this pipeline
        }
        _ => "arith.index_cast",
    };
    let mut b = OpBuilder::at_end(m, body);
    b.op1(name, vec![v], to.clone(), vec![]).1
}

/// Delete loops whose bodies contain only induction-variable bookkeeping
/// (lines 25–27 of Listing 3). Innermost loops go first; outer loops that
/// then become empty are removed on later sweeps.
pub fn remove_empty_loops(m: &mut Module) {
    loop {
        let mut changed = false;
        // Bound constants of an erased inner loop sit in the outer body;
        // sweep them so the outer loop can be recognised as empty too.
        erase_dead_pure_ops(m);
        for lp_op in collect_ops_named(m, fir::DO_LOOP) {
            if !m.is_alive(lp_op) {
                continue;
            }
            let lp = fir::DoLoopOp(lp_op);
            let iv = lp.iv(m);
            let body_ops = lp.body_ops(m);
            let only_bookkeeping = body_ops.iter().all(|&op| {
                let data = m.op(op);
                match data.name.full() {
                    fir::CONVERT => data.operands == vec![iv],
                    fir::STORE => {
                        // A store of the converted iv into a scalar ref.
                        m.defining_op(data.operands[0])
                            .map(|d| {
                                m.op(d).name.full() == fir::CONVERT && m.op(d).operands == vec![iv]
                            })
                            .unwrap_or(false)
                    }
                    _ => false,
                }
            });
            if only_bookkeeping {
                m.erase_op(lp_op);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_dialects::verify::verify;
    use fsc_fortran::compile_to_fir;

    /// The paper's Listing 1.
    const LISTING1: &str = "
program average
  integer, parameter :: n = 256
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    #[test]
    fn zero_trip_and_one_cell_nests_discover_cleanly(
    ) -> std::result::Result<(), Box<dyn std::error::Error>> {
        // `do i = 1, 0` (zero-extent interior) and `do i = 1, 1` (one-cell
        // interior) are degenerate but legal: discovery must either build a
        // verified zero/one-extent apply or reject the nest — never
        // underflow the bound arithmetic or emit IR the verifier rejects.
        for (upper, extent) in [(0i64, 0i64), (1, 1)] {
            let src = format!(
                "
program tiny
  integer, parameter :: n = {upper}
  integer :: i, j
  real(kind=8) :: a(0:n+1, 0:n+1), b(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      b(j, i) = 0.25 * (a(j, i-1) + a(j, i+1) + a(j-1, i) + a(j+1, i))
    end do
  end do
end program tiny
"
            );
            let mut m = compile_to_fir(&src)?;
            let built = discover_stencils(&mut m)?;
            assert_eq!(built, 1, "extent-{extent} nest must still be discovered");
            verify(&m).unwrap_or_else(|e| panic!("extent-{extent}: {e}"));
            let applies = collect_ops_named(&m, stencil::APPLY);
            let apply = stencil::ApplyOp(applies[0]);
            for b in apply.output_bounds(&m) {
                assert_eq!(b.extent(), extent, "bound {b:?}");
            }
        }
        Ok(())
    }

    #[test]
    fn listing1_discovers_one_stencil() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut m = compile_to_fir(LISTING1)?;
        let n = discover_stencils(&mut m)?;
        assert_eq!(n, 1);
        let applies = collect_ops_named(&m, stencil::APPLY);
        assert_eq!(applies.len(), 1);
        let apply = stencil::ApplyOp(applies[0]);
        // Domain = 1..=256 in both dims (Fortran index space).
        assert_eq!(
            apply.output_bounds(&m),
            vec![DimBound::new(1, 256), DimBound::new(1, 256)]
        );
        // Four neighbour accesses.
        let body = apply.body(&m);
        let accesses: Vec<Vec<i64>> = m
            .block_ops(body)
            .into_iter()
            .filter(|&o| m.op(o).name.full() == stencil::ACCESS)
            .map(|o| stencil::access_offset(&m, o).unwrap())
            .collect();
        let mut sorted = accesses.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![vec![-1, 0], vec![0, -1], vec![0, 1], vec![1, 0]]
        );
        // Loops are gone.
        assert!(collect_ops_named(&m, fir::DO_LOOP).is_empty());
        verify(&m)?;
        Ok(())
    }

    #[test]
    fn listing1_field_bounds_cover_declared_array(
    ) -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut m = compile_to_fir(LISTING1)?;
        discover_stencils(&mut m)?;
        let loads = collect_ops_named(&m, stencil::EXTERNAL_LOAD);
        assert_eq!(loads.len(), 2); // data + res
        for l in loads {
            let ty = m.value_type(m.result(l));
            assert_eq!(
                ty.stencil_bounds().ok_or("missing value")?,
                &[DimBound::new(0, 257), DimBound::new(0, 257)]
            );
        }
        Ok(())
    }

    #[test]
    fn apply_body_is_fir_free() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut m = compile_to_fir(LISTING1)?;
        discover_stencils(&mut m)?;
        let applies = collect_ops_named(&m, stencil::APPLY);
        let apply = stencil::ApplyOp(applies[0]);
        for op in m.block_ops(apply.body(&m)) {
            assert_ne!(m.op(op).name.dialect(), "fir", "FIR op left in body");
        }
        Ok(())
    }

    #[test]
    fn time_loop_survives_inner_stencil_extraction(
    ) -> std::result::Result<(), Box<dyn std::error::Error>> {
        // An outer iteration loop must remain, with the stencil inside it.
        let src = "
program gs
  integer, parameter :: n = 8
  integer :: i, j, t
  real(kind=8) :: u(0:n+1, 0:n+1), un(0:n+1, 0:n+1)
  do t = 1, 10
    do i = 1, n
      do j = 1, n
        un(j, i) = 0.25 * (u(j-1, i) + u(j+1, i) + u(j, i-1) + u(j, i+1))
      end do
    end do
    do i = 1, n
      do j = 1, n
        u(j, i) = un(j, i)
      end do
    end do
  end do
end program gs
";
        let mut m = compile_to_fir(src)?;
        let n = discover_stencils(&mut m)?;
        assert_eq!(n, 2);
        let loops = collect_ops_named(&m, fir::DO_LOOP);
        assert_eq!(loops.len(), 1, "only the time loop should remain");
        // Both applies are inside the time loop.
        for a in collect_ops_named(&m, stencil::APPLY) {
            assert!(m.ancestors(a).contains(&loops[0]));
        }
        verify(&m)?;
        Ok(())
    }

    #[test]
    fn non_stencil_store_left_alone() -> std::result::Result<(), Box<dyn std::error::Error>> {
        // a(2*i) disqualifies the subscript.
        let src = "
program t
  integer :: i
  real(kind=8) :: a(16)
  do i = 1, 8
    a(2*i) = 1.0
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        let n = discover_stencils(&mut m)?;
        assert_eq!(n, 0);
        assert_eq!(collect_ops_named(&m, fir::DO_LOOP).len(), 1);
        assert!(collect_ops_named(&m, stencil::APPLY).is_empty());
        Ok(())
    }

    #[test]
    fn transposed_access_disqualifies() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i, j
  real(kind=8) :: a(n, n), r(n, n)
  do i = 1, n
    do j = 1, n
      r(j, i) = a(i, j)
    end do
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        assert_eq!(discover_stencils(&mut m)?, 0);
        Ok(())
    }

    #[test]
    fn captured_scalar_becomes_apply_input() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: c
  real(kind=8) :: a(0:n+1), r(0:n+1)
  c = 0.5
  do i = 1, n
    r(i) = c * (a(i-1) + a(i+1))
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        assert_eq!(discover_stencils(&mut m)?, 1);
        let applies = collect_ops_named(&m, stencil::APPLY);
        let apply = stencil::ApplyOp(applies[0]);
        // Inputs: the temp for `a` plus the captured scalar load of `c`.
        let inputs = apply.inputs(&m);
        assert_eq!(inputs.len(), 2);
        assert_eq!(m.value_type(inputs[1]), &Type::f64());
        let def = m.defining_op(inputs[1]).ok_or("missing value")?;
        assert_eq!(m.op(def).name.full(), fir::LOAD);
        verify(&m)?;
        Ok(())
    }

    #[test]
    fn scalar_mutated_in_nest_disqualifies() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: c
  real(kind=8) :: a(0:n+1), r(0:n+1)
  do i = 1, n
    c = c + 1.0
    r(i) = c * a(i)
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        assert_eq!(discover_stencils(&mut m)?, 0);
        Ok(())
    }

    #[test]
    fn loop_index_value_uses_stencil_index() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: a(0:n+1), r(0:n+1)
  do i = 1, n
    r(i) = a(i) + i
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        assert_eq!(discover_stencils(&mut m)?, 1);
        let idx_ops = collect_ops_named(&m, stencil::INDEX);
        assert_eq!(idx_ops.len(), 1);
        verify(&m)?;
        Ok(())
    }

    #[test]
    fn in_place_update_is_discovered() -> std::result::Result<(), Box<dyn std::error::Error>> {
        // Reading and writing the same array (value semantics snapshot).
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: u(0:n+1)
  do i = 1, n
    u(i) = 0.5 * (u(i-1) + u(i+1))
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        assert_eq!(discover_stencils(&mut m)?, 1);
        // One external_load for u (shared by read temp and store field).
        assert_eq!(collect_ops_named(&m, stencil::EXTERNAL_LOAD).len(), 1);
        assert_eq!(collect_ops_named(&m, stencil::STORE).len(), 1);
        verify(&m)?;
        Ok(())
    }

    #[test]
    fn loop_with_if_is_not_a_stencil() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let src = "
program t
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: a(0:n+1), r(0:n+1)
  do i = 1, n
    if (a(i) > 0.0) then
      r(i) = a(i)
    end if
  end do
end program t
";
        let mut m = compile_to_fir(src)?;
        // The store sits under fir.if; its driving loops still enclose it,
        // but the slice is fine — what must stop it is that removing the
        // store would leave the `if` behind. Conservatively, stores under
        // conditional control flow are skipped.
        let n = discover_stencils(&mut m)?;
        assert_eq!(n, 0);
        Ok(())
    }
}
