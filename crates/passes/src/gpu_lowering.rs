//! GPU lowering: `convert-parallel-loops-to-gpu` + `gpu-kernel-outlining`,
//! and the paper's two data-management strategies (Figure 5).
//!
//! Outlining moves each stencil function's body into a `gpu.func` inside a
//! module-level `gpu.module`, leaving behind data-management ops and a
//! `gpu.launch_func`. Launch dimensions come from the (possibly tiled)
//! `scf.parallel`: the tile sizes become the thread-block shape and the
//! grid covers the domain — mirroring how
//! `scf-parallel-loop-tiling{parallel-loop-tile-sizes=32,32,1}` feeds
//! `convert-parallel-loops-to-gpu` in Listing 4.
//!
//! Data strategies:
//! * [`GpuDataNaive`] — `gpu.host_register` every buffer argument: the
//!   device demand-pages over PCIe on *every* launch (the paper's slow
//!   "initial data approach");
//! * [`GpuDataExplicit`] — the paper's bespoke pass: explicit `gpu.memcpy`
//!   *ensure-valid* ops before the launch. The runtime ledger
//!   (`fsc-gpusim`) only charges a transfer when the host copy is newer, so
//!   data stays resident across the time loop; device→host copies happen
//!   lazily when the FIR side touches the result.

use fsc_dialects::{arith, func, gpu, scf};
use fsc_ir::rewrite::clone_op_into;
use fsc_ir::walk::{collect_nested_ops, collect_ops_named};
use fsc_ir::{
    Attribute, IrError, Module, OpBuilder, OpId, Pass, PassResult, Result, Type, ValueId,
};

/// Attribute on `gpu.launch_func` naming the data strategy.
pub const DATA_STRATEGY_ATTR: &str = "data_strategy";
/// Attribute listing which kernel arguments are written.
pub const WRITTEN_ARGS_ATTR: &str = "written_args";
/// Attribute listing which kernel arguments are read.
pub const READ_ARGS_ATTR: &str = "read_args";

/// `convert-parallel-loops-to-gpu` + `gpu-kernel-outlining`, fused.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertParallelLoopsToGpu;

impl Pass for ConvertParallelLoopsToGpu {
    fn name(&self) -> &str {
        "convert-parallel-loops-to-gpu"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let funcs: Vec<OpId> = module.top_level_ops_named(func::FUNC);
        let mut changed = false;
        for f in funcs {
            if outline_func(module, f)? {
                changed = true;
            }
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

fn outline_func(module: &mut Module, f_op: OpId) -> Result<bool> {
    let f = func::FuncOp(f_op);
    let Some(entry) = f.entry_block(module) else {
        return Ok(false);
    };
    // Find the top-level scf.parallel (the stencil loop nest).
    let Some(par_op) = module
        .block_ops(entry)
        .into_iter()
        .find(|&o| module.op(o).name.full() == scf::PARALLEL)
    else {
        return Ok(false);
    };
    let name = f.name(module);
    let kernel_name = format!("{name}_kernel");

    // Launch geometry from the parallel loop.
    let par = scf::ParallelOp(par_op);
    let extents: Vec<i64> = par
        .lbs(module)
        .iter()
        .zip(par.ubs(module))
        .map(|(&lb, ub)| {
            let l = arith::const_int_value(module, lb).unwrap_or(0);
            let u = arith::const_int_value(module, ub).unwrap_or(0);
            (u - l).max(0)
        })
        .collect();
    let tiles: Vec<i64> = module
        .op(par_op)
        .attr("tiled")
        .and_then(Attribute::as_index_list)
        .map(<[i64]>::to_vec)
        .unwrap_or_else(|| {
            module
                .op(par_op)
                .operands
                .iter()
                .skip(2 * par.num_dims(module))
                .map(|&s| arith::const_int_value(module, s).unwrap_or(1))
                .collect()
        });
    let mut block = [1i64; 3];
    let mut grid = [1i64; 3];
    for d in 0..extents.len().min(3) {
        block[d] = tiles.get(d).copied().unwrap_or(1).max(1);
        grid[d] = (extents[d] + block[d] - 1) / block[d].max(1);
    }

    // Which func arguments does the loop nest read/write?
    let args = f.arguments(module);
    let (read_args, written_args) = classify_arg_uses(module, f_op, &args);

    // Build the kernel: a gpu.func with the same signature, whose body is a
    // clone of the *entire* entry block (from_ptr views included) minus the
    // func.return.
    let (_, gpu_body) = {
        // One gpu.module per module, created on demand.
        let existing = module.top_level_ops_named(gpu::MODULE);
        if let Some(&gm) = existing.first() {
            let region = module.op(gm).regions[0];
            let body = module.region_blocks(region)[0];
            (gm, body)
        } else {
            gpu::build_gpu_module(module, "stencil_kernels")
        }
    };
    let (ins, _) = f.signature(module);
    let kernel = module.create_op(
        gpu::FUNC,
        vec![],
        vec![],
        vec![
            ("sym_name", Attribute::string(kernel_name.clone())),
            (
                "function_type",
                Attribute::Type(Type::Function {
                    inputs: ins.clone(),
                    results: vec![],
                }),
            ),
            ("kernel", Attribute::Unit),
        ],
    );
    module.append_op(gpu_body, kernel);
    let kregion = module.add_region(kernel);
    let kentry = module.add_block(kregion, &ins);

    let mut map = std::collections::HashMap::new();
    let kargs = module.block_args(kentry).to_vec();
    for (a, ka) in args.iter().zip(&kargs) {
        map.insert(*a, *ka);
    }
    let snapshot = module.clone();
    for op in snapshot.block_ops(entry) {
        if snapshot.op(op).name.full() == func::RETURN {
            continue;
        }
        clone_op_into(&snapshot, op, module, kentry, &mut map);
    }
    {
        let mut b = OpBuilder::at_end(module, kentry);
        b.op(gpu::RETURN, vec![], vec![], vec![]);
    }

    // Replace the original body with a launch.
    let ret = module
        .block_terminator(entry)
        .ok_or_else(|| IrError::new("function without terminator"))?;
    for op in module.block_ops(entry) {
        if op != ret {
            module.erase_op(op);
        }
    }
    {
        let mut b = OpBuilder::before(module, ret);
        let launch = gpu::build_launch_func(&mut b, &kernel_name, grid, block, args);
        let m = b.module();
        m.op_mut(launch).attrs.insert(
            READ_ARGS_ATTR.into(),
            Attribute::IndexList(read_args.iter().map(|&i| i as i64).collect()),
        );
        m.op_mut(launch).attrs.insert(
            WRITTEN_ARGS_ATTR.into(),
            Attribute::IndexList(written_args.iter().map(|&i| i as i64).collect()),
        );
    }
    Ok(true)
}

/// Which argument indices are read / written by the function body. A buffer
/// is *written* when its `memref.from_ptr` view is stored to (or copied
/// into), *read* otherwise.
fn classify_arg_uses(module: &Module, f_op: OpId, args: &[ValueId]) -> (Vec<usize>, Vec<usize>) {
    let mut read = Vec::new();
    let mut written = Vec::new();
    for (i, &arg) in args.iter().enumerate() {
        if !matches!(
            module.value_type(arg),
            Type::LlvmPtr(_) | Type::FirLlvmPtr(_)
        ) {
            continue;
        }
        // Find the from_ptr view(s) of this arg.
        let mut views = Vec::new();
        for op in collect_nested_ops(module, f_op) {
            if module.op(op).name.full() == fsc_dialects::memref::FROM_PTR
                && module.op(op).operands[0] == arg
            {
                views.push(module.result(op));
            }
        }
        let mut is_written = false;
        let mut is_read = false;
        for op in collect_nested_ops(module, f_op) {
            let data = module.op(op);
            match data.name.full() {
                fsc_dialects::memref::STORE if views.contains(&data.operands[1]) => {
                    is_written = true;
                }
                fsc_dialects::memref::LOAD if views.contains(&data.operands[0]) => {
                    is_read = true;
                }
                fsc_dialects::memref::COPY => {
                    if views.contains(&data.operands[0]) {
                        is_read = true;
                    }
                    if views.contains(&data.operands[1]) {
                        is_written = true;
                    }
                }
                _ => {}
            }
        }
        if is_read {
            read.push(i);
        }
        if is_written {
            written.push(i);
        }
    }
    (read, written)
}

/// The "initial data approach": `gpu.host_register` every pointer argument
/// before each launch.
#[derive(Debug, Default, Clone, Copy)]
pub struct GpuDataNaive;

impl Pass for GpuDataNaive {
    fn name(&self) -> &str {
        "gpu-data-host-register"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let mut changed = false;
        for launch in collect_ops_named(module, gpu::LAUNCH_FUNC) {
            if module.op(launch).attr(DATA_STRATEGY_ATTR).is_some() {
                continue;
            }
            let args = module.op(launch).operands.clone();
            let mut b = OpBuilder::before(module, launch);
            for arg in args {
                if matches!(
                    b.module_ref().value_type(arg),
                    Type::LlvmPtr(_) | Type::FirLlvmPtr(_)
                ) {
                    gpu::host_register(&mut b, arg);
                }
            }
            module.op_mut(launch).attrs.insert(
                DATA_STRATEGY_ATTR.into(),
                Attribute::string("host_register"),
            );
            changed = true;
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

/// The paper's bespoke optimised data-management pass: explicit ensure-valid
/// host→device copies before the launch; writes marked for lazy
/// device→host migration.
#[derive(Debug, Default, Clone, Copy)]
pub struct GpuDataExplicit;

impl Pass for GpuDataExplicit {
    fn name(&self) -> &str {
        "gpu-data-explicit"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        let mut changed = false;
        for launch in collect_ops_named(module, gpu::LAUNCH_FUNC) {
            if module.op(launch).attr(DATA_STRATEGY_ATTR).is_some() {
                continue;
            }
            let args = module.op(launch).operands.clone();
            let read = module
                .op(launch)
                .attr(READ_ARGS_ATTR)
                .and_then(Attribute::as_index_list)
                .map(<[i64]>::to_vec)
                .unwrap_or_default();
            let mut b = OpBuilder::before(module, launch);
            for &i in &read {
                let arg = args[i as usize];
                // Ensure-valid copy: destination and source are the same
                // logical buffer; the runtime ledger tracks host/device
                // residency and only charges PCIe when the host is newer.
                let cp = gpu::memcpy(&mut b, arg, arg, gpu::CopyDirection::HostToDevice);
                b.module()
                    .op_mut(cp)
                    .attrs
                    .insert("ensure_valid".into(), Attribute::Unit);
            }
            module
                .op_mut(launch)
                .attrs
                .insert(DATA_STRATEGY_ATTR.into(), Attribute::string("explicit"));
            changed = true;
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use crate::extract::extract_stencils;
    use crate::merge::merge_adjacent_applies;
    use crate::stencil_to_scf::{lower_stencils, LoweringTarget};
    use crate::tiling::ParallelLoopTiling;
    use fsc_fortran::compile_to_fir;

    const LISTING1: &str = "
program average
  integer, parameter :: n = 64
  integer :: i, j
  real(kind=8) :: data(0:n+1, 0:n+1), res(0:n+1, 0:n+1)
  do i = 1, n
    do j = 1, n
      res(j, i) = 0.25 * (data(j, i-1) + data(j, i+1) + data(j-1, i) + data(j+1, i))
    end do
  end do
end program average
";

    fn gpu_module(src: &str, tile: Vec<i64>) -> Module {
        let mut m = compile_to_fir(src).unwrap();
        discover_stencils(&mut m).unwrap();
        merge_adjacent_applies(&mut m).unwrap();
        let mut st = extract_stencils(&mut m).unwrap();
        lower_stencils(&mut st, LoweringTarget::Gpu).unwrap();
        ParallelLoopTiling {
            tile_sizes: tile,
            ..Default::default()
        }
        .run(&mut st)
        .unwrap();
        ConvertParallelLoopsToGpu.run(&mut st).unwrap();
        st
    }

    #[test]
    fn outlines_kernel_with_launch_geometry() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let st = gpu_module(LISTING1, vec![32, 32, 1]);
        let launches = collect_ops_named(&st, gpu::LAUNCH_FUNC);
        assert_eq!(launches.len(), 1);
        let (grid, block) = gpu::launch_dims(&st, launches[0]).ok_or("missing value")?;
        assert_eq!(block, [32, 32, 1]);
        assert_eq!(grid, [2, 2, 1]); // 64/32 per dim
                                     // The kernel lives in a gpu.module.
        let gms = st.top_level_ops_named(gpu::MODULE);
        assert_eq!(gms.len(), 1);
        let kernels = collect_ops_named(&st, gpu::FUNC);
        assert_eq!(kernels.len(), 1);
        // The host function now only launches.
        let f = func::find_func(&st, "stencil_region_0").ok_or("missing value")?;
        let ops = st.block_ops(f.entry_block(&st).ok_or("missing value")?);
        assert_eq!(ops.len(), 2); // launch + return
        Ok(())
    }

    #[test]
    fn read_write_args_classified() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let st = gpu_module(LISTING1, vec![32, 32, 1]);
        let launch = collect_ops_named(&st, gpu::LAUNCH_FUNC)[0];
        let read = st
            .op(launch)
            .attr(READ_ARGS_ATTR)
            .ok_or("missing value")?
            .as_index_list()
            .ok_or("missing value")?;
        let written = st
            .op(launch)
            .attr(WRITTEN_ARGS_ATTR)
            .ok_or("missing value")?
            .as_index_list()
            .ok_or("missing value")?;
        assert_eq!(read, &[0]); // data
        assert_eq!(written, &[1]); // res
        Ok(())
    }

    #[test]
    fn naive_strategy_registers_all_buffers() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let mut st = gpu_module(LISTING1, vec![32, 32, 1]);
        GpuDataNaive.run(&mut st)?;
        assert_eq!(collect_ops_named(&st, gpu::HOST_REGISTER).len(), 2);
        let launch = collect_ops_named(&st, gpu::LAUNCH_FUNC)[0];
        assert_eq!(
            st.op(launch)
                .attr(DATA_STRATEGY_ATTR)
                .ok_or("missing value")?
                .as_str(),
            Some("host_register")
        );
        Ok(())
    }

    #[test]
    fn explicit_strategy_copies_reads_only() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let mut st = gpu_module(LISTING1, vec![32, 32, 1]);
        GpuDataExplicit.run(&mut st)?;
        let copies = collect_ops_named(&st, gpu::MEMCPY);
        assert_eq!(copies.len(), 1, "only the read buffer needs ensure-valid");
        assert!(st.op(copies[0]).attr("ensure_valid").is_some());
        let launch = collect_ops_named(&st, gpu::LAUNCH_FUNC)[0];
        assert_eq!(
            st.op(launch)
                .attr(DATA_STRATEGY_ATTR)
                .ok_or("missing value")?
                .as_str(),
            Some("explicit")
        );
        Ok(())
    }

    #[test]
    fn strategies_do_not_stack() -> std::result::Result<(), Box<dyn std::error::Error>> {
        let mut st = gpu_module(LISTING1, vec![32, 32, 1]);
        GpuDataNaive.run(&mut st)?;
        assert_eq!(GpuDataExplicit.run(&mut st)?, PassResult::Unchanged);
        Ok(())
    }

    #[test]
    fn untiled_parallel_uses_steps_as_block() -> std::result::Result<(), Box<dyn std::error::Error>>
    {
        let mut m = compile_to_fir(LISTING1)?;
        discover_stencils(&mut m)?;
        let mut st = extract_stencils(&mut m)?;
        lower_stencils(&mut st, LoweringTarget::Gpu)?;
        ConvertParallelLoopsToGpu.run(&mut st)?;
        let launch = collect_ops_named(&st, gpu::LAUNCH_FUNC)[0];
        let (grid, block) = gpu::launch_dims(&st, launch).ok_or("missing value")?;
        assert_eq!(block, [1, 1, 1]);
        assert_eq!(grid, [64, 64, 1]);
        Ok(())
    }
}
