//! `mpi-overlap-halos` — license the distributed executor to overlap halo
//! exchange with interior computation (the standard optimisation for
//! halo-exchange codes; cf. PSyclone's overlap schedules and the Open Earth
//! Compiler's distributed lowering).
//!
//! The pass runs after `dmp-to-mpi`, while the nests are still
//! `stencil.apply` ops. It does not reorder the blocking IR — `dmp-to-mpi`
//! already posts receives before sends, and the `mpi.waitall` stays ahead of
//! the nest as the conservative literal semantics. Instead it *proves* the
//! interior/boundary split legal and stamps a [`HALO_SCHEDULE_ATTR`] on each
//! apply, which `stencil-to-scf` carries onto the generated loop-nest root
//! and the kernel compiler surfaces as `Nest::halo_schedule`:
//!
//! * `"overlap"` — the executor may compute the halo-independent interior
//!   while messages are in flight and finish the boundary shells after
//!   `waitall` (post-recv → post-send → interior → waitall → boundary).
//! * `"blocking"` — the split is legal but overlap was disabled
//!   (`mpi-overlap-halos{enabled=false}`): recv everything, then compute.
//!
//! The proof obligation: every access must have nonzero offsets in **at
//! most one decomposed dimension** (a "star" stencil with respect to the
//! decomposition). Then face messages alone carry every remote dependency —
//! no corner/diagonal halo cells exist — so a cell whose decomposed
//! coordinates sit at least `halo` away from the owned-block edge reads only
//! owned cells, and the iteration space splits exactly into a
//! halo-independent interior plus boundary shells. Applies that fail the
//! check get no attribute and the dispatcher keeps the modeled cost path.

use crate::dmp_lowering::DECOMPOSITION_ATTR;
use fsc_dialects::{mpi, stencil};
use fsc_ir::pass::PassOptions;
use fsc_ir::walk::collect_ops_named;
use fsc_ir::{Attribute, Module, Pass, PassResult, Result};

/// Attribute naming the halo schedule the executor may use for a nest:
/// `"overlap"` or `"blocking"`. Carried from `stencil.apply` through
/// `stencil-to-scf` onto the loop-nest root.
pub const HALO_SCHEDULE_ATTR: &str = "halo_schedule";

/// `mpi-overlap-halos`: prove the interior/boundary split safe and pick the
/// halo schedule. `enabled=false` keeps the blocking schedule but still
/// attests the (legal) split, so ablations compare like with like.
#[derive(Debug, Clone, Copy)]
pub struct OverlapHalos {
    /// Whether overlapped execution is requested (default on).
    pub enabled: bool,
}

impl Default for OverlapHalos {
    fn default() -> Self {
        Self { enabled: true }
    }
}

impl OverlapHalos {
    /// From pipeline options (`enabled=true|false`).
    pub fn from_options(opts: &PassOptions) -> Self {
        Self {
            enabled: opts.get_bool("enabled").unwrap_or(true),
        }
    }
}

impl Pass for OverlapHalos {
    fn name(&self) -> &str {
        "mpi-overlap-halos"
    }

    fn run(&self, module: &mut Module) -> Result<PassResult> {
        // Without lowered exchanges there is nothing to schedule.
        if collect_ops_named(module, mpi::ISEND).is_empty() {
            return Ok(PassResult::Unchanged);
        }
        // The decomposition arity decides which dims can hold remote cells.
        let glen = module
            .top_level_ops_named(fsc_dialects::func::FUNC)
            .iter()
            .find_map(|&f| module.op(f).attr(DECOMPOSITION_ATTR)?.as_index_list())
            .map(<[i64]>::len)
            .unwrap_or(0);
        if glen == 0 {
            return Ok(PassResult::Unchanged);
        }
        let schedule = if self.enabled { "overlap" } else { "blocking" };
        let mut changed = false;
        for apply_op in collect_ops_named(module, stencil::APPLY) {
            let apply = stencil::ApplyOp(apply_op);
            let rank = apply.output_bounds(module).len();
            let from = rank.saturating_sub(glen);
            let star =
                module.block_ops(apply.body(module)).iter().all(
                    |&op| match stencil::access_offset(module, op) {
                        Some(offs) => offs[from..].iter().filter(|&&o| o != 0).count() <= 1,
                        None => true,
                    },
                );
            if star {
                module
                    .op_mut(apply_op)
                    .attrs
                    .insert(HALO_SCHEDULE_ATTR.into(), Attribute::string(schedule));
                changed = true;
            }
        }
        Ok(if changed {
            PassResult::Changed
        } else {
            PassResult::Unchanged
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover_stencils;
    use crate::dmp_lowering::{DmpToMpi, StencilToDmp};
    use crate::extract::extract_stencils;
    use fsc_fortran::compile_to_fir;

    fn lowered(src: &str, grid: Vec<i64>) -> Module {
        let mut m = compile_to_fir(src).unwrap();
        discover_stencils(&mut m).unwrap();
        let mut st = extract_stencils(&mut m).unwrap();
        StencilToDmp { grid }.run(&mut st).unwrap();
        DmpToMpi.run(&mut st).unwrap();
        st
    }

    const STAR: &str = "
program gs
  integer, parameter :: n = 8
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        un(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                     + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0
      end do
    end do
  end do
end program gs
";

    const DIAGONAL: &str = "
program diag
  integer, parameter :: n = 8
  integer :: i, j, k
  real(kind=8) :: u(0:n+1, 0:n+1, 0:n+1), un(0:n+1, 0:n+1, 0:n+1)
  do k = 1, n
    do j = 1, n
      do i = 1, n
        un(i, j, k) = 0.25 * (u(i, j-1, k-1) + u(i, j+1, k+1) + u(i, j, k) &
                    + u(i, j, k-1))
      end do
    end do
  end do
end program diag
";

    fn schedules(m: &Module) -> Vec<Option<String>> {
        collect_ops_named(m, stencil::APPLY)
            .into_iter()
            .map(|op| {
                m.op(op)
                    .attr(HALO_SCHEDULE_ATTR)
                    .and_then(|a| a.as_str().map(str::to_string))
            })
            .collect()
    }

    #[test]
    fn star_stencil_gets_overlap_schedule() {
        let mut st = lowered(STAR, vec![2, 2]);
        assert_eq!(
            OverlapHalos::default().run(&mut st).unwrap(),
            PassResult::Changed
        );
        assert!(schedules(&st)
            .iter()
            .all(|s| s.as_deref() == Some("overlap")));
    }

    #[test]
    fn disabled_pass_attests_blocking() {
        let mut st = lowered(STAR, vec![2, 2]);
        OverlapHalos { enabled: false }.run(&mut st).unwrap();
        assert!(schedules(&st)
            .iter()
            .all(|s| s.as_deref() == Some("blocking")));
    }

    #[test]
    fn diagonal_access_across_decomposed_dims_is_not_split() {
        let mut st = lowered(DIAGONAL, vec![2, 2]);
        OverlapHalos::default().run(&mut st).unwrap();
        assert!(schedules(&st).iter().all(Option::is_none));
    }

    #[test]
    fn diagonal_is_star_when_only_one_of_its_dims_is_decomposed() {
        // Same diagonal stencil, but a 1-D grid decomposes only dim 2: the
        // j-offset is then local and the split becomes legal again.
        let mut st = lowered(DIAGONAL, vec![2]);
        OverlapHalos::default().run(&mut st).unwrap();
        assert!(schedules(&st)
            .iter()
            .all(|s| s.as_deref() == Some("overlap")));
    }

    #[test]
    fn no_exchanges_means_unchanged() {
        let mut m = Module::new();
        assert_eq!(
            OverlapHalos::default().run(&mut m).unwrap(),
            PassResult::Unchanged
        );
    }
}
