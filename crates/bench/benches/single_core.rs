//! Criterion micro-benchmarks behind Figure 2: single-core execution of
//! both workloads on each tier at a fixed size.
//!
//! ```sh
//! cargo bench -p fsc-bench --bench single_core
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsc_baselines::cray;
use fsc_core::{CompileOptions, Compiler, Target};
use fsc_workloads::{gauss_seidel, pw_advection};

const N: usize = 24;
const ITERS: usize = 2;

fn bench_gs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_gauss_seidel");
    let source = gauss_seidel::fortran_source(N, ITERS);
    g.bench_function(BenchmarkId::new("cray", N), |b| {
        b.iter(|| cray::gs_run(N, ITERS))
    });
    let flang = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::UnoptimizedCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function(BenchmarkId::new("flang_only", N), |b| {
        b.iter(|| flang.run().unwrap())
    });
    let stencil = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function(BenchmarkId::new("stencil", N), |b| {
        b.iter(|| stencil.run().unwrap())
    });
    g.finish();
}

fn bench_pw(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_pw_advection");
    let source = pw_advection::fortran_source(N);
    let (u, v, w) = pw_advection::initial_fields(N);
    g.bench_function(BenchmarkId::new("cray", N), |b| {
        b.iter(|| cray::pw_run(&u, &v, &w))
    });
    let flang = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::UnoptimizedCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function(BenchmarkId::new("flang_only", N), |b| {
        b.iter(|| flang.run().unwrap())
    });
    let stencil = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function(BenchmarkId::new("stencil", N), |b| {
        b.iter(|| stencil.run().unwrap())
    });
    g.finish();
}

fn bench_compilation(c: &mut Criterion) {
    // Not a paper figure, but a useful regression guard: the whole
    // frontend + discovery + extraction + lowering + kernel compile.
    let mut g = c.benchmark_group("compile_pipeline");
    let source = gauss_seidel::fortran_source(16, 2);
    g.bench_function("gs_16_full_pipeline", |b| {
        b.iter(|| {
            Compiler::compile(
                &source,
                &CompileOptions {
                    target: Target::StencilCpu,
                    verify_each_pass: false,
                    ..Default::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gs, bench_pw, bench_compilation
}
criterion_main!(benches);
