//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **fusion** — PW advection with `merge_stencils_if_possible` on vs off;
//! * **tile size** — the Listing 4 GPU tiling sensitivity (modeled time);
//! * **execution tier** — the same lowered kernels through each rung of
//!   the specialization ladder (native specialized loops, superinstruction
//!   VM, generic VM), plus the naive (Flang-model) runner and the op-by-op
//!   interpreter;
//! * **halo width** — DMP exchange cost as the stencil radius grows;
//! * **distributed overlap** — real rank bodies with the halo overlap
//!   schedule on vs off (blocking).
//!
//! ```sh
//! cargo bench -p fsc-bench --bench ablations
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsc_core::{CompileOptions, Compiler, Target};
use fsc_exec::ExecPath;
use fsc_mpisim::{CostModel, ProcessGrid};
use fsc_workloads::{gauss_seidel, pw_advection};

const N: usize = 24;

fn ablation_fusion(c: &mut Criterion) {
    // Fused = the normal stencil path; unfused = the unoptimised tier's
    // discovery but with the *optimised* runner, isolating fusion itself.
    let mut g = c.benchmark_group("ablation_fusion");
    let source = pw_advection::fortran_source(N);
    let fused = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("pw_fused", |b| b.iter(|| fused.run().unwrap()));
    // Unfused: compile via the unoptimised pipeline (no merge), then run
    // through the same dispatcher — kernel count differs.
    let unfused = {
        let mut fir = fsc_fortran::compile_to_fir(&source).unwrap();
        fsc_passes::pipelines::discovery_pipeline_unfused()
            .run(&mut fir)
            .unwrap();
        let mut st = fsc_passes::extract::extract_stencils(&mut fir).unwrap();
        fsc_passes::pipelines::cpu_pipeline()
            .unwrap()
            .run(&mut st)
            .unwrap();
        let mut kernels = std::collections::HashMap::new();
        for f in st.top_level_ops_named("func.func") {
            let name = fsc_dialects::func::FuncOp(f).name(&st);
            if name.starts_with("stencil_region_") {
                kernels.insert(
                    name.clone(),
                    fsc_exec::kernel::compile_kernel(&st, &name).unwrap(),
                );
            }
        }
        (fir, kernels)
    };
    g.bench_function("pw_unfused", |b| {
        b.iter(|| {
            use fsc_exec::interp::Interpreter;
            let dispatcher = fsc_core::KernelDispatcher::new(&unfused.1, &Target::StencilCpu);
            let mut interp = Interpreter::new(&unfused.0, dispatcher);
            interp.run_func("pw_advection", vec![]).unwrap();
        })
    });
    g.finish();
}

fn ablation_tiling(c: &mut Criterion) {
    // The GPU tile-size sensitivity of Listing 4: same kernel, different
    // thread-block shapes, modeled V100 time (reported as ns so criterion
    // has something to measure, the interesting output is printed once).
    let mut g = c.benchmark_group("ablation_gpu_tiling");
    let source = pw_advection::fortran_source(N);
    for tile in [[32i64, 32, 1], [16, 16, 1], [4, 4, 1], [1, 1, 1]] {
        let label = format!("{}x{}x{}", tile[0], tile[1], tile[2]);
        let compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target: Target::StencilGpu {
                    explicit_data: true,
                    tile,
                },
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        let exec = compiled.run().unwrap();
        println!(
            "tile {label}: modeled {:.6}s on the V100",
            exec.report.gpu_seconds.unwrap()
        );
        g.bench_function(BenchmarkId::new("compile_and_model", label), |b| {
            b.iter(|| compiled.run().unwrap())
        });
    }
    g.finish();
}

fn ablation_cpu_tiling(c: &mut Criterion) {
    // CPU cache-blocking sensitivity: the same OpenMP-lowered Gauss–Seidel
    // kernels forced through a sweep of execution plans (the candidate
    // space the autotuner searches, plus a pathological one).
    use fsc_exec::plan::ExecPlan;
    use fsc_workloads::gauss_seidel;
    let mut g = c.benchmark_group("ablation_cpu_tiling");
    let source = gauss_seidel::fortran_source(N, 2);
    let plans = [
        ("unblocked", ExecPlan::default()),
        (
            "unblocked_u4",
            ExecPlan {
                unroll: 4,
                ..ExecPlan::default()
            },
        ),
        (
            "serial_slab_u4",
            ExecPlan {
                unroll: 4,
                slabs: 1,
                ..ExecPlan::default()
            },
        ),
        ("blocked_16", ExecPlan::from_ir_tiles(vec![0, 16, 16])),
        ("blocked_1x1x1", ExecPlan::from_ir_tiles(vec![1, 1, 1])),
    ];
    for (label, plan) in plans {
        let mut compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target: Target::StencilOpenMp { threads: 8 },
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        for kernel in compiled.kernels.values_mut() {
            kernel.force_plan(&plan);
        }
        g.bench_function(BenchmarkId::new("gs", label), |b| {
            b.iter(|| compiled.run().unwrap())
        });
    }
    g.finish();
}

fn ablation_exec_tier(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_exec_tier");
    let source = pw_advection::fortran_source(N);
    // The stencil tier's own specialization ladder: native loops vs the
    // superinstruction VM vs the generic VM, all on the same compiled
    // kernels (forced per nest, so the gap is pure dispatch cost).
    for path in [
        ExecPath::Specialized,
        ExecPath::FusedVm,
        ExecPath::GenericVm,
    ] {
        let mut compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target: Target::StencilCpu,
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        for kernel in compiled.kernels.values_mut() {
            kernel.force_exec_path(path);
        }
        g.bench_function(BenchmarkId::new("pw", path.to_string()), |b| {
            b.iter(|| compiled.run().unwrap())
        });
    }
    for (label, target) in [
        ("naive", Target::UnoptimizedCpu),
        ("interpreter", Target::FlangOnly),
    ] {
        let compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target,
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("pw", label), |b| {
            b.iter(|| compiled.run().unwrap())
        });
    }
    g.finish();
}

fn ablation_halo(c: &mut Criterion) {
    // Communication model cost vs halo width (not wall-clock-interesting,
    // but records the series the DMP design section discusses).
    let cost = CostModel::default();
    let grid = ProcessGrid::new(vec![128, 8]);
    for width in [1u64, 2, 4] {
        let t = cost.halo_exchange_time(512 * 512 * 8 * width, 4, cost.offnode_fraction(&grid));
        println!("halo width {width}: modeled exchange {t:.6}s");
    }
    let mut g = c.benchmark_group("ablation_halo_model");
    g.bench_function("exchange_time_eval", |b| {
        b.iter(|| cost.halo_exchange_time(512 * 512 * 8, 4, 0.5))
    });
    g.finish();
}

fn ablation_distributed_overlap(c: &mut Criterion) {
    // Real distributed execution on the MPI micro-sim: the same compiled
    // kernels on a 2x2 process grid, with `mpi-overlap-halos` on
    // (interior computed while faces are in flight) vs off (receive
    // everything, then compute). The gap is the hidden halo latency.
    let mut g = c.benchmark_group("distributed_overlap");
    let source = gauss_seidel::fortran_source(16, 2);
    for (label, overlap) in [("blocking", false), ("overlapped", true)] {
        let compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target: Target::StencilDistributed { grid: vec![2, 2] },
                verify_each_pass: false,
                overlap_halos: overlap,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("gs", label), |b| {
            b.iter(|| compiled.run().unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_fusion, ablation_tiling, ablation_cpu_tiling, ablation_exec_tier, ablation_halo, ablation_distributed_overlap
}
criterion_main!(benches);
