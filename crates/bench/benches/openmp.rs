//! Criterion benchmarks behind Figures 3–4: multithreaded execution of the
//! auto-parallelised stencil path vs the hand-written rayon baselines.
//! (On this single-core build machine rayon time-shares; the figures'
//! scaling series additionally use the documented node model.)
//!
//! ```sh
//! cargo bench -p fsc-bench --bench openmp
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsc_baselines::openmp as hand;
use fsc_core::{CompileOptions, Compiler, Target};
use fsc_workloads::{gauss_seidel, pw_advection};

const N: usize = 24;
const ITERS: usize = 2;

fn bench_gs_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_gs_openmp");
    for threads in [1u32, 2, 4] {
        let source = gauss_seidel::fortran_source(N, ITERS);
        let compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target: Target::StencilOpenMp { threads },
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("stencil_auto", threads), |b| {
            b.iter(|| compiled.run().unwrap())
        });
        g.bench_function(BenchmarkId::new("hand_openmp", threads), |b| {
            b.iter(|| hand::gs_run(N, ITERS, threads as usize))
        });
    }
    g.finish();
}

fn bench_pw_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_pw_openmp");
    let (u, v, w) = pw_advection::initial_fields(N);
    for threads in [1u32, 4] {
        let source = pw_advection::fortran_source(N);
        let compiled = Compiler::compile(
            &source,
            &CompileOptions {
                target: Target::StencilOpenMp { threads },
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_function(BenchmarkId::new("stencil_auto", threads), |b| {
            b.iter(|| compiled.run().unwrap())
        });
        let pool = hand::pool(threads as usize);
        g.bench_function(BenchmarkId::new("hand_openmp", threads), |b| {
            b.iter(|| hand::pw_run(&u, &v, &w, &pool))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gs_threads, bench_pw_threads
}
criterion_main!(benches);
