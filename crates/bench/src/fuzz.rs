//! Deterministic program generators for the differential fuzzing harness.
//!
//! Three generators, all driven by a seedable xorshift PRNG (no external
//! dependency, bit-reproducible across runs):
//!
//! * [`gen_program`] — random but *valid* 1-D/2-D stencil programs in the
//!   frontend's Fortran subset, with "nice" dyadic coefficients so every
//!   execution tier is bit-comparable;
//! * [`mutate_source`] — malformed variants of a valid program (token
//!   swaps, truncation, garbage injection): the frontend must reject them
//!   with coded diagnostics, never a panic;
//! * [`gen_garbage_ir`] — byte soup and near-miss textual IR for the
//!   `fsc_ir::parse` round-trip parser: same contract, located errors or
//!   success, never a panic.
//!
//! The harness itself lives in `src/bin/fuzz_diff.rs`.

/// xorshift64* — tiny, seedable, good enough for structural fuzzing.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed the generator; seed 0 is remapped (xorshift fixpoint).
    pub fn new(seed: u64) -> Self {
        Self(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }

    /// Coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A generated test program plus what to compare after running it.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Fortran source text.
    pub source: String,
    /// Name of the output array to diff across tiers.
    pub output: String,
    /// Grid size used (for reporting).
    pub n: usize,
}

fn offset_expr(base: &str, off: i64) -> String {
    match off.cmp(&0) {
        std::cmp::Ordering::Less => format!("{base}-{}", -off),
        std::cmp::Ordering::Equal => base.to_string(),
        std::cmp::Ordering::Greater => format!("{base}+{off}"),
    }
}

/// Random valid stencil program. Coefficients are multiples of 1/8 so all
/// tiers (which share evaluation order) agree bitwise; offsets are bounded
/// by the declared halo; grid sizes deliberately include degenerate 0- and
/// 1-cell interiors.
pub fn gen_program(rng: &mut Rng) -> FuzzCase {
    // Bias towards small grids where bound arithmetic edge cases live, but
    // keep degenerate interiors in rotation.
    let n = match rng.below(10) {
        0 => 0,
        1 => 1,
        _ => 2 + rng.below(9),
    };
    let dims = if rng.flip() { 1 } else { 2 };
    let nterms = 1 + rng.below(4);
    let mut halo = 1i64;
    let mut terms = Vec::with_capacity(nterms);
    for _ in 0..nterms {
        let c = rng.range_i64(-8, 8) as f64 * 0.125;
        let di = rng.range_i64(-2, 2);
        let dj = if dims == 2 { rng.range_i64(-2, 2) } else { 0 };
        halo = halo.max(di.abs()).max(dj.abs());
        terms.push((c, di, dj));
    }
    let lo = -halo;
    let hi = n as i64 + halo;
    let source = if dims == 1 {
        let expr = terms
            .iter()
            .map(|(c, di, _)| format!("{c} * a({})", offset_expr("i", *di)))
            .collect::<Vec<_>>()
            .join(" + ");
        format!(
            "program fz1
  implicit none
  integer, parameter :: n = {n}
  integer :: i
  real(kind=8) :: a({lo}:{hi}), r({lo}:{hi})
  do i = {lo}, {hi}
    a(i) = 0.0625 * i * i - 0.25 * i
    r(i) = 0.0
  end do
  do i = 1, n
    r(i) = {expr}
  end do
end program fz1
"
        )
    } else {
        let expr = terms
            .iter()
            .map(|(c, di, dj)| {
                format!(
                    "{c} * a({}, {})",
                    offset_expr("i", *di),
                    offset_expr("j", *dj)
                )
            })
            .collect::<Vec<_>>()
            .join(" + ");
        format!(
            "program fz2
  implicit none
  integer, parameter :: n = {n}
  integer :: i, j
  real(kind=8) :: a({lo}:{hi}, {lo}:{hi}), r({lo}:{hi}, {lo}:{hi})
  do j = {lo}, {hi}
    do i = {lo}, {hi}
      a(i, j) = 0.0625 * i * j + 0.125 * i - 0.25 * j
      r(i, j) = 0.0
    end do
  end do
  do j = 1, n
    do i = 1, n
      r(i, j) = {expr}
    end do
  end do
end program fz2
"
        )
    };
    FuzzCase {
        source,
        output: "r".to_string(),
        n,
    }
}

/// Break a valid program: the result must be *rejected with diagnostics or
/// still valid* — the frontend must never panic on it.
pub fn mutate_source(rng: &mut Rng, source: &str) -> String {
    let mut lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
    match rng.below(6) {
        // Drop a random line (unbalanced do/end, missing decl, ...).
        0 => {
            let i = rng.below(lines.len());
            lines.remove(i);
        }
        // Truncate mid-program.
        1 => {
            let keep = 1 + rng.below(lines.len());
            lines.truncate(keep);
        }
        // Inject a garbage statement.
        2 => {
            let i = rng.below(lines.len());
            let junk = [
                "do i =",
                "r( = 3",
                "integer ::",
                "call (",
                "x = * 2",
                ") end do",
            ];
            lines.insert(i, junk[rng.below(junk.len())].to_string());
        }
        // Corrupt one character of a random non-empty line.
        3 => {
            let i = rng.below(lines.len());
            if !lines[i].is_empty() {
                let bytes = lines[i].as_bytes().to_vec();
                let p = rng.below(bytes.len());
                let mut bytes = bytes;
                bytes[p] = b"(),*=!@$%"[rng.below(9)];
                lines[i] = String::from_utf8_lossy(&bytes).into_owned();
            }
        }
        // Rename one identifier occurrence (use-before-decl / unknown sym).
        4 => {
            let i = rng.below(lines.len());
            lines[i] = lines[i].replacen('a', "zz_undeclared", 1);
        }
        // Duplicate a line (double decl, double end, ...).
        _ => {
            let i = rng.below(lines.len());
            let dup = lines[i].clone();
            lines.insert(i, dup);
        }
    }
    lines.join("\n")
}

/// Garbage input for the textual IR parser: either pure byte soup or a
/// near-miss mutation of a plausible module so the recursive-descent error
/// paths all get exercised.
pub fn gen_garbage_ir(rng: &mut Rng) -> String {
    const PLAUSIBLE: &str = r#"builtin.module {
  func.func @f(%arg0: !fir.ref<!fir.array<8xf64>>) {
    %c1 = arith.constant 1 : index
    %0 = fir.coordinate_of %arg0, %c1 : (!fir.ref<!fir.array<8xf64>>, index) -> !fir.ref<f64>
    %1 = fir.load %0 : !fir.ref<f64>
    func.return
  }
}
"#;
    if rng.below(3) == 0 {
        // Pure soup: printable ASCII with IR-ish punctuation mixed in.
        let len = 8 + rng.below(200);
        let alphabet = b"%@!(){}<>:=,. abcdefXYZ0123\"\n";
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())] as char)
            .collect()
    } else {
        mutate_source(rng, PLAUSIBLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn generated_programs_are_valid() {
        let mut rng = Rng::new(42);
        for _ in 0..50 {
            let case = gen_program(&mut rng);
            fsc_fortran::compile_to_fir(&case.source).unwrap_or_else(|e| {
                panic!("generated program must compile:\n{}\n{e}", case.source)
            });
        }
    }

    #[test]
    fn mutations_never_panic_the_frontend() {
        let mut rng = Rng::new(43);
        for _ in 0..100 {
            let case = gen_program(&mut rng);
            let bad = mutate_source(&mut rng, &case.source);
            // Err or Ok both fine; a panic would fail the test.
            let _ = fsc_fortran::compile_to_fir(&bad);
        }
    }

    #[test]
    fn garbage_ir_never_panics_the_parser() {
        let mut rng = Rng::new(44);
        for _ in 0..100 {
            let text = gen_garbage_ir(&mut rng);
            let _ = fsc_ir::parse::parse_module(&text);
        }
    }
}
