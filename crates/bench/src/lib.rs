//! # fsc-bench — harnesses regenerating every figure of the paper
//!
//! One binary per figure (`fig2` … `fig6`), each printing the same series
//! the paper plots, plus criterion micro-benchmarks and ablations. Shared
//! here: wall-clock measurement helpers, throughput formatting, and the
//! ARCHER2 thread-scaling model used where this machine cannot supply the
//! hardware (the build environment exposes a single CPU core, so Figures
//! 3–4 combine *measured single-core rates* with a roofline thread model —
//! documented in EXPERIMENTS.md).

use std::time::{Duration, Instant};

pub mod figures;
pub mod fuzz;

/// Best-of-`reps` wall time of `f`.
pub fn measure<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed();
        if dt < best {
            best = dt;
        }
        last = Some(out);
    }
    (best, last.unwrap())
}

/// Million cells per second.
pub fn mcells_per_sec(cells: u64, seconds: f64) -> f64 {
    cells as f64 / seconds / 1e6
}

/// One row of a figure's series.
#[derive(Debug, Clone)]
pub struct Row {
    /// Series label ("Cray", "Flang only", "Stencil", ...).
    pub series: String,
    /// X value (problem size, thread count, node count).
    pub x: String,
    /// Throughput in MCells/s.
    pub mcells: f64,
}

impl Row {
    /// Convenience constructor.
    pub fn new(series: impl Into<String>, x: impl std::fmt::Display, mcells: f64) -> Self {
        Self {
            series: series.into(),
            x: x.to_string(),
            mcells,
        }
    }
}

/// Print rows as an aligned table.
pub fn print_rows(title: &str, x_label: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!("{:<36} {:>12} {:>14}", "series", x_label, "MCells/s");
    for r in rows {
        println!("{:<36} {:>12} {:>14.1}", r.series, r.x, r.mcells);
    }
}

/// ARCHER2-node thread-scaling model: combines a measured single-core rate
/// with a memory-bandwidth roofline and parallel-region overheads.
///
/// * one node = 2×64-core AMD Rome, 8 NUMA regions;
/// * aggregate STREAM-class bandwidth ≈ 190 GB/s, saturated once ~4 threads
///   per NUMA region are active (32 total);
/// * each parallel region pays a fork/join-style overhead growing with the
///   team size — larger for an OpenMP runtime that forks per region (the
///   hand-written baselines) than for a persistent worker pool (the
///   automatic path).
#[derive(Debug, Clone, Copy)]
pub struct ThreadScalingModel {
    /// Aggregate node memory bandwidth (B/s).
    pub node_bw: f64,
    /// Threads needed to saturate the node bandwidth.
    pub bw_saturation_threads: f64,
    /// Fixed per-parallel-region overhead (s).
    pub region_overhead: f64,
    /// Additional per-thread region overhead (s).
    pub region_overhead_per_thread: f64,
}

impl ThreadScalingModel {
    /// The hand-written OpenMP baselines (fork/join per region).
    pub fn openmp_runtime() -> Self {
        Self {
            node_bw: 190e9,
            bw_saturation_threads: 32.0,
            region_overhead: 4e-6,
            region_overhead_per_thread: 0.12e-6,
        }
    }

    /// The automatic path's persistent pool.
    pub fn persistent_pool() -> Self {
        Self {
            node_bw: 190e9,
            bw_saturation_threads: 32.0,
            region_overhead: 1.2e-6,
            region_overhead_per_thread: 0.03e-6,
        }
    }

    /// Seconds for one sweep of a workload at `threads`, given the measured
    /// single-thread time and the sweep's DRAM traffic. `bw_efficiency`
    /// de-rates the achievable bandwidth per implementation: code with
    /// poorly vectorised inner loops (fewer outstanding loads, no
    /// prefetch-friendly streams) reaches only a fraction of STREAM — the
    /// reason the paper's curves flatten at different heights.
    pub fn sweep_time(
        &self,
        threads: u32,
        serial_seconds: f64,
        bytes_moved: u64,
        regions: u32,
        bw_efficiency: f64,
    ) -> f64 {
        let t = threads.max(1) as f64;
        let compute = serial_seconds / t;
        let bw = self.node_bw
            * bw_efficiency.clamp(0.05, 1.0)
            * (t / self.bw_saturation_threads).min(1.0);
        let memory = bytes_moved as f64 / bw;
        compute.max(memory)
            + regions as f64 * (self.region_overhead + self.region_overhead_per_thread * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_result() {
        let (d, v) = measure(3, || 41 + 1);
        assert_eq!(v, 42);
        let _ = d;
    }

    #[test]
    fn scaling_model_monotone_then_floors() {
        let m = ThreadScalingModel::openmp_runtime();
        let t1 = m.sweep_time(1, 1.0, 6_400_000_000, 1, 1.0);
        let t16 = m.sweep_time(16, 1.0, 6_400_000_000, 1, 1.0);
        let t64 = m.sweep_time(64, 1.0, 6_400_000_000, 1, 1.0);
        let t128 = m.sweep_time(128, 1.0, 6_400_000_000, 1, 1.0);
        assert!(t16 < t1);
        assert!(t64 <= t16);
        // Memory floor: 6.4 GB / 190 GB/s ≈ 34 ms.
        assert!(t128 >= 6_400_000_000f64 / 190e9 * 0.99);
        assert!((t128 - t64).abs() / t64 < 0.3);
    }

    #[test]
    fn persistent_pool_has_lower_overheads() {
        let omp = ThreadScalingModel::openmp_runtime();
        let pool = ThreadScalingModel::persistent_pool();
        let t_omp = omp.sweep_time(128, 1e-5, 1000, 2, 1.0);
        let t_pool = pool.sweep_time(128, 1e-5, 1000, 2, 1.0);
        assert!(t_pool < t_omp);
    }

    #[test]
    fn mcells_formatting() {
        assert!((mcells_per_sec(1_000_000, 1.0) - 1.0).abs() < 1e-12);
        assert!((mcells_per_sec(2_100_000_000, 0.5) - 4200.0).abs() < 1e-9);
    }
}
