//! Series generators for every figure in the paper's evaluation (§4).
//!
//! Each function returns [`Row`]s so the `fig*` binaries, the tests and the
//! EXPERIMENTS.md generator all share one implementation. Measured numbers
//! come from real wall clocks on this machine; modeled numbers (GPU,
//! multi-core thread scaling, multi-node runs) come from the documented
//! analytic models — see EXPERIMENTS.md for the paper-vs-measured record.

use fsc_baselines::{cray, mpi as hand_mpi, openacc};
use fsc_core::{CompileOptions, Compiler, Execution, Target};
use fsc_exec::ExecPath;
use fsc_gpusim::V100Model;
use fsc_mpisim::fault::{FaultPlan, FaultStats};
use fsc_mpisim::resilient::ResilientConfig;
use fsc_mpisim::{CostModel, ProcessGrid};
use fsc_workloads::{gauss_seidel, pw_advection};

use crate::{mcells_per_sec, measure, Row, ThreadScalingModel};

fn compile_target(source: &str, target: Target) -> fsc_core::Compiled {
    Compiler::compile(
        source,
        &CompileOptions {
            target,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("benchmark compile failed")
}

fn run_target(source: &str, target: Target) -> Execution {
    Compiler::run(
        source,
        &CompileOptions {
            target,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("benchmark run failed")
}

/// Compile once, then measure execution wall time only (compilation is not
/// part of what the paper's figures time).
fn measure_runs(source: &str, target: Target, reps: usize) -> (f64, Execution) {
    let compiled = compile_target(source, target);
    let (t, exec) = measure(reps, || compiled.run().expect("benchmark run failed"));
    (t.as_secs_f64(), exec)
}

/// Measured single-core seconds per *compute sweep* for one implementation
/// of Gauss–Seidel at interior size `n` (used by both Figure 2 and the
/// thread models of Figure 3).
pub struct GsSingleCore {
    /// "Cray" native kernel.
    pub cray: f64,
    /// "Flang only" (unoptimised compiled code).
    pub flang: f64,
    /// Stencil-flow compiled kernel.
    pub stencil: f64,
}

/// Measure Gauss–Seidel single-core sweep times.
pub fn gs_single_core(n: usize, iters: usize, reps: usize) -> GsSingleCore {
    let cells = (n as u64).pow(3) * iters as u64;
    let _ = cells;
    let source = gauss_seidel::fortran_source(n, iters);
    let (cray_t, _) = measure(reps, || cray::gs_run(n, iters));
    let (flang_t, _) = measure_runs(&source, Target::UnoptimizedCpu, reps);
    let (stencil_t, _) = measure_runs(&source, Target::StencilCpu, reps);
    GsSingleCore {
        cray: cray_t.as_secs_f64() / iters as f64,
        flang: flang_t / iters as f64,
        stencil: stencil_t / iters as f64,
    }
}

/// Measured single-core seconds per PW advection kernel invocation.
pub struct PwSingleCore {
    /// "Cray" native kernel.
    pub cray: f64,
    /// "Flang only".
    pub flang: f64,
    /// Stencil flow.
    pub stencil: f64,
}

/// Measure PW advection single-core kernel times.
pub fn pw_single_core(n: usize, reps: usize) -> PwSingleCore {
    let source = pw_advection::fortran_source(n);
    let (u, v, w) = pw_advection::initial_fields(n);
    let (cray_t, _) = measure(reps, || cray::pw_run(&u, &v, &w));
    let (flang_t, _) = measure_runs(&source, Target::UnoptimizedCpu, reps);
    let (stencil_t, _) = measure_runs(&source, Target::StencilCpu, reps);
    PwSingleCore {
        cray: cray_t.as_secs_f64(),
        flang: flang_t,
        stencil: stencil_t,
    }
}

/// Figure 2: single-core throughput for both benchmarks across problem
/// sizes, {Cray, Flang only, Stencil}. `interp_size` optionally adds the
/// op-by-op FIR interpreter as an extra series at one (small) size.
pub fn fig2(sizes: &[usize], gs_iters: usize, reps: usize, interp_size: Option<usize>) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let cells = (n as u64).pow(3);
        let gs = gs_single_core(n, gs_iters, reps);
        rows.push(Row::new(
            "GS / Cray",
            format!("{n}^3"),
            mcells_per_sec(cells, gs.cray),
        ));
        rows.push(Row::new(
            "GS / Flang only",
            format!("{n}^3"),
            mcells_per_sec(cells, gs.flang),
        ));
        rows.push(Row::new(
            "GS / Stencil",
            format!("{n}^3"),
            mcells_per_sec(cells, gs.stencil),
        ));
        let pw = pw_single_core(n, reps);
        rows.push(Row::new(
            "PW / Cray",
            format!("{n}^3"),
            mcells_per_sec(cells, pw.cray),
        ));
        rows.push(Row::new(
            "PW / Flang only",
            format!("{n}^3"),
            mcells_per_sec(cells, pw.flang),
        ));
        rows.push(Row::new(
            "PW / Stencil",
            format!("{n}^3"),
            mcells_per_sec(cells, pw.stencil),
        ));
    }
    if let Some(n) = interp_size {
        let cells = (n as u64).pow(3);
        let source = gauss_seidel::fortran_source(n, 1);
        let (t, _) = measure(1, || run_target(&source, Target::FlangOnly));
        rows.push(Row::new(
            "GS / Flang only (FIR interpreter)",
            format!("{n}^3"),
            mcells_per_sec(cells, t.as_secs_f64()),
        ));
    }
    rows
}

/// Figure 2 companion: the stencil tier's specialization ladder on PW
/// advection — the same compiled kernels forced through native specialized
/// loops, the superinstruction VM and the generic VM. Quantifies how much
/// of the Stencil series' headroom comes from eliminating per-instruction
/// dispatch. Panics if the default path is not `Specialized` for PW (the
/// figure would silently measure the wrong tier).
pub fn fig2_exec_paths(n: usize, reps: usize) -> Vec<Row> {
    let source = pw_advection::fortran_source(n);
    let cells = (n as u64).pow(3);
    let probe = run_target(&source, Target::StencilCpu);
    assert!(
        probe.report.attests(ExecPath::Specialized),
        "PW compute must take the specialized path, got {:?}",
        probe.report.exec_paths
    );
    let mut rows = Vec::new();
    for path in [
        ExecPath::Specialized,
        ExecPath::FusedVm,
        ExecPath::GenericVm,
    ] {
        let mut compiled = compile_target(&source, Target::StencilCpu);
        for kernel in compiled.kernels.values_mut() {
            kernel.force_exec_path(path);
        }
        let (t, _) = measure(reps, || compiled.run().expect("benchmark run failed"));
        rows.push(Row::new(
            format!("PW / Stencil ({path})"),
            format!("{n}^3"),
            mcells_per_sec(cells, t.as_secs_f64()),
        ));
    }
    rows
}

/// Figures 3 and 4: thread scaling on one ARCHER2 node. Single-core rates
/// are measured here; the per-thread behaviour comes from
/// [`ThreadScalingModel`] (this build machine has one core).
pub fn fig3_gs(n: usize, iters: usize, threads: &[u32], reps: usize) -> Vec<Row> {
    let single = gs_single_core(n, iters, reps);
    // Model at the paper's problem size (2.1 billion grid cells): measured
    // per-cell rates scale to paper-size serial sweeps; fork/join overheads
    // then sit in realistic proportion to the sweep time.
    const PAPER_CELLS: u64 = 2_100_000_000;
    let measured_cells = (n as f64).powi(3);
    let scale = PAPER_CELLS as f64 / measured_cells;
    // Per iteration: compute sweep (7 reads + 1 write ≈ cache-filtered to
    // ~3 DRAM accesses/cell) + copy sweep (2 accesses/cell).
    let bytes = PAPER_CELLS * (3 + 2) * 8;
    let omp = ThreadScalingModel::openmp_runtime();
    let pool = ThreadScalingModel::persistent_pool();
    let mut rows = Vec::new();
    for &t in threads {
        // Hand-written OpenMP: two parallel regions per iteration. Mature
        // vectorised code saturates the memory system; the bytecode tiers
        // reach a lower fraction of STREAM.
        let cray_t = omp.sweep_time(t, single.cray * scale, bytes, 2, 1.0);
        let flang_t = omp.sweep_time(t, single.flang * scale, bytes, 2, 0.35);
        // Automatic: one region call covering both nests on the pool.
        let stencil_t = pool.sweep_time(t, single.stencil * scale, bytes, 1, 0.65);
        rows.push(Row::new(
            "GS / Cray + hand OpenMP",
            t,
            mcells_per_sec(PAPER_CELLS, cray_t),
        ));
        rows.push(Row::new(
            "GS / Flang + hand OpenMP",
            t,
            mcells_per_sec(PAPER_CELLS, flang_t),
        ));
        rows.push(Row::new(
            "GS / Stencil (automatic)",
            t,
            mcells_per_sec(PAPER_CELLS, stencil_t),
        ));
    }
    rows
}

/// Figure 4: PW advection thread scaling.
pub fn fig4_pw(n: usize, threads: &[u32], reps: usize) -> Vec<Row> {
    let single = pw_single_core(n, reps);
    const PAPER_CELLS: u64 = 2_100_000_000;
    let measured_cells = (n as f64).powi(3);
    let scale = PAPER_CELLS as f64 / measured_cells;
    // 21 reads over three shared fields + 3 writes → ~6 DRAM accesses/cell.
    let bytes = PAPER_CELLS * 6 * 8;
    let omp = ThreadScalingModel::openmp_runtime();
    let pool = ThreadScalingModel::persistent_pool();
    let mut rows = Vec::new();
    for &t in threads {
        let cray_t = omp.sweep_time(t, single.cray * scale, bytes, 1, 1.0);
        let flang_t = omp.sweep_time(t, single.flang * scale, bytes, 1, 0.35);
        let stencil_t = pool.sweep_time(t, single.stencil * scale, bytes, 1, 0.65);
        rows.push(Row::new(
            "PW / Cray + hand OpenMP",
            t,
            mcells_per_sec(PAPER_CELLS, cray_t),
        ));
        rows.push(Row::new(
            "PW / Flang + hand OpenMP",
            t,
            mcells_per_sec(PAPER_CELLS, flang_t),
        ));
        rows.push(Row::new(
            "PW / Stencil (automatic)",
            t,
            mcells_per_sec(PAPER_CELLS, stencil_t),
        ));
    }
    rows
}

/// Figure 5: V100 throughput for both benchmarks across sizes,
/// {OpenACC/Nvidia, stencil host_register, stencil explicit}.
pub fn fig5(sizes: &[usize], iters: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let cells = (n as u64).pow(3) * iters as u64;
        // --- Gauss–Seidel (time loop inside the program) ---
        let source = gauss_seidel::fortran_source(n, iters);
        for (label, explicit) in [
            ("GS / Stencil (initial data)", false),
            ("GS / Stencil (optimised data)", true),
        ] {
            let exec = run_target(
                &source,
                Target::StencilGpu {
                    explicit_data: explicit,
                    tile: [32, 32, 1],
                },
            );
            let t = exec.report.gpu_seconds.unwrap();
            rows.push(Row::new(label, format!("{n}^3"), mcells_per_sec(cells, t)));
        }
        let acc = openacc::gs_run(n, iters, V100Model::default());
        rows.push(Row::new(
            "GS / OpenACC with Nvidia",
            format!("{n}^3"),
            mcells_per_sec(cells, acc.modeled_seconds),
        ));

        // --- PW advection (kernel launched repeatedly) ---
        let source = pw_advection::fortran_source_repeated(n, iters);
        for (label, explicit) in [
            ("PW / Stencil (initial data)", false),
            ("PW / Stencil (optimised data)", true),
        ] {
            let exec = run_target(
                &source,
                Target::StencilGpu {
                    explicit_data: explicit,
                    tile: [32, 32, 1],
                },
            );
            let t = exec.report.gpu_seconds.unwrap();
            rows.push(Row::new(label, format!("{n}^3"), mcells_per_sec(cells, t)));
        }
        let acc = openacc::pw_run(n, iters, V100Model::default());
        rows.push(Row::new(
            "PW / OpenACC with Nvidia",
            format!("{n}^3"),
            mcells_per_sec(cells, acc.modeled_seconds),
        ));
    }
    rows
}

/// Figure 6: distributed Gauss–Seidel strong scaling across ARCHER2 nodes
/// (128 ranks/node), hand MPI vs automatic DMP lowering.
///
/// Per-rank compute rates are *measured* here (Cray kernel for the hand
/// version, the stencil kernel for the automatic one); communication per
/// iteration comes from the Slingshot cost model, with the automatic path's
/// exchange count taken from its own compiled kernel (the immature DMP
/// lowering swaps every input field of every apply — twice the messages of
/// the hand version, which is the paper's "scales less well" effect).
pub fn fig6(nodes: &[i64], measure_n: usize, global_n: u64) -> Vec<Row> {
    // Measured per-cell rates.
    let gs = gs_single_core(measure_n, 2, 2);
    let per_cell_hand = gs.cray / (measure_n as f64).powi(3);
    let per_cell_auto = gs.stencil / (measure_n as f64).powi(3);

    // Exchange count of the compiled distributed kernel.
    let source = gauss_seidel::fortran_source(measure_n, 1);
    let compiled = Compiler::compile(
        &source,
        &CompileOptions {
            target: Target::StencilDistributed { grid: vec![2, 2] },
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("compile distributed");
    let auto_exchange_phases: usize = compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .filter(|nest| !nest.exchanges.is_empty())
        .count()
        .max(1);

    let cost = CostModel::default();
    let cells = global_n.pow(3);
    let mut rows = Vec::new();
    for &nn in nodes {
        let ranks = nn * 128;
        let grid = ProcessGrid::new(vec![128, nn]);
        let hand_t = hand_mpi::modeled_iteration_time(global_n, &grid, &cost, per_cell_hand);
        // The automatic path: slower per-cell rate and more exchange phases.
        let auto_base = hand_mpi::modeled_iteration_time(global_n, &grid, &cost, per_cell_auto);
        let one_comm = auto_base - cells as f64 / ranks as f64 * per_cell_auto;
        let auto_t = auto_base + one_comm * (auto_exchange_phases as f64 - 1.0);
        rows.push(Row::new(
            "GS / hand parallelised (Cray)",
            nn,
            mcells_per_sec(cells, hand_t),
        ));
        rows.push(Row::new(
            "GS / stencil automatic (DMP→MPI)",
            nn,
            mcells_per_sec(cells, auto_t),
        ));
    }
    rows
}

/// One row of the Figure-5-style CPU tiling ablation.
#[derive(Debug)]
pub struct TileSweepRow {
    /// Configuration label ("default", "tuned", "worst-case").
    pub label: &'static str,
    /// The plans that actually executed, as attested by the run report.
    pub plans: String,
    /// Measured wall seconds (best of reps).
    pub seconds: f64,
    /// Throughput in MCells/s.
    pub mcells: f64,
}

fn tile_sweep_row(
    label: &'static str,
    compiled: &fsc_core::Compiled,
    reps: usize,
    cells: u64,
    reference: &mut Option<Vec<u64>>,
) -> TileSweepRow {
    let (t, exec) = measure(reps, || compiled.run().expect("tile-sweep run failed"));
    let bits: Vec<u64> = exec
        .array("u")
        .expect("u array")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    match reference {
        Some(r) => assert_eq!(r, &bits, "{label}: plan variant diverged bitwise"),
        None => *reference = Some(bits),
    }
    let mut plans: Vec<String> = exec.report.plans.iter().map(|p| p.describe()).collect();
    plans.dedup();
    TileSweepRow {
        label,
        plans: plans.join("; "),
        seconds: t.as_secs_f64(),
        mcells: mcells_per_sec(cells, t.as_secs_f64()),
    }
}

/// Figure-5-style ablation on the CPU: Gauss–Seidel on the OpenMP target
/// under the IR-seeded default plan, the autotuned plan and a deliberately
/// pathological plan (1×1×1 cache blocks). Every variant's final field is
/// verified bit-identical to the default's before its row is emitted, and
/// each row records the plans the run report attested.
///
/// The tuner sweeps its candidates against a private, non-persisted plan
/// cache so the ablation never reads or writes the user's `FSC_PLAN_CACHE`.
pub fn cpu_tile_sweep(n: usize, iters: usize, threads: u32, reps: usize) -> Vec<TileSweepRow> {
    use fsc_exec::autotune::TuneConfig;
    use fsc_exec::plan::ExecPlan;

    let source = gauss_seidel::fortran_source(n, iters);
    let target = Target::StencilOpenMp { threads };
    let cells = (n as u64).pow(3) * iters as u64;
    let mut reference = None;
    let mut rows = Vec::new();

    // Default: whatever plan the lowered IR seeds.
    let default = compile_target(&source, target.clone());
    rows.push(tile_sweep_row(
        "default",
        &default,
        reps,
        cells,
        &mut reference,
    ));

    // Tuned: calibration sweep at compile time, private throwaway cache.
    let tuned = Compiler::compile(
        &source,
        &CompileOptions {
            target: target.clone(),
            verify_each_pass: false,
            autotune: Some(TuneConfig {
                cache_path: Some(
                    std::env::temp_dir()
                        .join(format!("fsc-tile-sweep-{}.json", std::process::id())),
                ),
                no_persist: true,
                reps: 3,
            }),
            ..Default::default()
        },
    )
    .expect("tile-sweep autotuned compile failed");
    rows.push(tile_sweep_row("tuned", &tuned, reps, cells, &mut reference));

    // Worst case: pathological unit cache blocks on every dimension.
    let mut worst = compile_target(&source, target);
    let bad = ExecPlan::from_ir_tiles(vec![1, 1, 1]);
    for kernel in worst.kernels.values_mut() {
        kernel.force_plan(&bad);
    }
    rows.push(tile_sweep_row(
        "worst-case",
        &worst,
        reps,
        cells,
        &mut reference,
    ));
    rows
}

/// One row of the fault-tolerance ablation: a distributed Gauss–Seidel
/// configuration, its measured wall time, and the transport's attestation.
#[derive(Debug)]
pub struct FaultRow {
    /// Configuration label.
    pub label: String,
    /// Measured wall seconds (best of reps).
    pub seconds: f64,
    /// Merged fault/recovery counters (zero for the raw transport).
    pub stats: FaultStats,
}

/// Fault-tolerance ablation (the robustness experiment): measured wall time
/// of distributed Gauss–Seidel on the raw vs the resilient transport at 0%
/// faults (the protocol's overhead), under increasing drop rates, and with
/// a mid-run rank crash at several checkpoint intervals (recovery cost).
/// Every resilient run's final field is verified bit-identical to the raw
/// transport's before its row is emitted.
pub fn fault_ablation(n: usize, iters: usize, ranks: usize, reps: usize) -> Vec<FaultRow> {
    let reference = hand_mpi::gs_run(n, iters, ranks);
    let check = |out: &fsc_baselines::mpi::ResilientGsRun, label: &str| {
        assert!(
            reference
                .data
                .iter()
                .zip(&out.grid.data)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{label}: resilient result diverged from the raw transport"
        );
    };
    let mut rows = Vec::new();
    let (raw_t, _) = measure(reps, || hand_mpi::gs_run(n, iters, ranks));
    rows.push(FaultRow {
        label: "raw transport".into(),
        seconds: raw_t.as_secs_f64(),
        stats: FaultStats::default(),
    });

    let cfg = ResilientConfig::default();
    let (t, out) = measure(reps, || {
        hand_mpi::gs_run_resilient(n, iters, ranks, FaultPlan::none(3), cfg)
            .expect("fault-free resilient run")
    });
    check(&out, "0% faults");
    rows.push(FaultRow {
        label: "resilient, 0% faults".into(),
        seconds: t.as_secs_f64(),
        stats: out.stats,
    });

    for drop in [0.02, 0.05, 0.10] {
        let label = format!("resilient, {:.0}% drop", drop * 100.0);
        let (t, out) = measure(reps, || {
            hand_mpi::gs_run_resilient(n, iters, ranks, FaultPlan::lossy(7, drop), cfg)
                .expect("lossy resilient run")
        });
        check(&out, &label);
        rows.push(FaultRow {
            label,
            seconds: t.as_secs_f64(),
            stats: out.stats,
        });
    }

    // Crash one past the halfway point so it does not land on a checkpoint
    // boundary for every interval — wider spacing then has to replay more.
    let crash_at = iters / 2 + 1;
    for interval in [1usize, 2, 4] {
        let label = format!("resilient, 5% drop + crash (ckpt every {interval})");
        let plan = FaultPlan::lossy(9, 0.05).with_crash(ranks - 1, crash_at);
        let mut ccfg = cfg;
        ccfg.checkpoint_interval = interval;
        let (t, out) = measure(reps, || {
            hand_mpi::gs_run_resilient(n, iters, ranks, plan.clone(), ccfg)
                .expect("crash-recovery run")
        });
        check(&out, &label);
        assert_eq!(out.stats.restores, 1, "{label}: crash must restore once");
        rows.push(FaultRow {
            label,
            seconds: t.as_secs_f64(),
            stats: out.stats,
        });
    }
    rows
}

/// Modeled resilient-protocol overhead on the Figure 6 harness at zero
/// faults: `(nodes, plain_seconds, resilient_seconds)` per node count for
/// the hand-MPI decomposition (128 ranks/node). The overhead is the
/// steady-state ack traffic of the reliable transport; the ≤10% bound is
/// asserted by the test suite.
pub fn fig6_resilience_overhead(
    nodes: &[i64],
    global_n: u64,
    per_cell_seconds: f64,
) -> Vec<(i64, f64, f64)> {
    let cost = CostModel::default();
    nodes
        .iter()
        .map(|&nn| {
            let grid = ProcessGrid::new(vec![128, nn]);
            let plain = hand_mpi::modeled_iteration_time(global_n, &grid, &cost, per_cell_seconds);
            let resilient = hand_mpi::modeled_resilient_iteration_time(
                global_n,
                &grid,
                &cost,
                per_cell_seconds,
            );
            (nn, plain, resilient)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_holds_at_small_size() {
        let rows = fig2(&[16], 2, 2, None);
        let get = |s: &str| rows.iter().find(|r| r.series == s).unwrap().mcells;
        let gs_cray = get("GS / Cray");
        let gs_flang = get("GS / Flang only");
        let gs_stencil = get("GS / Stencil");
        assert!(gs_cray > gs_stencil, "Cray must win single-core");
        assert!(gs_stencil > gs_flang, "stencil must beat Flang-only");
        let pw_flang = get("PW / Flang only");
        let pw_stencil = get("PW / Stencil");
        assert!(pw_stencil > pw_flang);
        // The PW speedup exceeds the GS speedup (paper: ~10× vs ~2×).
        assert!(
            pw_stencil / pw_flang > gs_stencil / gs_flang * 0.8,
            "PW gain {} vs GS gain {}",
            pw_stencil / pw_flang,
            gs_stencil / gs_flang
        );
    }

    #[test]
    fn fig2_exec_path_ladder_is_ordered() {
        let rows = fig2_exec_paths(16, 2);
        let get = |s: &str| rows.iter().find(|r| r.series == s).unwrap().mcells;
        let spec = get("PW / Stencil (specialized)");
        let generic = get("PW / Stencil (generic-vm)");
        assert!(
            spec > generic,
            "native loops must beat the generic VM: {spec} vs {generic}"
        );
    }

    #[test]
    fn fig3_stencil_catches_up_at_high_threads() {
        let rows = fig3_gs(24, 2, &[1, 128], 1);
        let get = |s: &str, x: &str| {
            rows.iter()
                .find(|r| r.series == s && r.x == x)
                .unwrap()
                .mcells
        };
        let cray1 = get("GS / Cray + hand OpenMP", "1");
        let st1 = get("GS / Stencil (automatic)", "1");
        let cray128 = get("GS / Cray + hand OpenMP", "128");
        let st128 = get("GS / Stencil (automatic)", "128");
        assert!(cray1 > st1, "Cray wins at 1 thread");
        let gap1 = cray1 / st1;
        let gap128 = cray128 / st128;
        assert!(
            gap128 < gap1,
            "the gap must shrink with threads: {gap1} → {gap128}"
        );
    }

    #[test]
    fn fig5_ordering_matches_paper() {
        let rows = fig5(&[16], 4);
        let get = |s: &str| rows.iter().find(|r| r.series == s).unwrap().mcells;
        assert!(
            get("GS / Stencil (optimised data)") > get("GS / Stencil (initial data)"),
            "explicit data must beat host_register"
        );
        assert!(
            get("PW / Stencil (optimised data)") > get("PW / OpenACC with Nvidia"),
            "optimised stencil beats OpenACC on PW"
        );
    }

    /// Acceptance criterion of the autotuner: on the 48³ Gauss–Seidel
    /// OpenMP benchmark at 8 threads the tuned plan must not lose to the
    /// default (this machine exposes one core, so "beats" is asserted as
    /// "within 5% noise or better" — the default plan is always in the
    /// candidate set, so the tuner can only pick something it measured
    /// faster).
    #[test]
    fn tile_sweep_tuned_never_loses_to_default() {
        // Wall-clock comparison: under a loaded test runner (the chaos
        // suites spin many threads in parallel binaries) a single
        // measurement pair can diverge past the noise margin. A genuinely
        // losing plan loses every time; noise does not — so take the best
        // of three attempts before calling it a regression.
        let mut last = String::new();
        for _ in 0..3 {
            let rows = cpu_tile_sweep(48, 2, 8, 3);
            let get = |label: &str| rows.iter().find(|r| r.label == label).unwrap();
            let tuned = get("tuned");
            let default = get("default");
            // The report must attest where each plan came from.
            assert!(tuned.plans.contains("tuned") || tuned.plans.contains("cached"));
            assert!(default.plans.contains("default"));
            if tuned.seconds <= default.seconds * 1.05 {
                return;
            }
            last = format!(
                "tuned plan ({}, {:.3}s) vs default ({}, {:.3}s)",
                tuned.plans, tuned.seconds, default.plans, default.seconds
            );
        }
        panic!("tuned plan lost to default on all attempts: {last}");
    }

    #[test]
    fn fig6_hand_beats_auto_but_both_scale() {
        let rows = fig6(&[1, 8], 12, 512);
        let get = |s: &str, x: &str| {
            rows.iter()
                .find(|r| r.series == s && r.x == x)
                .unwrap()
                .mcells
        };
        let hand1 = get("GS / hand parallelised (Cray)", "1");
        let auto1 = get("GS / stencil automatic (DMP→MPI)", "1");
        let hand8 = get("GS / hand parallelised (Cray)", "8");
        let auto8 = get("GS / stencil automatic (DMP→MPI)", "8");
        assert!(hand1 > auto1);
        assert!(hand8 > auto8);
        assert!(hand8 > hand1, "more nodes must help");
        assert!(auto8 > auto1);
    }

    #[test]
    fn resilient_protocol_overhead_is_bounded_on_fig6_harness() {
        // Deterministic: a fixed per-cell rate, the modeled cost only.
        for &per_cell in &[1e-9, 1e-10] {
            for (nn, plain, resilient) in fig6_resilience_overhead(&[1, 8, 64], 2048, per_cell) {
                assert!(resilient > plain, "protocol must not be free");
                let overhead = (resilient - plain) / plain;
                assert!(
                    overhead <= 0.10,
                    "resilient overhead at 0% faults must stay within 10%: \
                     {:.2}% at {nn} nodes (per_cell {per_cell:e})",
                    overhead * 100.0
                );
            }
        }
    }

    #[test]
    fn fault_ablation_recovers_everywhere() {
        let rows = fault_ablation(6, 4, 2, 1);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].stats.data_msgs, 0, "raw transport has no protocol");
        assert!(rows[1].stats.data_msgs > 0);
        assert_eq!(rows[1].stats.injected(), 0);
        // Lossy rows actually injected faults and retried.
        for row in &rows[2..5] {
            assert!(row.stats.injected() > 0, "{}: nothing injected", row.label);
            assert!(row.stats.retries > 0, "{}: nothing retried", row.label);
        }
        // Crash rows all restored exactly once; tighter checkpoint spacing
        // never replays more iterations than looser spacing.
        let crash = &rows[5..];
        for row in crash {
            assert_eq!(row.stats.restores, 1, "{}", row.label);
        }
        assert!(
            crash[0].stats.replayed_iterations <= crash[2].stats.replayed_iterations,
            "ckpt-every-1 must not replay more than ckpt-every-4"
        );
    }
}
