//! Extension experiment (not a paper figure): multi-node GPU execution —
//! the paper's fifth further-work avenue, implemented. Sweeps GPU counts
//! for the Gauss–Seidel benchmark and prints modeled makespans
//! (per-device kernel+transfer time plus inter-GPU halo exchange).

use fsc_bench::{mcells_per_sec, print_rows, Row};
use fsc_core::{CompileOptions, Compiler, Target};
use fsc_workloads::gauss_seidel;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let iters = 10usize;
    let source = gauss_seidel::fortran_source(n, iters);
    let cells = (n as u64).pow(3) * iters as u64;
    let mut rows = Vec::new();
    for grid in [vec![1i64], vec![2], vec![2, 2], vec![4, 2], vec![4, 4]] {
        let gpus: i64 = grid.iter().product();
        let exec = Compiler::run(
            &source,
            &CompileOptions {
                target: Target::StencilMultiGpu {
                    grid,
                    tile: [32, 32, 1],
                },
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .expect("run");
        let total =
            exec.report.gpu_seconds.unwrap() + exec.report.distributed_seconds.unwrap_or(0.0);
        rows.push(Row::new(
            "GS / stencil multi-GPU",
            gpus,
            mcells_per_sec(cells, total),
        ));
    }
    print_rows(
        &format!("Extension: multi-node GPU Gauss-Seidel at {n}^3 (further work §6, avenue 5)"),
        "GPUs",
        &rows,
    );
    println!("\nexpected shape: device time shrinks with GPUs until halo exchange dominates");
}
