//! Figure 3: Gauss–Seidel OpenMP thread scaling on one ARCHER2 node.
//! Single-core rates measured on this machine; per-thread behaviour from
//! the documented roofline model (this host has one core).

use fsc_bench::figures::fig3_gs;
use fsc_bench::print_rows;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    let threads = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let rows = fig3_gs(n, 2, &threads, 3);
    print_rows(
        &format!("Figure 3: Gauss–Seidel OpenMP scaling (measured {n}^3 rates + node model)"),
        "threads",
        &rows,
    );
    println!("\npaper shape: all scale then flatten at the bandwidth ceiling; Cray leads, gap closes with threads");
}
