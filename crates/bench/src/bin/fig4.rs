//! Figure 4: PW advection OpenMP thread scaling on one ARCHER2 node (the
//! figure where the automatic stencil path overtakes the hand-written
//! OpenMP baselines at 64–128 threads).

use fsc_bench::figures::fig4_pw;
use fsc_bench::print_rows;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    let threads = [1u32, 2, 4, 8, 16, 32, 64, 128];
    let rows = fig4_pw(n, &threads, 3);
    print_rows(
        &format!("Figure 4: PW advection OpenMP scaling (measured {n}^3 rates + node model)"),
        "threads",
        &rows,
    );
    println!("\npaper shape: stencil closes on (and at 64/128 threads matches/overtakes) the hand-written versions");
}
