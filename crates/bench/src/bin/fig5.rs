//! Figure 5: V100 GPU throughput (log scale in the paper) for both
//! benchmarks across sizes — OpenACC/Nvidia vs the stencil flow with the
//! initial (host_register) and optimised (explicit) data strategies.

use fsc_bench::figures::fig5;
use fsc_bench::print_rows;

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes = if sizes.is_empty() {
        vec![32, 48, 64]
    } else {
        sizes
    };
    let rows = fig5(&sizes, 10);
    print_rows(
        "Figure 5: V100 throughput (modeled; kernels executed for correctness)",
        "size",
        &rows,
    );
    println!("\npaper shape: optimised-data >> host_register; optimised beats OpenACC on PW and is competitive on GS");
}
