//! Figure 8: the stitched jit tier across the whole execution ladder.
//!
//! Five workloads — the paper's Gauss–Seidel and PW advection (both fully
//! template-specializable) plus three non-template stencils (`sqrt`,
//! variable-coefficient, min/max clamp) that no hand-written template
//! accepts — measured on all four tiers at 24³ and 48³:
//!
//! * **specialized** — native hand-specialized template loops;
//! * **jit**         — template-stitched row programs (dispatch-free);
//! * **fused-vm**    — the superinstruction vector VM;
//! * **generic-vm**  — the instruction-per-op vector VM.
//!
//! Every point is verified **bit-identical** to the generic VM before it
//! is reported, and the run report must attest the tier that executed.
//! A cold-vs-warm section measures compile latency with the shared jit
//! artifact cache purged vs warm (the warm compile must attest `cached`).
//!
//! `--smoke` runs the CI gate instead: the three non-template kernels
//! must land on the jit tier by default and stay bit-identical across
//! all tiers; Gauss–Seidel forced onto the jit must stay within 1.2× of
//! the hand-specialized template; a purge/recompile cycle must attest
//! `fresh` then `cached`.
//!
//! `FSC_FORCE_EXEC_PATH=<specialized|jit|fused-vm|generic-vm>` restricts
//! the sweep to one tier (the env var is parsed *here*, in the binary —
//! the library only ever sees `CompileOptions::force_exec_path`).

use std::time::Instant;

use fsc_bench::{mcells_per_sec, print_rows, Row};
use fsc_core::{CompileOptions, Compiled, Compiler, Target};
use fsc_exec::{jit, ExecPath, JitArtifact};
use fsc_workloads::{gauss_seidel, jit_kernels, pw_advection};

const TIERS: [ExecPath; 4] = [
    ExecPath::Specialized,
    ExecPath::Jit,
    ExecPath::FusedVm,
    ExecPath::GenericVm,
];

/// One benchmark subject: name, source for a given size, result arrays,
/// and the interior cell-updates per run for throughput accounting.
struct Workload {
    name: &'static str,
    source: fn(usize) -> String,
    arrays: &'static [&'static str],
    cells: fn(usize) -> u64,
}

const ITERS: usize = 2;

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "GS",
            source: |n| gauss_seidel::fortran_source(n, ITERS),
            arrays: &["u"],
            cells: |n| (n as u64).pow(3) * ITERS as u64,
        },
        Workload {
            name: "PW",
            source: pw_advection::fortran_source,
            arrays: &["su", "sv", "sw"],
            cells: |n| (n as u64).pow(3) * 3,
        },
        Workload {
            name: "sqrt",
            source: |n| jit_kernels::sqrt_source(n, ITERS),
            arrays: &["u"],
            cells: |n| (n as u64).pow(3) * ITERS as u64,
        },
        Workload {
            name: "varcoef",
            source: |n| jit_kernels::varcoef_source(n, ITERS),
            arrays: &["u"],
            cells: |n| (n as u64).pow(3) * ITERS as u64,
        },
        Workload {
            name: "minmax",
            source: |n| jit_kernels::minmax_source(n, ITERS),
            arrays: &["u"],
            cells: |n| (n as u64).pow(3) * ITERS as u64,
        },
    ]
}

fn opts(force: Option<ExecPath>) -> CompileOptions {
    CompileOptions {
        target: Target::StencilCpu,
        verify_each_pass: false,
        force_exec_path: force,
        ..Default::default()
    }
}

/// Bit patterns of the workload's result arrays, concatenated.
fn result_bits(compiled: &mut Compiled, arrays: &[&str]) -> Vec<u64> {
    let exec = compiled.run().expect("bench run");
    arrays
        .iter()
        .flat_map(|a| {
            exec.array(a)
                .unwrap_or_else(|| panic!("array {a}"))
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Best-of-`reps` wall time for one full run.
fn best_seconds(compiled: &mut Compiled, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        compiled.run().expect("bench run");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Does any nest in the compiled program carry `path` as its tier?
fn carries(compiled: &Compiled, path: ExecPath) -> bool {
    compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .any(|nest| nest.path == path)
}

/// The distinct tiers the compiled program's nests actually carry.
fn tier_set(compiled: &Compiled) -> Vec<ExecPath> {
    let mut out: Vec<ExecPath> = compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .map(|nest| nest.path)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The jit artifact sources the compile attested, deduplicated.
fn artifact_sources(compiled: &Compiled) -> Vec<JitArtifact> {
    let mut out: Vec<JitArtifact> = compiled
        .kernels
        .values()
        .flat_map(|k| &k.nests)
        .filter_map(|nest| nest.jit_source)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The throughput sweep: every workload × tier at one size. Each tier's
/// result is bit-compared against the generic VM before it is reported.
fn sweep(n: usize, reps: usize, only: Option<ExecPath>, rows: &mut Vec<Row>) {
    for w in workloads() {
        let source = (w.source)(n);
        let mut generic =
            Compiler::compile(&source, &opts(Some(ExecPath::GenericVm))).expect("generic compile");
        let reference = result_bits(&mut generic, w.arrays);
        for tier in TIERS {
            if only.is_some_and(|p| p != tier) {
                continue;
            }
            let mut compiled =
                Compiler::compile(&source, &opts(Some(tier))).expect("forced compile");
            let got = result_bits(&mut compiled, w.arrays);
            assert_eq!(
                got, reference,
                "{} {n}^3 on {tier}: diverged bitwise from the generic VM",
                w.name
            );
            // A tier the ladder cannot provide (e.g. `specialized` for a
            // non-template nest) silently keeps the best available tier;
            // label those rows with the tier set that actually ran so the
            // figure reads honestly.
            let tiers = tier_set(&compiled);
            let label = if tiers == [tier] {
                format!("{} {}", w.name, tier)
            } else {
                let ran = tiers
                    .iter()
                    .map(ExecPath::to_string)
                    .collect::<Vec<_>>()
                    .join("+");
                format!("{} {} [ran {ran}]", w.name, tier)
            };
            let secs = best_seconds(&mut compiled, reps);
            rows.push(Row::new(label, n, mcells_per_sec((w.cells)(n), secs)));
        }
    }
}

/// Cold-vs-warm artifact-cache compile latency: purge the shared cache,
/// compile (stitches `fresh`), then recompile a renamed-but-bit-identical
/// program (content key matches → `cached`).
fn cold_warm(n: usize) {
    println!("\ncold vs warm artifact cache (compile latency, {n}^3 sources)");
    for (name, source) in [
        ("sqrt", jit_kernels::sqrt_source(n, ITERS)),
        ("varcoef", jit_kernels::varcoef_source(n, ITERS)),
        ("minmax", jit_kernels::minmax_source(n, ITERS)),
    ] {
        jit::shared_cache().purge();
        let t = Instant::now();
        let cold_c = Compiler::compile(&source, &opts(None)).expect("cold compile");
        let cold = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            artifact_sources(&cold_c).contains(&JitArtifact::Fresh),
            "{name}: cold compile after a purge must stitch a fresh artifact"
        );
        // Different session fingerprint, identical bytecode: same extents,
        // renamed program.
        let renamed = source.replace(&format!("program jit_{name}"), "program warm_probe");
        let t = Instant::now();
        let warm_c = Compiler::compile(&renamed, &opts(None)).expect("warm compile");
        let warm = t.elapsed().as_secs_f64() * 1e3;
        let sources = artifact_sources(&warm_c);
        assert!(
            sources.contains(&JitArtifact::Cached) && !sources.contains(&JitArtifact::Fresh),
            "{name}: warm recompile must reuse the cached artifact, got {sources:?}"
        );
        println!("  {name:>8}: cold {cold:>7.2} ms -> warm {warm:>7.2} ms (attested cached)");
    }
    let s = fsc_core::jit_cache_stats();
    println!(
        "  cache: {} entries / {} B, {} builds, {} hits, {} deduped, \
         codegen mean {:.3} ms (p50 {:.3}, p99 {:.3}, {} stitches)",
        s.entries,
        s.bytes,
        s.builds,
        s.hits,
        s.deduped,
        s.codegen_mean_ms,
        s.codegen_p50_ms,
        s.codegen_p99_ms,
        s.codegen_count
    );
}

/// CI gate: bit-identity everywhere, jit within 1.2× of the specialized
/// template on Gauss–Seidel, fresh→cached across a purge/recompile.
fn smoke() {
    const JIT_BUDGET: f64 = 1.2;
    let t0 = Instant::now();

    // 1) The three non-template kernels land on the jit tier by default
    //    and are bit-identical across every tier.
    for (name, source) in [
        ("sqrt", jit_kernels::sqrt_source(10, 2)),
        ("varcoef", jit_kernels::varcoef_source(10, 2)),
        ("minmax", jit_kernels::minmax_source(10, 2)),
    ] {
        let mut generic =
            Compiler::compile(&source, &opts(Some(ExecPath::GenericVm))).expect("generic compile");
        let reference = result_bits(&mut generic, &["u"]);
        let mut default = Compiler::compile(&source, &opts(None)).expect("default compile");
        assert!(
            carries(&default, ExecPath::Jit),
            "{name}: the tier ladder must pick jit for a non-template nest"
        );
        let exec = default.run().expect("default run");
        assert!(
            exec.report.attests(ExecPath::Jit),
            "{name}: report must attest the jit tier, got {:?}",
            exec.report.exec_paths
        );
        assert_eq!(
            result_bits(&mut default, &["u"]),
            reference,
            "{name}: jit diverged bitwise from the generic VM"
        );
        let mut fused =
            Compiler::compile(&source, &opts(Some(ExecPath::FusedVm))).expect("fused compile");
        assert_eq!(
            result_bits(&mut fused, &["u"]),
            reference,
            "{name}: fused VM diverged bitwise from the generic VM"
        );
    }

    // 2) Perf gate: GS forced onto the jit stays within budget of the
    //    hand-specialized template (best-of-7 to shed scheduler noise).
    let source = gauss_seidel::fortran_source(24, 10);
    let mut spec = Compiler::compile(&source, &opts(None)).expect("spec compile");
    assert!(carries(&spec, ExecPath::Specialized));
    let mut jitted = Compiler::compile(&source, &opts(Some(ExecPath::Jit))).expect("jit compile");
    assert!(carries(&jitted, ExecPath::Jit));
    assert_eq!(
        result_bits(&mut jitted, &["u"]),
        result_bits(&mut spec, &["u"]),
        "GS: jit diverged bitwise from the specialized template"
    );
    let spec_s = best_seconds(&mut spec, 7);
    let jit_s = best_seconds(&mut jitted, 7);
    let ratio = jit_s / spec_s;
    assert!(
        ratio <= JIT_BUDGET,
        "GS 24^3: jit is {ratio:.2}x the specialized template (budget {JIT_BUDGET}x): \
         {jit_s:.6}s vs {spec_s:.6}s"
    );

    // 3) Artifact-cache round trip: purge → fresh, recompile → cached.
    jit::shared_cache().purge();
    let probe = jit_kernels::sqrt_source(11, 1);
    let cold = Compiler::compile(&probe, &opts(None)).expect("cold compile");
    assert!(artifact_sources(&cold).contains(&JitArtifact::Fresh));
    let warm = Compiler::compile(
        &probe.replace("program jit_sqrt", "program warm_probe"),
        &opts(None),
    )
    .expect("warm compile");
    let sources = artifact_sources(&warm);
    assert!(
        sources.contains(&JitArtifact::Cached) && !sources.contains(&JitArtifact::Fresh),
        "warm recompile must attest cached, got {sources:?}"
    );

    println!(
        "jit smoke PASS: 3 non-template kernels on the jit tier bit-identical \
         across all tiers, GS jit at {ratio:.2}x specialized (budget {JIT_BUDGET}x), \
         fresh->cached across purge/recompile, {:.1}s wall",
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    // The *binary* owns env parsing; the library only sees the option.
    let only = std::env::var("FSC_FORCE_EXEC_PATH").ok().map(|raw| {
        ExecPath::parse(&raw).unwrap_or_else(|| {
            panic!("FSC_FORCE_EXEC_PATH={raw:?}: expected specialized|jit|fused-vm|generic-vm")
        })
    });
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let mut rows = Vec::new();
    for n in [24usize, 48] {
        sweep(n, 3, only, &mut rows);
    }
    print_rows(
        "Figure 8: execution tiers (MCells/s, higher is better)",
        "size",
        &rows,
    );
    cold_warm(24);
    println!("\nevery point verified bit-identical to the generic VM before reporting");
    println!("warm recompiles attested `cached` out of the shared artifact cache");
}
