//! Figure 7: distributed execution at thousands of *measured* virtual
//! ranks on the work-stealing cooperative scheduler.
//!
//! Four experiments, every point verified bit-identical to single-rank
//! serial and attested `measured` (never the analytic model):
//!
//! * **strong scaling** — fixed 32³ Gauss–Seidel domain, process grids
//!   from 512 to 4096 ranks;
//! * **weak scaling**   — ~64 interior cells per rank, 64 to 4096 ranks;
//! * **aggregation ablation** — a 64×64 rank grid with 64-rank nodes:
//!   hierarchical node-level aggregation coalesces the 64 same-edge halo
//!   messages of a grid row into one envelope (logical/physical ≥ 2×);
//! * **deep-halo ablation** — `halo_depth = k` exchanges a k-wide ghost
//!   band once and runs k−1 sweeps communication-free; exchange rounds
//!   drop ∝ 1/k at bit-identical results.
//!
//! `--smoke` runs the CI gate instead: 1024 virtual ranks over a small
//! forced worker pool, bit-identity, non-zero steals, wall under budget.
//!
//! `--ranks N [--workers W] [--halo-depth K]` runs one custom point:
//! N virtual ranks (power of two, ≤ 8192) over a W-worker pool. With
//! `K ≥ 2` the ranks lie on a 1-D grid (deep halos need a single
//! decomposed dimension) and N must divide the 64³ domain's slowest
//! extent.

use std::time::Instant;

use fsc_bench::{mcells_per_sec, print_rows, Row};
use fsc_core::{CompileOptions, Compiler, DistProvenance, DistributedReport, Execution, Target};
use fsc_workloads::gauss_seidel;

fn run_serial(n: usize, iters: usize) -> Execution {
    let source = gauss_seidel::fortran_source(n, iters);
    Compiler::run(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("serial run failed")
}

/// One measured distributed run: verify bit-identity against serial,
/// require `measured` provenance, return the attestation.
fn run_ranks(
    n: usize,
    iters: usize,
    grid: &[i64],
    serial_u: &[f64],
    tweak: impl FnOnce(&mut CompileOptions),
) -> DistributedReport {
    let source = gauss_seidel::fortran_source(n, iters);
    let mut opts = CompileOptions {
        target: Target::StencilDistributed {
            grid: grid.to_vec(),
        },
        verify_each_pass: false,
        ..Default::default()
    };
    tweak(&mut opts);
    let exec = Compiler::run(&source, &opts).expect("distributed run failed");
    let u = exec.array("u").expect("u array");
    assert!(
        u.iter()
            .zip(serial_u)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "grid {grid:?}: result diverged from single-rank serial"
    );
    let d = exec
        .report
        .distributed
        .clone()
        .expect("distributed attestation");
    assert_eq!(
        d.provenance,
        Some(DistProvenance::Measured),
        "grid {grid:?}: rank bodies fell back to the cost model"
    );
    assert_eq!(d.modeled_dispatches, 0, "grid {grid:?}: modeled dispatches");
    d
}

fn scaling_series(rows: &mut Vec<Row>) {
    println!("strong scaling: fixed 32^3 global domain, 512 -> 4096 virtual ranks");
    let (n, iters) = (32usize, 2usize);
    let cells = (n as u64).pow(3) * iters as u64;
    let serial_u = run_serial(n, iters).array("u").unwrap().to_vec();
    for grid in [
        vec![8i64, 8, 8],
        vec![16, 8, 8],
        vec![16, 16, 8],
        vec![16, 16, 16],
    ] {
        let ranks: i64 = grid.iter().product();
        let d = run_ranks(n, iters, &grid, &serial_u, |_| {});
        println!(
            "  {ranks:>5} ranks: {:.3}s makespan, {} workers, {} steals, {} parks",
            d.measured_seconds, d.workers, d.steals, d.parks
        );
        rows.push(Row::new(
            format!("GS {n}^3 strong (grid {grid:?})"),
            ranks,
            mcells_per_sec(cells, d.measured_seconds),
        ));
    }

    println!("weak scaling: ~64 interior cells per rank, 64 -> 4096 virtual ranks");
    for (n, grid) in [
        (16usize, vec![4i64, 4, 4]),
        (32, vec![8, 8, 8]),
        (64, vec![16, 16, 16]),
    ] {
        let ranks: i64 = grid.iter().product();
        let cells = (n as u64).pow(3) * iters as u64;
        let serial_u = run_serial(n, iters).array("u").unwrap().to_vec();
        let d = run_ranks(n, iters, &grid, &serial_u, |_| {});
        println!(
            "  {ranks:>5} ranks (n={n}): {:.3}s makespan, {} steals",
            d.measured_seconds, d.steals
        );
        rows.push(Row::new(
            format!("GS {n}^3 weak"),
            ranks,
            mcells_per_sec(cells, d.measured_seconds),
        ));
    }
}

fn aggregation_ablation() {
    println!("\naggregation ablation: GS 64^3 on a 64x64 rank grid, 64-rank nodes");
    let (n, iters) = (64usize, 2usize);
    let grid = vec![64i64, 64];
    let serial_u = run_serial(n, iters).array("u").unwrap().to_vec();
    let flat = run_ranks(n, iters, &grid, &serial_u, |o| o.dist_node_size = 0);
    let hier = run_ranks(n, iters, &grid, &serial_u, |o| o.dist_node_size = 64);
    println!(
        "  flat (node=rank):   {:>7} logical msgs -> {:>7} envelopes ({:.2}x), {} wire B",
        flat.logical_messages,
        flat.physical_messages,
        flat.aggregation_ratio(),
        flat.physical_bytes
    );
    println!(
        "  hierarchical (64/node): {:>7} logical msgs -> {:>3} envelopes ({:.2}x), {} wire B",
        hier.logical_messages,
        hier.physical_messages,
        hier.aggregation_ratio(),
        hier.physical_bytes
    );
    assert_eq!(
        hier.logical_messages, flat.logical_messages,
        "aggregation must not change what ranks logically send"
    );
    assert!(
        hier.aggregation_ratio() >= 2.0,
        "node-level aggregation must at least halve the attested message \
         count, got {:.2}x",
        hier.aggregation_ratio()
    );
}

fn deep_halo_ablation() {
    println!("\ndeep-halo ablation: GS 64^3 on 16 ranks (1-D), halo depth 1/2/3");
    let (n, iters) = (64usize, 6usize);
    let grid = vec![16i64];
    let serial_u = run_serial(n, iters).array("u").unwrap().to_vec();
    let mut rounds = Vec::new();
    for depth in [1u32, 2, 3] {
        let d = run_ranks(n, iters, &grid, &serial_u, |o| o.halo_depth = depth);
        println!(
            "  depth {depth}: {:>2} exchange rounds, {:>6} msgs, {:>9} B, {:.3}s",
            d.exchange_rounds, d.messages, d.bytes_exchanged, d.measured_seconds
        );
        assert_eq!(d.halo_depth, depth, "depth must be attested");
        rounds.push(d.exchange_rounds);
    }
    // Depth k exchanges on ceil(iters/k) of the sweep dispatches.
    assert!(
        rounds[1] < rounds[0] && rounds[2] < rounds[1],
        "exchange rounds must drop with depth: {rounds:?}"
    );
    assert!(
        rounds[0] >= 2 * rounds[1],
        "depth 2 must halve the exchange rounds: {rounds:?}"
    );
}

/// CI gate: 1024 virtual ranks on a small forced worker pool must run
/// measured, steal, match serial bit-for-bit, and finish within budget.
fn smoke() {
    const WALL_BUDGET_SECS: f64 = 120.0;
    let (n, iters) = (16usize, 2usize);
    let grid = vec![16i64, 8, 8];
    let t0 = Instant::now();
    let serial_u = run_serial(n, iters).array("u").unwrap().to_vec();
    let d = run_ranks(n, iters, &grid, &serial_u, |o| o.dist_workers = 4);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(d.ranks, 1024);
    assert_eq!(d.workers, 4, "smoke forces a 4-worker pool");
    assert!(d.steals > 0, "1024 ranks over 4 workers must steal: {d:?}");
    assert!(
        wall < WALL_BUDGET_SECS,
        "scaling smoke blew its {WALL_BUDGET_SECS}s budget: {wall:.1}s"
    );
    println!(
        "scaling smoke PASS: GS {n}^3 on 1024 virtual ranks bit-identical to \
         serial, measured provenance, {} steals, {} parks, {wall:.1}s wall",
        d.steals, d.parks
    );
}

/// One user-chosen point: `--ranks N [--workers W] [--halo-depth K]`.
/// Same oracle as every other point — bit-identity and measured
/// provenance are asserted inside `run_ranks`.
fn custom(ranks: usize, workers: usize, depth: u32) {
    assert!(
        ranks.is_power_of_two() && (2..=8192).contains(&ranks),
        "--ranks must be a power of two in 2..=8192, got {ranks}"
    );
    let (n, iters, grid) = if depth >= 2 {
        // Deep halos require a single decomposed dimension, so the ranks
        // form a 1-D grid along the 64-cell slowest extent.
        assert!(
            64 % ranks == 0 && 64 / ranks >= depth as usize,
            "--halo-depth {depth} needs --ranks dividing 64 with at least \
             {depth} cells per rank, got {ranks}"
        );
        (64usize, 6usize, vec![ranks as i64])
    } else {
        // Factor the rank count into up to three power-of-two extents
        // that each divide the 32-cell domain.
        let mut grid = Vec::new();
        let mut left = ranks;
        while left > 1 {
            let f = left.min(32);
            grid.push(f as i64);
            left /= f;
        }
        (32usize, 2usize, grid)
    };
    println!(
        "custom point: GS {n}^3, grid {grid:?}, workers {}, halo depth {depth}",
        if workers == 0 {
            "auto".into()
        } else {
            workers.to_string()
        }
    );
    let serial_u = run_serial(n, iters).array("u").unwrap().to_vec();
    let d = run_ranks(n, iters, &grid, &serial_u, |o| {
        o.dist_workers = workers;
        o.halo_depth = depth;
    });
    println!(
        "  {} ranks on {} workers: {:.3}s makespan, {} steals, {} parks",
        d.ranks, d.workers, d.measured_seconds, d.steals, d.parks
    );
    println!(
        "  halo depth {}: {} exchange rounds, {} logical msgs -> {} envelopes \
         ({:.2}x), bit-identical to serial",
        d.halo_depth,
        d.exchange_rounds,
        d.logical_messages,
        d.physical_messages,
        d.aggregation_ratio()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("bad {name} value: {v}"))
            })
    };
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if let Some(ranks) = flag("--ranks") {
        custom(
            ranks,
            flag("--workers").unwrap_or(0),
            flag("--halo-depth").unwrap_or(1) as u32,
        );
        return;
    }
    let mut rows = Vec::new();
    scaling_series(&mut rows);
    print_rows(
        "Figure 7: rank scaling on the work-stealing cooperative scheduler",
        "ranks",
        &rows,
    );
    aggregation_ablation();
    deep_halo_ablation();
    println!("\nevery point verified bit-identical to the single-rank serial result");
    println!("provenance attested `measured` at every rank count (no model fallback)");
}
