//! Figure 6 companion: *executed* distributed Gauss–Seidel scaling.
//!
//! Where `fig6` projects ARCHER2-scale rates through the communication
//! model, this harness runs the distributed target for real: every rank is
//! a thread on the resilient MPI micro-sim, halos move as face messages,
//! and the reported time is the measured makespan attested in
//! [`RunReport::distributed`]. Three series per point:
//!
//! * `blocking`   — `mpi-overlap-halos` disabled (exchange, then compute)
//! * `overlapped` — the default schedule (interior computed in flight)
//! * `hand MPI`   — the hand-written rank-body baseline (`fsc-baselines`)
//!
//! `--smoke` runs the CI gate instead: a small 2×2-grid run that must be
//! bit-identical to single-rank serial with a non-zero attested overlap
//! fraction.

use fsc_baselines::mpi as hand_mpi;
use fsc_bench::{mcells_per_sec, measure, print_rows, Row};
use fsc_core::{CompileOptions, Compiler, DistributedReport, Execution, Target};
use fsc_workloads::gauss_seidel;

fn run_serial(n: usize, iters: usize) -> Execution {
    let source = gauss_seidel::fortran_source(n, iters);
    Compiler::run(
        &source,
        &CompileOptions {
            target: Target::StencilCpu,
            verify_each_pass: false,
            ..Default::default()
        },
    )
    .expect("serial run failed")
}

/// Run the distributed target, verify bit-identity against the serial
/// result, and return the best-of-`reps` distributed attestation.
fn run_distributed(
    n: usize,
    iters: usize,
    grid: &[i64],
    overlap: bool,
    reps: usize,
    serial_u: &[f64],
) -> DistributedReport {
    let source = gauss_seidel::fortran_source(n, iters);
    let opts = CompileOptions {
        target: Target::StencilDistributed {
            grid: grid.to_vec(),
        },
        verify_each_pass: false,
        overlap_halos: overlap,
        ..Default::default()
    };
    let mut best: Option<DistributedReport> = None;
    for _ in 0..reps {
        let exec = Compiler::run(&source, &opts).expect("distributed run failed");
        let u = exec.array("u").expect("u array");
        assert!(
            u.iter()
                .zip(serial_u)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "grid {grid:?} overlap={overlap}: result diverged from serial"
        );
        let d = exec
            .report
            .distributed
            .clone()
            .expect("distributed attestation");
        assert!(
            d.dispatches > 0,
            "grid {grid:?}: rank bodies did not run (modeled fallback)"
        );
        if best
            .as_ref()
            .map(|b| d.measured_seconds < b.measured_seconds)
            .unwrap_or(true)
        {
            best = Some(d);
        }
    }
    best.unwrap()
}

fn series(n: usize, iters: usize, grids: &[&[i64]], reps: usize, rows: &mut Vec<Row>) {
    let cells = (n as u64).pow(3) * iters as u64;
    let serial = run_serial(n, iters);
    let serial_u = serial.array("u").expect("u array").to_vec();
    for &grid in grids {
        let ranks: i64 = grid.iter().product();
        for (label, overlap) in [("blocking", false), ("overlapped", true)] {
            let d = run_distributed(n, iters, grid, overlap, reps, &serial_u);
            rows.push(Row::new(
                format!("GS {n}^3 / {label} (grid {grid:?})"),
                ranks,
                mcells_per_sec(cells, d.measured_seconds),
            ));
            if overlap {
                println!(
                    "  n={n} grid={grid:?}: overlap fraction {:.3}, {} msgs, {} B, model/measured {:.3}",
                    d.overlap_fraction(),
                    d.messages,
                    d.bytes_exchanged,
                    d.model_ratio()
                );
            }
        }
        let (t, _) = measure(reps, || hand_mpi::gs_run(n, iters, ranks as usize));
        rows.push(Row::new(
            format!("GS {n}^3 / hand MPI"),
            ranks,
            mcells_per_sec(cells, t.as_secs_f64()),
        ));
    }
}

fn smoke() {
    let (n, iters, grid) = (8usize, 2usize, vec![2i64, 2]);
    let serial = run_serial(n, iters);
    let serial_u = serial.array("u").expect("u array").to_vec();
    let d = run_distributed(n, iters, &grid, true, 1, &serial_u);
    // Overlap needs a rank's interior compute to run while its halo
    // messages are in flight. On a 1-worker pool rank bodies are strictly
    // serialised — a rank's peers only progress after it parks — so a zero
    // fraction is a property of the schedule, not a regression. Skip the
    // assertion there with the reason attested in the output; multi-worker
    // runs still enforce it.
    if d.workers > 1 {
        assert!(
            d.overlap_fraction() > 0.0,
            "smoke: overlap fraction not attested: {d:?}"
        );
    } else {
        println!(
            "smoke: overlap-fraction assertion skipped: single-worker pool \
             (workers = {}) serialises rank bodies, so no compute can overlap \
             in-flight halos",
            d.workers
        );
    }
    assert!(d.bytes_exchanged > 0, "smoke: no halo traffic: {d:?}");
    println!(
        "distributed smoke PASS: GS {n}^3 on 2x2 grid bit-identical to serial, \
         overlap fraction {:.3}, {} halo bytes",
        d.overlap_fraction(),
        d.bytes_exchanged
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let reps = 3;
    let mut rows = Vec::new();
    println!("strong scaling: fixed 24^3 global domain, growing process grid");
    series(24, 4, &[&[2], &[2, 2], &[4, 2]], reps, &mut rows);
    println!("weak scaling: ~1728 interior cells per rank");
    series(12, 4, &[&[1]], reps, &mut rows);
    series(24, 4, &[&[2, 2, 2]], reps, &mut rows);
    print_rows(
        "Figure 6 companion: executed distributed Gauss-Seidel (measured rank bodies)",
        "ranks",
        &rows,
    );
    println!("\nevery row verified bit-identical to the single-rank serial result");
    println!("overlapped >= blocking throughput expected (interior hides the halo wait)");
}
