//! Figure 2: single-core throughput for Gauss–Seidel and PW advection at
//! three problem sizes, comparing Cray, Flang-only and the stencil flow.
//!
//! ```sh
//! cargo run --release -p fsc-bench --bin fig2 [-- sizes...]
//! ```

use fsc_bench::figures::{fig2, fig2_exec_paths};
use fsc_bench::print_rows;

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes = if sizes.is_empty() {
        vec![24, 32, 48]
    } else {
        sizes
    };
    let rows = fig2(&sizes, 2, 3, Some(16));
    print_rows(
        "Figure 2: single-core performance (MCells/s, higher is better)",
        "size",
        &rows,
    );
    let ladder = fig2_exec_paths(*sizes.last().unwrap(), 3);
    print_rows(
        "Figure 2 companion: PW through the specialization ladder",
        "size",
        &ladder,
    );
    println!(
        "\npaper shape: Cray > Stencil > Flang-only; stencil/Flang gain larger for PW (~10x) than GS (~2x)"
    );
}
