//! Figure-5-style CPU tiling ablation: Gauss–Seidel on the OpenMP target
//! under the autotuned execution plan, the IR-seeded default plan and a
//! deliberately pathological 1×1×1 blocking. Prints seconds, throughput
//! and the plans the run report attested for each variant.
//!
//! ```sh
//! cargo run --release -p fsc-bench --bin tile_sweep          # 48^3, 8 threads
//! cargo run --release -p fsc-bench --bin tile_sweep -- --quick
//! ```

use fsc_bench::figures::cpu_tile_sweep;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, iters, reps) = if quick { (24, 2, 2) } else { (48, 4, 5) };
    let threads = 8;
    println!(
        "CPU tile sweep: {n}^3 Gauss-Seidel, {iters} iters, OpenMP threads={threads}, best of {reps}"
    );
    println!(
        "{:<12} {:>10} {:>12}  plans (attested)",
        "config", "seconds", "MCells/s"
    );
    let rows = cpu_tile_sweep(n, iters, threads, reps);
    for row in &rows {
        println!(
            "{:<12} {:>10.4} {:>12.2}  {}",
            row.label, row.seconds, row.mcells, row.plans
        );
    }
    let get = |label: &str| rows.iter().find(|r| r.label == label).unwrap();
    let speedup = get("default").seconds / get("tuned").seconds;
    let vs_worst = get("worst-case").seconds / get("tuned").seconds;
    println!("\ntuned vs default: {speedup:.2}x; tuned vs worst-case: {vs_worst:.2}x");
    println!("all variants verified bit-identical");
}
