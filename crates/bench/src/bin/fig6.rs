//! Figure 6: distributed-memory Gauss–Seidel strong scaling on ARCHER2
//! (128 ranks/node, 2-D decomposition, 17-billion-cell-class global grid):
//! hand-parallelised MPI vs the automatic DMP→MPI lowering.

use fsc_bench::figures::fig6;
use fsc_bench::print_rows;

fn main() {
    let nodes = [1i64, 2, 4, 8, 16, 32, 64];
    let rows = fig6(&nodes, 96, 2048);
    print_rows(
        "Figure 6: distributed Gauss-Seidel (measured per-cell rates + Slingshot model)",
        "nodes",
        &rows,
    );
    println!("\npaper shape: hand version faster and scales better; automatic version still scales to 8192 ranks");
    println!("(64 nodes = 8192 ranks; the paper reports ~70,000 MCells/s for the automatic version there)");
}
