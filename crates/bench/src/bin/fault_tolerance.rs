//! Fault-tolerance ablation: distributed Gauss–Seidel on the raw vs the
//! resilient MPI transport — protocol overhead at 0% faults, behaviour
//! under injected drop rates, and crash-recovery cost vs checkpoint
//! interval — plus the modeled protocol overhead on the Figure 6 harness.

use fsc_bench::figures::{fault_ablation, fig6_resilience_overhead, gs_single_core};

fn main() {
    let (n, iters, ranks, reps) = (24, 8, 4, 3);
    println!("=== Fault-tolerance ablation: GS {n}^3, {iters} iters, {ranks} ranks ===");
    println!(
        "{:<44} {:>9} {:>8} {:>8} {:>8} {:>6} {:>7}",
        "configuration", "wall s", "injected", "retries", "acks", "ckpts", "replay"
    );
    let rows = fault_ablation(n, iters, ranks, reps);
    let baseline = rows[0].seconds;
    for row in &rows {
        println!(
            "{:<44} {:>9.4} {:>8} {:>8} {:>8} {:>6} {:>7}",
            row.label,
            row.seconds,
            row.stats.injected(),
            row.stats.retries,
            row.stats.acks_sent,
            row.stats.checkpoints,
            row.stats.replayed_iterations
        );
    }
    let protocol = rows[1].seconds;
    println!(
        "\nmeasured resilient-protocol overhead at 0% faults: {:+.1}%",
        (protocol / baseline - 1.0) * 100.0
    );
    println!("every resilient row verified bit-identical to the raw transport");

    println!("\n=== Modeled protocol overhead on the Figure 6 harness (0% faults) ===");
    let gs = gs_single_core(48, 2, 2);
    let per_cell = gs.cray / 48f64.powi(3);
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "nodes", "plain s/iter", "resilient", "overhead"
    );
    for (nn, plain, resilient) in
        fig6_resilience_overhead(&[1, 2, 4, 8, 16, 32, 64], 2048, per_cell)
    {
        println!(
            "{:>6} {:>14.6} {:>14.6} {:>8.2}%",
            nn,
            plain,
            resilient,
            (resilient / plain - 1.0) * 100.0
        );
    }
}
