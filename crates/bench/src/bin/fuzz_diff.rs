//! Differential fuzzing harness over the whole compilation ladder.
//!
//! For each seeded case, a random valid stencil program runs through:
//!
//! * the Flang-only interpretation tier (the reference),
//! * every degradation-ladder rung (`force_rung`: full stencil pipeline,
//!   sequential scf fallback, direct FIR interpretation), and
//! * every kernel execution tier (`force_exec_path`: specialized native
//!   loops, the superinstruction VM, the generic VM),
//!
//! asserting **bit-identical** output arrays everywhere. Interleaved with
//! the valid cases, mutated/malformed Fortran and garbage textual IR are
//! fed to the frontend and IR parser, which must reject them with coded
//! diagnostics (or accept them) — never panic.
//!
//! Usage: `fuzz_diff [--cases N] [--seed S] [--verbose]`
//! Exits non-zero if any case diverges or panics; CI runs a bounded smoke
//! (`--cases 200 --seed 1`).

use fsc_bench::fuzz::{gen_garbage_ir, gen_program, mutate_source, Rng};
use fsc_core::{CompileOptions, Compiler, DegradationRung, Target};
use fsc_exec::ExecPath;
use std::panic::{catch_unwind, AssertUnwindSafe};

struct Summary {
    diff: usize,
    malformed: usize,
    garbage_ir: usize,
    rejected: usize,
    failures: Vec<String>,
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One differential case: reference vs every rung and exec tier.
fn run_diff_case(case_no: usize, rng: &mut Rng, summary: &mut Summary) {
    let case = gen_program(rng);
    let fail = |summary: &mut Summary, what: &str| {
        summary.failures.push(format!(
            "case {case_no} (n={}): {what}\n--- source ---\n{}",
            case.n, case.source
        ));
    };
    let reference =
        match Compiler::run(&case.source, &CompileOptions::for_target(Target::FlangOnly)) {
            Ok(exec) => match exec.array(&case.output) {
                Some(a) => a.to_vec(),
                None => return fail(summary, "reference run lost the output array"),
            },
            Err(e) => {
                return fail(
                    summary,
                    &format!("reference tier rejected the program: {e}"),
                )
            }
        };
    // Ladder rungs, each forced explicitly.
    for rung in [
        DegradationRung::Stencil,
        DegradationRung::ScfFallback,
        DegradationRung::FirInterp,
    ] {
        let opts = CompileOptions {
            force_rung: Some(rung),
            ..CompileOptions::for_target(Target::StencilCpu)
        };
        match Compiler::run(&case.source, &opts) {
            Ok(exec) => {
                if exec.report.degradation.ran != rung {
                    fail(
                        summary,
                        &format!(
                            "forced rung {rung:?} but ran {:?}",
                            exec.report.degradation.ran
                        ),
                    );
                    continue;
                }
                match exec.array(&case.output) {
                    Some(a) if bits(a) == bits(&reference) => {}
                    Some(_) => fail(summary, &format!("rung {rung:?} diverged from reference")),
                    None => fail(summary, &format!("rung {rung:?} lost the output array")),
                }
            }
            Err(e) => fail(summary, &format!("rung {rung:?} failed: {e}")),
        }
    }
    // Kernel exec tiers on the full stencil pipeline.
    let opts = CompileOptions::for_target(Target::StencilCpu);
    match Compiler::compile(&case.source, &opts) {
        Ok(mut compiled) => {
            for path in [
                ExecPath::Specialized,
                ExecPath::FusedVm,
                ExecPath::GenericVm,
            ] {
                for kernel in compiled.kernels.values_mut() {
                    kernel.force_exec_path(path);
                }
                match compiled.run() {
                    Ok(exec) => match exec.array(&case.output) {
                        Some(a) if bits(a) == bits(&reference) => {}
                        Some(_) => fail(summary, &format!("exec tier {path} diverged")),
                        None => fail(summary, &format!("exec tier {path} lost the output array")),
                    },
                    Err(e) => fail(summary, &format!("exec tier {path} failed: {e}")),
                }
            }
        }
        Err(e) => fail(summary, &format!("stencil compile failed: {e}")),
    }
    summary.diff += 1;
}

/// Malformed Fortran: Err-with-diagnostics or Ok, never a panic (the panic
/// is caught by the per-case `catch_unwind` and reported as a failure).
fn run_malformed_case(case_no: usize, rng: &mut Rng, summary: &mut Summary) {
    let case = gen_program(rng);
    let bad = mutate_source(rng, &case.source);
    match Compiler::compile(&bad, &CompileOptions::for_target(Target::StencilCpu)) {
        Ok(_) => {} // mutation happened to stay valid
        Err(e) => {
            summary.rejected += 1;
            if e.to_string().trim().is_empty() {
                summary.failures.push(format!(
                    "case {case_no}: empty rejection message for:\n{bad}"
                ));
            }
        }
    }
    summary.malformed += 1;
}

/// Garbage textual IR through the round-trip parser.
fn run_garbage_ir_case(_case_no: usize, rng: &mut Rng, summary: &mut Summary) {
    let text = gen_garbage_ir(rng);
    if fsc_ir::parse::parse_module(&text).is_err() {
        summary.rejected += 1;
    }
    summary.garbage_ir += 1;
}

fn main() {
    let mut cases = 200usize;
    let mut seed = 1u64;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cases" => cases = args.next().and_then(|v| v.parse().ok()).unwrap_or(cases),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--verbose" => verbose = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    // Panics are *failures*, not crashes: silence the default hook so the
    // summary stays readable, and attribute each one to its case.
    std::panic::set_hook(Box::new(|_| {}));
    let mut summary = Summary {
        diff: 0,
        malformed: 0,
        garbage_ir: 0,
        rejected: 0,
        failures: Vec::new(),
    };
    for case_no in 0..cases {
        // Each case gets an independent, reproducible stream.
        let mut rng = Rng::new(seed ^ (case_no as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let kind = case_no % 3;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut s = Summary {
                diff: 0,
                malformed: 0,
                garbage_ir: 0,
                rejected: 0,
                failures: Vec::new(),
            };
            match kind {
                0 | 1 => run_diff_case(case_no, &mut rng, &mut s),
                _ => {
                    run_malformed_case(case_no, &mut rng, &mut s);
                    run_garbage_ir_case(case_no, &mut rng, &mut s);
                }
            }
            s
        }));
        match outcome {
            Ok(s) => {
                summary.diff += s.diff;
                summary.malformed += s.malformed;
                summary.garbage_ir += s.garbage_ir;
                summary.rejected += s.rejected;
                summary.failures.extend(s.failures);
            }
            Err(_) => summary
                .failures
                .push(format!("case {case_no}: PANIC escaped the pipeline")),
        }
        if verbose && (case_no + 1) % 50 == 0 {
            eprintln!("... {}/{cases}", case_no + 1);
        }
    }
    let _ = std::panic::take_hook();
    println!(
        "fuzz_diff: {cases} cases (seed {seed}): {} differential, {} malformed, {} garbage-ir, {} rejected cleanly, {} failures",
        summary.diff, summary.malformed, summary.garbage_ir, summary.rejected,
        summary.failures.len()
    );
    if !summary.failures.is_empty() {
        for f in &summary.failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
