//! # fsc-core — the end-to-end driver (the paper's Figure 1)
//!
//! One call chain reproduces the whole flow:
//!
//! ```text
//! Fortran ──frontend──▶ FIR ──discover+merge──▶ FIR+stencil
//!          ──extract──▶ (FIR module, stencil module)
//!          ──target pipeline──▶ lowered stencil module
//!          ──kernel compiler──▶ CompiledKernels
//! run: interpret FIR; fir.call @stencil_region_N dispatches to kernels
//! ```
//!
//! [`Target`] selects the paper's four execution configurations: Flang-only
//! (no stencil passes — the slow baseline of Figures 2–4), serial CPU
//! stencil, OpenMP stencil, GPU stencil (with either data strategy), or
//! distributed-memory stencil via DMP/MPI.

pub mod session;

pub use session::{
    ArtifactSource, CompileOutcome, CompileRequest, CompileService, ServiceMetrics, Session,
};

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fsc_exec::autotune::{self, TuneConfig, TuningReport};
use fsc_exec::budget::{MemoryBudget, MemoryEstimate};
use fsc_exec::distexec::{self, DeepHaloSession, DistOutcome};
pub use fsc_exec::distexec::{DistMode, DistOptions};
use fsc_exec::interp::{Interpreter, RegionDispatcher, RunStats};
use fsc_exec::kernel::{
    self, CompiledKernel, GpuStrategy, HaloSchedule, KernelArg, PlanKind, ViewSource,
};
use fsc_exec::plan::{ExecPlan, PlanProvenance};
use fsc_exec::value::{Memory, Ref, Value};
pub use fsc_exec::JitArtifact;
use fsc_exec::{ExecPath, JitCacheStats};
use fsc_gpusim::{BufferUse, GpuCounters, GpuSession, KernelLoad, V100Model};
use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{Attribute, IrError, Module, Result, Type};
use fsc_mpisim::fault::{CrashSpec, FaultPlan, FaultStats};
use fsc_mpisim::resilient::{run_resilient, ResilientConfig};
use fsc_mpisim::{CostModel, ProcessGrid};
use fsc_passes::pipeline::{payload_message, HardenedPipeline};
use fsc_passes::pipelines;
use std::panic::AssertUnwindSafe;

/// Execution configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Interpret the raw FIR op by op — the extreme "Flang only" tier
    /// (used for end-to-end validation; ~100× slower than compiled code).
    FlangOnly,
    /// The figures' "Flang only" line: the same program executed at
    /// compiled-code speed but the way Flang's direct FIR→LLVM flow runs
    /// it — full per-access address arithmetic, bounds checks, no loop
    /// restructuring or vectorisable inner runs (see DESIGN.md).
    UnoptimizedCpu,
    /// Stencil flow, single CPU core.
    StencilCpu,
    /// Stencil flow, automatic OpenMP (0 = all cores).
    StencilOpenMp {
        /// Thread count.
        threads: u32,
    },
    /// Stencil flow on the modeled V100.
    StencilGpu {
        /// Use the optimised explicit data management pass (vs
        /// `gpu.host_register`).
        explicit_data: bool,
        /// Tile sizes for `scf-parallel-loop-tiling` (Listing 4: 32,32,1).
        tile: [i64; 3],
    },
    /// Stencil flow with automatic distributed-memory parallelisation.
    StencilDistributed {
        /// Process-grid decomposition (e.g. `[32, 16]` = 512 ranks over the
        /// two slowest dimensions).
        grid: Vec<i64>,
    },
    /// Multi-node GPU: one modeled V100 per rank with halo exchanges — the
    /// paper's fifth further-work avenue, implemented.
    StencilMultiGpu {
        /// GPU-rank decomposition over the slowest dimensions.
        grid: Vec<i64>,
        /// Thread-block tile sizes.
        tile: [i64; 3],
    },
}

/// Compile-time options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Execution target.
    pub target: Target,
    /// In the non-hardened (strict) flow: run the structural + dialect
    /// verifier after every pass. The hardened flow always verifies after
    /// every pass, so this flag only matters when `harden` is off.
    pub verify_each_pass: bool,
    /// Drive the pass pipelines under the hardened snapshot / panic-catch /
    /// verify / rollback driver, degrading down the fallback ladder
    /// (stencil → sequential scf → direct FIR interpretation) instead of
    /// failing the compile. On by default; turn off to get the strict
    /// fail-fast behaviour.
    pub harden: bool,
    /// Fault-injection hook: deliberately corrupt the module right after
    /// the named pass runs, forcing its post-pass verification to fail.
    /// Exercises the rollback + degradation path end to end in tests.
    pub sabotage_pass: Option<String>,
    /// Start the degradation ladder at this rung instead of the full
    /// stencil flow (differential testing of the lower rungs). `None` runs
    /// the normal ladder from the top.
    pub force_rung: Option<DegradationRung>,
    /// Autotune execution plans after kernel compilation: calibrate a
    /// small candidate space of tile/unroll/slab shapes, install the
    /// winner, and remember it in the persistent plan cache. `None` (the
    /// default) keeps the default plans — no calibration cost, no cache
    /// I/O. The outcome is attested in [`Compiled::tuning`] and rides
    /// into [`RunReport::tuning`].
    pub autotune: Option<TuneConfig>,
    /// Distributed targets: run the `mpi-overlap-halos` pass so star-shaped
    /// stencils compute their interior while halo messages are in flight
    /// (post-recv → post-send → interior → waitall → boundary). On by
    /// default; turn off to force the blocking schedule (exchange first,
    /// then compute), e.g. for the overlap-vs-blocking ablation.
    pub overlap_halos: bool,
    /// Distributed targets: ghost-layer depth `k` for the
    /// `mpi-deep-halos` pass. `1` (the default) is the classic
    /// exchange-every-sweep flow; `k ≥ 2` widens every halo to `k` layers
    /// (1-D grids only) so one exchange round feeds `k` consecutive
    /// dispatches — communication avoidance at identical results.
    pub halo_depth: u32,
    /// Distributed targets: worker threads for the cooperative rank
    /// scheduler. `0` (the default) uses the machine's available
    /// parallelism.
    pub dist_workers: usize,
    /// Distributed targets: ranks per simulated node for hierarchical
    /// halo aggregation (same-edge messages between two node groups
    /// coalesce into one envelope). `0` or `1` disables aggregation.
    pub dist_node_size: usize,
    /// Force every compiled nest onto one execution tier where that tier
    /// is available (nests without a specialized/jit realisation keep
    /// their ladder default). `None` (the default) picks the fastest
    /// available tier per nest. Drives the tier benches and differential
    /// tests; binaries map `FSC_FORCE_EXEC_PATH` onto this via
    /// [`ExecPath::parse`] — the library itself never reads env vars.
    pub force_exec_path: Option<ExecPath>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            target: Target::StencilCpu,
            verify_each_pass: false,
            harden: true,
            sabotage_pass: None,
            force_rung: None,
            autotune: None,
            overlap_halos: true,
            halo_depth: 1,
            dist_workers: 0,
            dist_node_size: 0,
            force_exec_path: None,
        }
    }
}

impl CompileOptions {
    /// Options for `target` with defaults elsewhere.
    pub fn for_target(target: Target) -> Self {
        Self {
            target,
            ..Self::default()
        }
    }

    /// The distributed execution knobs these options select (cooperative
    /// scheduler; [`Compiled::dist_options`] can override the mode).
    pub fn dist_options(&self) -> DistOptions {
        DistOptions {
            mode: fsc_exec::DistMode::Coop,
            workers: self.dist_workers,
            node_size: self.dist_node_size,
        }
    }
}

/// A rung of the degradation ladder, from the full stencil flow down to
/// plain FIR interpretation. Ordered: a later rung is a simpler, slower,
/// harder-to-break configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradationRung {
    /// The requested target's full stencil pipeline.
    #[default]
    Stencil,
    /// Stencils lowered to plain sequential `scf.for` loops — no fusion
    /// cleanup, no OpenMP/GPU/DMP shaping.
    ScfFallback,
    /// No stencil compilation at all: the raw Flang-style FIR is
    /// interpreted op by op. Slow, but only the frontend can break it.
    FirInterp,
}

impl DegradationRung {
    /// Human-readable rung name (stable, used in reports and goldens).
    pub fn describe(self) -> &'static str {
        match self {
            DegradationRung::Stencil => "full stencil pipeline",
            DegradationRung::ScfFallback => "sequential scf fallback",
            DegradationRung::FirInterp => "direct FIR interpretation",
        }
    }
}

/// One rejected rung: where it failed and why.
#[derive(Debug, Clone)]
pub struct RungAttempt {
    /// The rung that was attempted.
    pub rung: DegradationRung,
    /// Compile stage that failed (`discovery`, `extract`,
    /// `target-pipeline`, `kernel-compile`).
    pub stage: String,
    /// The failing pass, when the stage was a pass pipeline.
    pub failed_pass: Option<String>,
    /// Coded diagnostics describing the failure.
    pub diagnostics: Vec<Diagnostic>,
}

/// Attestation of the degradation ladder: which rungs were rejected (and
/// why), and which one actually ran.
#[derive(Debug, Clone, Default)]
pub struct DegradationReport {
    /// Rungs attempted and rejected, in ladder order.
    pub attempts: Vec<RungAttempt>,
    /// The rung that produced the executed configuration.
    pub ran: DegradationRung,
}

impl DegradationReport {
    /// True when the run did not use the requested configuration.
    pub fn degraded(&self) -> bool {
        !self.attempts.is_empty() || self.ran != DegradationRung::Stencil
    }

    /// Render the ladder outcome for logs and error reports.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for a in &self.attempts {
            out.push_str(&format!(
                "rejected {} at {}{}:\n",
                a.rung.describe(),
                a.stage,
                a.failed_pass
                    .as_deref()
                    .map(|p| format!(" (pass '{p}')"))
                    .unwrap_or_default(),
            ));
            for d in &a.diagnostics {
                out.push_str(&format!("  {}\n", d.render().replace('\n', "\n  ")));
            }
        }
        out.push_str(&format!("ran: {}", self.ran.describe()));
        out
    }
}

/// A compiled program: the FIR module, the (optionally) extracted stencil
/// module and its compiled kernels.
pub struct Compiled {
    /// The Flang-side module (interpreted at run time).
    pub fir_module: Module,
    /// The extracted, lowered stencil module (absent for Flang-only).
    pub stencil_module: Option<Module>,
    /// Compiled kernels by region symbol.
    pub kernels: HashMap<String, CompiledKernel>,
    /// The configured target.
    pub target: Target,
    /// Name of the main program unit.
    pub entry: String,
    /// Degradation-ladder attestation for this compile.
    pub degradation: DegradationReport,
    /// Autotuner attestation: which plans were installed, whether they
    /// came from calibration or the persistent cache, and what tuning
    /// cost. `None` when autotuning was not requested.
    pub tuning: Option<TuningReport>,
    /// Distributed execution knobs (substrate, workers, aggregation) every
    /// run of this artifact uses; seeded from
    /// [`CompileOptions::dist_options`] and overridable before `run`
    /// (e.g. forcing [`fsc_exec::DistMode::Threads`] for differential
    /// tests).
    pub dist_options: DistOptions,
}

/// Attestation of real distributed execution: every dispatch that ran as
/// genuine rank bodies over the simulated MPI substrate contributes its
/// measured per-rank wall time, halo traffic, and schedule breakdown. The
/// legacy cost model stays as a cross-check (`modeled_seconds`), so a run
/// attests both what was measured and what the model would have charged.
#[derive(Debug, Clone, Default)]
pub struct DistributedReport {
    /// Ranks in the process grid.
    pub ranks: i64,
    /// Kernel dispatches that executed on real rank bodies (dispatches
    /// outside the supported shape fall back to the modeled path and are
    /// not counted here).
    pub dispatches: u64,
    /// The halo schedule the exchanging nests ran under (`None` until a
    /// real dispatch happens).
    pub schedule: Option<HaloSchedule>,
    /// Measured wall seconds per rank, summed across dispatches.
    pub per_rank_wall: Vec<f64>,
    /// Total halo payload bytes exchanged across all ranks and dispatches.
    pub bytes_exchanged: u64,
    /// Total halo messages across all ranks and dispatches.
    pub messages: u64,
    /// Face pack + send posting seconds, summed over ranks.
    pub pack_seconds: f64,
    /// Interior compute seconds overlapped with in-flight messages.
    pub interior_seconds: f64,
    /// Seconds blocked in receives + halo unpack, summed over ranks.
    pub wait_seconds: f64,
    /// Boundary (overlap) or whole-block (blocking) compute seconds.
    pub boundary_seconds: f64,
    /// Measured distributed seconds: the sum of per-dispatch makespans
    /// (slowest rank each time).
    pub measured_seconds: f64,
    /// What the analytic cost model charges for the same dispatches
    /// (mean per-rank compute + modeled halo communication) — kept as a
    /// cross-check against the measurement.
    pub modeled_seconds: f64,
    /// Where the distributed numbers come from: every dispatch measured on
    /// real rank bodies, every dispatch charged to the analytic model
    /// (unsupported shapes), or a mix. `None` until the first distributed
    /// dispatch.
    pub provenance: Option<DistProvenance>,
    /// Kernel dispatches that fell back to the modeled path.
    pub modeled_dispatches: u64,
    /// Substrate the measured dispatches ran on (`None` until one runs).
    pub scheduler: Option<DistMode>,
    /// Worker threads hosting the rank tasks (largest observed).
    pub workers: usize,
    /// Rank tasks stolen from another worker's deque, across dispatches
    /// (cooperative scheduler only).
    pub steals: u64,
    /// Times a rank task parked on a blocking operation (coop only).
    pub parks: u64,
    /// User-level halo messages the transport carried.
    pub logical_messages: u64,
    /// Physical envelopes after hierarchical node-level aggregation
    /// (== `logical_messages` when aggregation is off).
    pub physical_messages: u64,
    /// Payload bytes of user-level halo messages.
    pub logical_bytes: u64,
    /// Wire bytes including per-message and per-envelope headers.
    pub physical_bytes: u64,
    /// Ghost-layer depth the kernels ran under (largest observed;
    /// 0 until a measured dispatch).
    pub halo_depth: u32,
    /// Halo-exchange rounds actually performed: deep halos make this grow
    /// slower than `dispatches` (one round feeds `k` dispatches).
    pub exchange_rounds: u64,
}

/// Provenance of the distributed timing numbers in a
/// [`DistributedReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistProvenance {
    /// Every dispatch executed as real rank bodies and was measured.
    Measured,
    /// Every dispatch was outside the executor's supported shape and was
    /// charged to the analytic communication model.
    Modeled,
    /// Some dispatches measured, some modeled.
    Mixed,
}

impl DistProvenance {
    /// Stable lowercase name for attestation surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            DistProvenance::Measured => "measured",
            DistProvenance::Modeled => "modeled",
            DistProvenance::Mixed => "mixed",
        }
    }

    fn fold(slot: &mut Option<Self>, next: Self) {
        *slot = Some(match *slot {
            None => next,
            Some(prev) if prev == next => prev,
            Some(_) => DistProvenance::Mixed,
        });
    }
}

impl DistributedReport {
    /// Fraction of halo latency hidden behind interior compute:
    /// `Σ interior / (Σ interior + Σ wait)`. Zero under the blocking
    /// schedule.
    pub fn overlap_fraction(&self) -> f64 {
        let denom = self.interior_seconds + self.wait_seconds;
        if denom > 0.0 {
            self.interior_seconds / denom
        } else {
            0.0
        }
    }

    /// Modeled-over-measured ratio (zero when nothing was measured):
    /// how far the analytic model sits from the real execution.
    pub fn model_ratio(&self) -> f64 {
        if self.measured_seconds > 0.0 {
            self.modeled_seconds / self.measured_seconds
        } else {
            0.0
        }
    }

    /// Logical-to-physical message ratio of the aggregating transport
    /// (1.0 when aggregation is off or nothing was sent).
    pub fn aggregation_ratio(&self) -> f64 {
        if self.physical_messages == 0 {
            1.0
        } else {
            self.logical_messages as f64 / self.physical_messages as f64
        }
    }
}

/// Execution accounting.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Wall-clock spent inside stencil kernels.
    pub kernel_wall: Duration,
    /// Grid cells processed by stencil kernels (all invocations).
    pub kernel_cells: u64,
    /// Interpreter op counters.
    pub interp: RunStats,
    /// Modeled GPU seconds (GPU targets).
    pub gpu_seconds: Option<f64>,
    /// GPU transfer/launch counters (GPU targets).
    pub gpu: Option<GpuCounters>,
    /// Distributed seconds (distributed targets): measured makespans for
    /// dispatches that ran on real rank bodies, plus modeled time for any
    /// dispatch that fell back to the cost model.
    pub distributed_seconds: Option<f64>,
    /// Ranks used by the distributed target.
    pub ranks: Option<i64>,
    /// Real distributed-execution attestation (distributed targets only).
    pub distributed: Option<DistributedReport>,
    /// Distinct execution paths the stencil nests ran through (sorted;
    /// empty for Flang-only and naive-tier runs, which bypass the
    /// specialization ladder).
    pub exec_paths: Vec<ExecPath>,
    /// Distinct jit artifact sources of the nests that carried a stitched
    /// object (sorted; empty when no nest had one). `Cached` here attests
    /// that a recompile reused a warm artifact without codegen.
    pub jit_artifacts: Vec<JitArtifact>,
    /// Coded jit warnings from compilation (`E0704` integrity rebuilds,
    /// `E0705` stitching skips) — degradations, never failures.
    pub jit_warnings: Vec<Diagnostic>,
    /// Fault-injection / recovery attestation of the resilient halo
    /// transport (distributed targets only; zero counters for a
    /// fault-free plan).
    pub resilience: Option<FaultStats>,
    /// Which degradation-ladder rung produced this run, and which rungs
    /// were rejected on the way down (empty attempts + `Stencil` = the
    /// requested configuration ran).
    pub degradation: DegradationReport,
    /// Distinct execution plans the stencil nests ran under (sorted;
    /// empty for Flang-only and naive-tier runs). Every plan carries its
    /// provenance, so a run attests whether it executed tuned, cached or
    /// default shapes.
    pub plans: Vec<ExecPlan>,
    /// Autotuner attestation carried over from the compile (see
    /// [`Compiled::tuning`]).
    pub tuning: Option<TuningReport>,
    /// The static memory estimate this run was admitted under (governed
    /// runs only — see [`Compiled::run_governed`]).
    pub estimate: Option<MemoryEstimate>,
    /// Measured peak bytes of the run's memory (the governing ledger's
    /// high-water mark for governed runs, the interpreter arena's peak
    /// otherwise). A governed run attests `peak_bytes <= estimate.total()`
    /// by construction: the ledger's limit *is* the estimate.
    pub peak_bytes: u64,
}

impl RunReport {
    /// True when at least one nest executed through `path`.
    pub fn attests(&self, path: ExecPath) -> bool {
        self.exec_paths.contains(&path)
    }

    /// True when at least one nest executed under a plan of the given
    /// provenance.
    pub fn attests_plan(&self, provenance: PlanProvenance) -> bool {
        self.plans.iter().any(|p| p.provenance == provenance)
    }

    /// True when at least one nest carried a jit object from `source`
    /// (`fresh` codegen, `deduped` concurrent build, `cached` reuse).
    pub fn attests_artifact(&self, source: JitArtifact) -> bool {
        self.jit_artifacts.contains(&source)
    }
}

/// Snapshot of the process-wide jit artifact cache (shared across every
/// compile in this process, including all `fsc-serve` sessions).
pub fn jit_cache_stats() -> JitCacheStats {
    fsc_exec::jit::shared_cache().stats()
}

/// A finished execution: memory plus accounting.
pub struct Execution {
    /// Runtime memory (buffers hold final array contents).
    pub memory: Memory,
    /// Accounting.
    pub report: RunReport,
    bindings: HashMap<String, Ref>,
}

impl Execution {
    /// The final contents of a Fortran array by name.
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        match self.bindings.get(name)? {
            Ref::Array { buf, .. } => Some(self.memory.buffer(*buf)),
            _ => None,
        }
    }
}

/// The compiler driver.
pub struct Compiler;

impl Compiler {
    /// Compile Fortran source for the given target. Frontend errors (lex,
    /// parse, sema, lowering) are always fatal — there is nothing to run.
    /// With `options.harden` (the default), pass-pipeline failures are not:
    /// the compile degrades down the fallback ladder and the outcome is
    /// attested in [`Compiled::degradation`].
    pub fn compile(source: &str, options: &CompileOptions) -> Result<Compiled> {
        let fir = fsc_fortran::compile_to_fir(source)?;
        let entry = find_program(&fir)?;
        if options.target == Target::FlangOnly {
            return Ok(Compiled {
                fir_module: fir,
                stencil_module: None,
                kernels: HashMap::new(),
                target: options.target.clone(),
                entry,
                degradation: DegradationReport::default(),
                tuning: None,
                dist_options: options.dist_options(),
            });
        }
        let mut compiled = if options.harden {
            Self::compile_ladder(fir, entry, options)?
        } else {
            Self::compile_strict(fir, entry, options)?
        };
        if let Some(cfg) = &options.autotune {
            if !compiled.kernels.is_empty() {
                autotune_compiled(&mut compiled, cfg);
            }
        }
        // Tier override last, so forced paths survive the autotuner's plan
        // installation (which re-acquires jit artifacts per new plan).
        if let Some(path) = options.force_exec_path {
            for k in compiled.kernels.values_mut() {
                k.force_exec_path(path);
            }
        }
        Ok(compiled)
    }

    /// The strict fail-fast flow: any pass error aborts the compile.
    fn compile_strict(
        mut fir: Module,
        entry: String,
        options: &CompileOptions,
    ) -> Result<Compiled> {
        // Figure 1: discovery (+fusion) on FIR, then extraction. The
        // unoptimised tier models Flang's own codegen, which neither fuses
        // nor CSEs across statements.
        let mut discovery = if options.target == Target::UnoptimizedCpu {
            pipelines::discovery_pipeline_unfused()
        } else {
            pipelines::discovery_pipeline()
        };
        if options.verify_each_pass {
            discovery.enable_verifier();
        }
        discovery.run(&mut fir)?;
        if options.verify_each_pass {
            fsc_dialects::verify::verify(&fir)?;
        }
        let mut stencil = fsc_passes::extract::extract_stencils(&mut fir)?;
        // Target-specific lowering of the stencil module.
        let mut pm = target_pipeline(options)?;
        if options.verify_each_pass {
            pm.enable_verifier();
        }
        pm.run(&mut stencil)?;
        if options.verify_each_pass {
            fsc_dialects::verify::verify(&stencil)?;
        }
        let kernels = compile_regions(&stencil)?;
        Ok(Compiled {
            fir_module: fir,
            stencil_module: Some(stencil),
            kernels,
            target: options.target.clone(),
            entry,
            degradation: DegradationReport::default(),
            tuning: None,
            dist_options: options.dist_options(),
        })
    }

    /// The hardened flow: walk the degradation ladder from the requested
    /// configuration down, re-compiling each rung from the pristine FIR.
    /// The bottom rung (direct FIR interpretation) cannot fail, so this
    /// only errors when a rung below the start was forced away.
    fn compile_ladder(fir: Module, entry: String, options: &CompileOptions) -> Result<Compiled> {
        let start = options.force_rung.unwrap_or(DegradationRung::Stencil);
        let mut attempts = Vec::new();
        for rung in [DegradationRung::Stencil, DegradationRung::ScfFallback] {
            if start > rung {
                continue;
            }
            match try_rung(&fir, options, rung) {
                Ok((fir_out, stencil, kernels)) => {
                    return Ok(Compiled {
                        fir_module: fir_out,
                        stencil_module: Some(stencil),
                        kernels,
                        target: options.target.clone(),
                        entry,
                        degradation: DegradationReport {
                            attempts,
                            ran: rung,
                        },
                        tuning: None,
                        dist_options: options.dist_options(),
                    });
                }
                Err(attempt) => attempts.push(*attempt),
            }
        }
        // Bottom rung: interpret the pristine FIR directly.
        Ok(Compiled {
            fir_module: fir,
            stencil_module: None,
            kernels: HashMap::new(),
            target: options.target.clone(),
            entry,
            degradation: DegradationReport {
                attempts,
                ran: DegradationRung::FirInterp,
            },
            tuning: None,
            dist_options: options.dist_options(),
        })
    }

    /// Convenience: compile and run.
    pub fn run(source: &str, options: &CompileOptions) -> Result<Execution> {
        Self::compile(source, options)?.run()
    }
}

/// Calibrate and install execution plans for a freshly compiled program.
/// The tuner sweeps candidates under the same thread configuration the
/// dispatcher will use at run time (an OpenMP target gets a matching
/// pool), so what wins calibration is what actually runs. Never fails —
/// problems degrade into coded diagnostics inside the report.
fn autotune_compiled(compiled: &mut Compiled, cfg: &TuneConfig) {
    let (threads, pool) = match &compiled.target {
        Target::StencilOpenMp { threads } => {
            let mut b = rayon::ThreadPoolBuilder::new();
            if *threads > 0 {
                b = b.num_threads(*threads as usize);
            }
            match b.build() {
                Ok(p) => {
                    let t = p.current_num_threads();
                    (t, Some(p))
                }
                Err(_) => (1, None),
            }
        }
        _ => (1, None),
    };
    // Deterministic tuning order (HashMap iteration order is not).
    let mut kernels: Vec<(&String, &mut CompiledKernel)> = compiled.kernels.iter_mut().collect();
    kernels.sort_by(|a, b| a.0.cmp(b.0));
    let report = autotune::tune_kernels(
        kernels.into_iter().map(|(_, k)| k),
        threads,
        pool.as_ref(),
        cfg,
    );
    compiled.tuning = Some(report);
}

/// Build the target-specific stencil-module pipeline.
fn target_pipeline(options: &CompileOptions) -> Result<fsc_ir::PassManager> {
    match &options.target {
        Target::FlangOnly => Err(IrError::new("Flang-only target has no stencil pipeline")),
        Target::UnoptimizedCpu => pipelines::unoptimized_cpu_pipeline(),
        Target::StencilCpu => pipelines::cpu_pipeline(),
        Target::StencilOpenMp { threads } => pipelines::openmp_pipeline(*threads),
        Target::StencilGpu {
            explicit_data,
            tile,
        } => pipelines::gpu_pipeline(*explicit_data, tile),
        Target::StencilDistributed { grid } => {
            pipelines::dmp_pipeline_deep(grid, options.overlap_halos, options.halo_depth)
        }
        Target::StencilMultiGpu { grid, tile } => pipelines::gpu_dmp_pipeline(grid, tile),
    }
}

/// Compile every extracted `stencil_region_*` function of a lowered module.
fn compile_regions(stencil: &Module) -> Result<HashMap<String, CompiledKernel>> {
    let mut kernels = HashMap::new();
    for f in stencil.top_level_ops_named("func.func") {
        let name = fsc_dialects::func::FuncOp(f).name(stencil);
        if name.starts_with("stencil_region_") {
            kernels.insert(name.clone(), kernel::compile_kernel(stencil, &name)?);
        }
    }
    Ok(kernels)
}

/// Run `f` with panics contained: a panic becomes an `E0502` diagnostic.
fn guarded<T>(stage: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(IrError::from_diagnostic(Diagnostic::error(
            codes::PASS_PANICKED,
            format!("{stage} panicked: {}", payload_message(payload.as_ref())),
        ))),
    }
}

/// Attempt one ladder rung from the pristine FIR. On success returns the
/// rewritten FIR module, the lowered stencil module and the compiled
/// kernels; on failure, a [`RungAttempt`] saying where and why.
fn try_rung(
    pristine: &Module,
    options: &CompileOptions,
    rung: DegradationRung,
) -> std::result::Result<(Module, Module, HashMap<String, CompiledKernel>), Box<RungAttempt>> {
    let attempt = |stage: &str, failed_pass: Option<String>, diags: Vec<Diagnostic>| {
        Box::new(RungAttempt {
            rung,
            stage: stage.to_string(),
            failed_pass,
            diagnostics: diags,
        })
    };
    let harden = |pm: fsc_ir::PassManager| {
        let mut hp = HardenedPipeline::new(pm);
        if let Some(name) = &options.sabotage_pass {
            hp = hp.sabotage_pass(name.clone());
        }
        hp
    };

    let mut fir = pristine.clone();
    let discovery = if options.target == Target::UnoptimizedCpu {
        pipelines::discovery_pipeline_unfused()
    } else {
        pipelines::discovery_pipeline()
    };
    let report = harden(discovery).run(&mut fir);
    if let Some(f) = report.failure {
        return Err(attempt("discovery", Some(f.pass), f.diagnostics));
    }

    let mut stencil = guarded("stencil extraction", || {
        fsc_passes::extract::extract_stencils(&mut fir)
    })
    .map_err(|e| attempt("extract", None, error_diags(e)))?;

    let pm = match rung {
        DegradationRung::Stencil => target_pipeline(options),
        DegradationRung::ScfFallback => pipelines::scf_fallback_pipeline(),
        DegradationRung::FirInterp => Err(IrError::new("FIR interpretation runs no pipeline")),
    }
    .map_err(|e| attempt("target-pipeline", None, error_diags(e)))?;
    let report = harden(pm).run(&mut stencil);
    if let Some(f) = report.failure {
        return Err(attempt("target-pipeline", Some(f.pass), f.diagnostics));
    }

    let kernels = guarded("kernel compilation", || compile_regions(&stencil))
        .map_err(|e| attempt("kernel-compile", None, error_diags(e)))?;
    Ok((fir, stencil, kernels))
}

/// The diagnostics of an error, synthesising one (code `E0601`-free, plain
/// message) when the error carries none.
fn error_diags(e: IrError) -> Vec<Diagnostic> {
    if e.diagnostics.is_empty() {
        vec![Diagnostic::error(codes::PASS_FAILED, e.message)]
    } else {
        e.diagnostics
    }
}

fn find_program(m: &Module) -> Result<String> {
    m.top_level_ops_named("func.func")
        .into_iter()
        .map(fsc_dialects::func::FuncOp)
        .find(|f| m.op(f.0).attr(fsc_fortran::lower::PROGRAM_ATTR).is_some())
        .map(|f| f.name(m))
        .ok_or_else(|| IrError::new("no program unit in source"))
}

impl Compiled {
    /// Execute the program, returning memory and accounting. Distributed
    /// targets run their halo exchanges on the resilient transport with a
    /// fault-free plan (the protocol overhead is charged and attested).
    pub fn run(&self) -> Result<Execution> {
        self.run_inner(None, None)
    }

    /// Execute under a byte ledger: every buffer allocation — interpreter
    /// arrays, kernel snapshots, distributed per-rank replication — must
    /// reserve against `budget` first, and a denied reservation fails the
    /// run with coded `E0805` instead of aborting the process. The run's
    /// static estimate and the ledger's measured peak are attested in the
    /// report, so callers can verify `peak_bytes <= estimate.total()`.
    pub fn run_governed(&self, budget: Arc<MemoryBudget>) -> Result<Execution> {
        let estimate = self.estimate()?;
        let mut exec = self.run_inner(None, Some(budget))?;
        exec.report.estimate = Some(estimate);
        Ok(exec)
    }

    /// Static memory footprint of running this compiled program, from IR
    /// view bounds alone — no execution. Conservative by construction
    /// (sums over kernels that release scratch between dispatches), so a
    /// governed run's measured peak is bounded by `estimate().total()`.
    /// Fails coded `E0807` when any extent product overflows.
    pub fn estimate(&self) -> Result<MemoryEstimate> {
        // Program arrays the FIR interpreter will allocate.
        let mut base: u64 = 0;
        let mut walk_err: Option<IrError> = None;
        fsc_ir::walk::walk_module(&self.fir_module, &mut |op| {
            let data = self.fir_module.op(op);
            if !matches!(data.name.full(), "fir.alloca" | "fir.allocmem") {
                return;
            }
            if let Some(Type::FirArray { shape, .. }) =
                data.attr("in_type").and_then(Attribute::as_type)
            {
                match fsc_exec::budget::checked_elems(shape)
                    .and_then(fsc_exec::budget::elems_to_bytes)
                {
                    Ok(bytes) => base = base.saturating_add(bytes),
                    Err(e) => walk_err = Some(e),
                }
            }
        });
        if let Some(e) = walk_err {
            return Err(e);
        }

        let ranks: u64 = match &self.target {
            Target::StencilDistributed { grid } | Target::StencilMultiGpu { grid, .. } => {
                grid.iter().product::<i64>().max(1) as u64
            }
            _ => 1,
        };
        let mut snapshot: u64 = 0;
        let mut halo: u64 = 0;
        let mut replication: u64 = 0;
        let mut scratch: u64 = 0;
        for kernel in self.kernels.values() {
            // Per-argument working-set bytes (max aliasing view per arg).
            let mut arg_len: HashMap<usize, usize> = HashMap::new();
            let mut snap_bytes: u64 = 0;
            for view in &kernel.views {
                let len = view.checked_len()?;
                match view.source {
                    ViewSource::Arg(i) => {
                        let e = arg_len.entry(i).or_insert(0);
                        *e = (*e).max(len);
                    }
                    ViewSource::SnapshotOf(_) => {
                        snap_bytes =
                            snap_bytes.saturating_add(fsc_exec::budget::elems_to_bytes(len)?);
                    }
                }
            }
            let arg_bytes: u64 = arg_len
                .values()
                .map(|&l| (l as u64).saturating_mul(8))
                .fold(0u64, u64::saturating_add);
            snapshot = snapshot.saturating_add(snap_bytes);
            // Halo staging: dense pack + unpack payloads per exchange.
            for nest in &kernel.nests {
                for e in &nest.exchanges {
                    let view = &kernel.views[e.view];
                    let elems = view.checked_len()? as u64;
                    let extent = view.extents.get(e.dim).copied().unwrap_or(1).max(1) as u64;
                    let face = (elems / extent).saturating_mul(e.width.max(1) as u64);
                    halo = halo.saturating_add(face.saturating_mul(8 * 2));
                }
            }
            // Distributed replication: every real rank holds full-size,
            // globally addressed copies of the argument and snapshot
            // buffers, plus per-phase checkpoint clones of each (~2x).
            if kernel.is_distributed() {
                let real_ranks = ranks.min(32);
                replication = replication.saturating_add(
                    real_ranks.saturating_mul(arg_bytes.saturating_add(snap_bytes) * 2),
                );
            }
            // Autotune calibration scratch: arg-shaped buffers plus the
            // snapshots run_kernel allocates during timing sweeps.
            if self.tuning.is_some() {
                scratch = scratch.saturating_add(arg_bytes.saturating_add(snap_bytes));
            }
        }
        Ok(MemoryEstimate {
            base_bytes: base,
            snapshot_bytes: snapshot,
            halo_bytes: halo,
            replication_bytes: replication,
            scratch_bytes: scratch,
            // Interpreter slack: scalar slots, environments, bookkeeping.
            slack_bytes: 1 << 20,
        })
    }

    /// Heuristic in-memory size of this artifact (modules + compiled
    /// kernels), for byte-accounted artifact caching. Stable for a given
    /// compile; cheap to compute.
    pub fn approx_bytes(&self) -> u64 {
        let mut ops = 0u64;
        fsc_ir::walk::walk_module(&self.fir_module, &mut |_| ops += 1);
        if let Some(s) = &self.stencil_module {
            fsc_ir::walk::walk_module(s, &mut |_| ops += 1);
        }
        let mut kernel_bytes = 0u64;
        for k in self.kernels.values() {
            for n in &k.nests {
                kernel_bytes += (n.program.instrs.len() as u64).saturating_mul(2 * 64);
            }
            kernel_bytes += (k.views.len() as u64).saturating_mul(96);
        }
        ops.saturating_mul(96)
            .saturating_add(kernel_bytes)
            .saturating_add(1024)
    }

    /// Execute under a fault-injection plan: every distributed kernel
    /// dispatch drives a real resilient halo-exchange round through the
    /// simulated MPI substrate with `plan`'s faults injected; recovery
    /// traffic is charged to the distributed cost and attested in
    /// [`RunReport::resilience`]. Non-distributed targets ignore the plan.
    pub fn run_with_faults(&self, plan: FaultPlan) -> Result<Execution> {
        plan.validate()
            .map_err(|e| IrError::new(format!("invalid fault plan: {e}")))?;
        self.run_inner(Some(plan), None)
    }

    fn run_inner(
        &self,
        plan: Option<FaultPlan>,
        budget: Option<Arc<MemoryBudget>>,
    ) -> Result<Execution> {
        let mut dispatcher = KernelDispatcher::new(&self.kernels, &self.target);
        dispatcher.dist_options = self.dist_options.clone();
        if let Some(plan) = plan {
            dispatcher.fault_plan = plan;
        }
        let start = Instant::now();
        let mut interp = Interpreter::new(&self.fir_module, dispatcher);
        if let Some(b) = &budget {
            interp.memory = fsc_exec::Memory::with_budget(Arc::clone(b));
        }
        interp.run_func(&self.entry, vec![])?;
        let wall = start.elapsed();

        // Gather array bindings before dismantling the interpreter.
        let mut bindings = HashMap::new();
        for name in array_names(&self.fir_module) {
            if let Some(r) = interp.array_binding(&name) {
                bindings.insert(name, r);
            }
        }
        let (memory, stats, mut dispatcher) = interp.into_parts();
        let (gpu_seconds, gpu_counters) = dispatcher.finalize();
        let is_distributed = dispatcher.grid.is_some();
        let report = RunReport {
            wall,
            kernel_wall: dispatcher.kernel_wall,
            kernel_cells: dispatcher.cells,
            interp: stats,
            gpu_seconds,
            gpu: gpu_counters,
            distributed_seconds: is_distributed.then_some(dispatcher.distributed_seconds),
            ranks: dispatcher.grid.as_ref().map(ProcessGrid::size),
            distributed: is_distributed.then(|| {
                let mut d = dispatcher.dist.clone();
                d.ranks = dispatcher.grid.as_ref().map(ProcessGrid::size).unwrap_or(0);
                d
            }),
            exec_paths: dispatcher.exec_paths.iter().copied().collect(),
            jit_artifacts: dispatcher.jit_artifacts.iter().copied().collect(),
            jit_warnings: self
                .kernels
                .values()
                .flat_map(|k| k.jit_warnings.iter().cloned())
                .collect(),
            resilience: is_distributed.then_some(dispatcher.resilience),
            degradation: self.degradation.clone(),
            plans: dispatcher.plans.iter().cloned().collect(),
            tuning: self.tuning.clone(),
            estimate: None,
            peak_bytes: budget
                .as_ref()
                .map(|b| b.peak())
                .unwrap_or(0)
                .max(memory.peak_bytes()),
        };
        Ok(Execution {
            memory,
            report,
            bindings,
        })
    }
}

/// Names of all Fortran arrays in the module (from allocation attributes).
fn array_names(m: &Module) -> Vec<String> {
    let mut out = Vec::new();
    fsc_ir::walk::walk_module(m, &mut |op| {
        let data = m.op(op);
        if matches!(data.name.full(), "fir.alloca" | "fir.allocmem") {
            if let Some(name) = data.attr("bindc_name").and_then(|a| a.as_str()) {
                if !out.contains(&name.to_string()) {
                    out.push(name.to_string());
                }
            }
        }
    });
    out
}

/// Dispatches `fir.call @stencil_region_N` to compiled kernels, routing by
/// target and accumulating per-target accounting.
pub struct KernelDispatcher<'k> {
    kernels: &'k HashMap<String, CompiledKernel>,
    pool: Option<rayon::ThreadPool>,
    threads: usize,
    gpu: Option<GpuSession>,
    cost: CostModel,
    /// Execute kernels with the naive (Flang-like) runner.
    naive: bool,
    /// Process grid of a distributed target.
    pub grid: Option<ProcessGrid>,
    /// Wall time spent in kernels.
    pub kernel_wall: Duration,
    /// Total cells processed.
    pub cells: u64,
    /// Distributed seconds: measured makespans (real dispatches) plus
    /// modeled time (fallback dispatches).
    pub distributed_seconds: f64,
    /// Accumulated real-execution attestation (distributed targets).
    pub dist: DistributedReport,
    /// Distinct execution paths observed across dispatched nests (only
    /// recorded for runs through the optimised runner).
    pub exec_paths: std::collections::BTreeSet<ExecPath>,
    /// Distinct execution plans observed across dispatched nests (only
    /// recorded for runs through the optimised runner).
    pub plans: std::collections::BTreeSet<ExecPlan>,
    /// Distinct jit artifact sources observed across dispatched nests.
    pub jit_artifacts: std::collections::BTreeSet<JitArtifact>,
    /// Fault plan injected into the resilient halo transport (distributed
    /// targets; defaults to a fault-free plan).
    pub fault_plan: FaultPlan,
    /// Accumulated fault/recovery counters from the resilient transport.
    pub resilience: FaultStats,
    /// Distributed kernel dispatches seen so far — the "iteration" index a
    /// planned rank crash is matched against.
    dispatch_index: usize,
    /// Substrate/worker/aggregation knobs for distributed dispatches.
    pub dist_options: DistOptions,
    /// Open deep-halo amortisation windows, keyed by kernel name: a kernel
    /// compiled with `halo_depth = k` exchanges on one dispatch and runs
    /// the next `k − 1` communication-free from its session.
    deep_sessions: HashMap<String, DeepHaloSession>,
    /// Buffers written on the device (for final d2h accounting).
    written_buffers: HashMap<u64, u64>,
}

impl<'k> KernelDispatcher<'k> {
    /// New dispatcher for a target.
    pub fn new(kernels: &'k HashMap<String, CompiledKernel>, target: &Target) -> Self {
        let (pool, threads) = match target {
            Target::StencilOpenMp { threads } => {
                let mut b = rayon::ThreadPoolBuilder::new();
                if *threads > 0 {
                    b = b.num_threads(*threads as usize);
                }
                let pool = b.build().expect("thread pool");
                let t = pool.current_num_threads();
                (Some(pool), t)
            }
            Target::StencilDistributed { grid } => {
                let ranks: i64 = grid.iter().product();
                let workers = (ranks as usize).min(num_cpus_max());
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers.max(1))
                    .build()
                    .expect("thread pool");
                (Some(pool), workers.max(1))
            }
            _ => (None, 1),
        };
        let gpu = match target {
            Target::StencilGpu { .. } | Target::StencilMultiGpu { .. } => {
                Some(GpuSession::new(V100Model::default()))
            }
            _ => None,
        };
        let grid = match target {
            Target::StencilDistributed { grid } | Target::StencilMultiGpu { grid, .. } => {
                Some(ProcessGrid::new(grid.clone()))
            }
            _ => None,
        };
        Self {
            kernels,
            pool,
            threads,
            gpu,
            cost: CostModel::default(),
            naive: matches!(target, Target::UnoptimizedCpu),
            grid,
            kernel_wall: Duration::ZERO,
            cells: 0,
            distributed_seconds: 0.0,
            dist: DistributedReport::default(),
            exec_paths: std::collections::BTreeSet::new(),
            plans: std::collections::BTreeSet::new(),
            jit_artifacts: std::collections::BTreeSet::new(),
            fault_plan: FaultPlan::none(0xF5C),
            resilience: FaultStats::default(),
            dispatch_index: 0,
            dist_options: DistOptions::default(),
            deep_sessions: HashMap::new(),
            written_buffers: HashMap::new(),
        }
    }

    /// Final GPU accounting: lazy device→host transfers for written buffers.
    pub fn finalize(&mut self) -> (Option<f64>, Option<GpuCounters>) {
        if let Some(gpu) = &mut self.gpu {
            let written: Vec<(u64, u64)> =
                self.written_buffers.iter().map(|(&k, &v)| (k, v)).collect();
            for (id, bytes) in written {
                gpu.host_access(id, bytes);
            }
            (Some(gpu.elapsed()), Some(gpu.counters))
        } else {
            (None, None)
        }
    }

    /// Drive one real resilient halo-exchange round through the simulated
    /// MPI substrate for a distributed kernel dispatch: a capped-size rank
    /// group exchanges face-sized payloads under `fault_plan` (sequence
    /// numbers, acks, retransmits, checkpoints, crash/restore), the
    /// fault/recovery counters are merged into `self.resilience`, and the
    /// per-rank recovery traffic is charged via the cost model. Returns the
    /// modeled resilience seconds added to the distributed time. `dispatch`
    /// is the dispatch index a planned crash is matched against.
    fn charge_resilient_exchange(
        &mut self,
        kernel: &CompiledKernel,
        dispatch: usize,
    ) -> Result<f64> {
        let grid = self.grid.as_ref().expect("distributed target has a grid");
        let gsize = grid.size() as usize;
        let face = kernel
            .nests
            .iter()
            .filter(|n| !n.exchanges.is_empty())
            .map(|n| face_bytes(n, grid))
            .max()
            .unwrap_or(0);
        if face == 0 {
            return Ok(0.0);
        }
        // The micro-sim group is capped: the protocol behaviour (per-link
        // seq/ack/retry, neighbour checkpointing) is rank-count independent,
        // so a small group attests it faithfully without spawning hundreds
        // of threads per dispatch.
        let sim_ranks = gsize.clamp(2, 8);
        let elems = ((face / 8).max(1) as usize).min(4096);
        // A planned crash fires on the dispatch whose index matches
        // `at_iteration`; inside the micro-sim it hits iteration 1 so a
        // checkpoint (taken at 0) exists to restore from.
        let mut plan = self.fault_plan.clone();
        plan.crash = match plan.crash {
            Some(c) if c.at_iteration == dispatch => Some(CrashSpec {
                rank: c.rank.min(sim_ranks - 1),
                at_iteration: 1,
            }),
            _ => None,
        };
        let cfg = ResilientConfig {
            checkpoint_interval: 1,
            ..ResilientConfig::default()
        };
        const SIM_ITERS: usize = 2;
        let results = run_resilient(sim_ranks, plan, cfg, move |ctx| {
            let (rank, size) = (ctx.rank(), ctx.size());
            let mut field = vec![rank as f64 + 1.0; elems];
            let mut it = 0usize;
            while it < SIM_ITERS {
                ctx.save_checkpoint(it, std::slice::from_ref(&field));
                if ctx.crash_pending(it) {
                    let (restored, state) = ctx.crash_and_restore(it)?;
                    it = restored;
                    field = state.into_iter().next().expect("checkpointed field");
                    continue;
                }
                if rank > 0 {
                    ctx.send(rank - 1, 0, field.clone());
                }
                if rank + 1 < size {
                    ctx.send(rank + 1, 1, field.clone());
                }
                if rank > 0 {
                    let left = ctx.recv(rank - 1, 1)?;
                    for (a, b) in field.iter_mut().zip(&left) {
                        *a = 0.5 * (*a + *b);
                    }
                }
                if rank + 1 < size {
                    let right = ctx.recv(rank + 1, 0)?;
                    for (a, b) in field.iter_mut().zip(&right) {
                        *a = 0.5 * (*a + *b);
                    }
                }
                ctx.barrier()?;
                it += 1;
            }
            Ok(())
        })
        .map_err(|e| match e.into_compile_error() {
            // A compiler error that surfaced inside a rank body keeps its
            // coded diagnostics (annotated with the failing rank).
            Ok(compile_err) => compile_err,
            Err(other) => IrError::new(format!("resilient halo exchange failed: {other}")),
        })?;
        let mut merged = FaultStats::default();
        for ((), s) in results {
            merged.merge(&s);
        }
        // Charge the per-rank critical path: total recovery traffic spread
        // over the group that generated it.
        let overhead = self.cost.resilience_time(&merged, face) / sim_ranks as f64;
        self.resilience.merge(&merged);
        Ok(overhead)
    }

    /// Modeled halo-communication seconds for one dispatch of `kernel`
    /// over `grid` (`offnode` = fraction of neighbour links crossing
    /// nodes).
    fn modeled_comm(&self, kernel: &CompiledKernel, grid: &ProcessGrid, offnode: f64) -> f64 {
        let mut comm = 0.0;
        for nest in &kernel.nests {
            if nest.exchanges.is_empty() {
                continue;
            }
            let neighbors = nest
                .exchanges
                .iter()
                .map(|e| (e.dim, e.direction))
                .collect::<std::collections::HashSet<_>>()
                .len();
            comm += self
                .cost
                .halo_exchange_time(face_bytes(nest, grid), neighbors, offnode);
        }
        comm
    }

    /// Fold one real distributed dispatch into the accumulated attestation.
    fn record_distributed(&mut self, kernel: &CompiledKernel, outcome: &DistOutcome) {
        let grid = self.grid.as_ref().expect("distributed target has a grid");
        let modeled_comm = self.modeled_comm(kernel, grid, self.cost.offnode_fraction(grid));
        let ranks = grid.size();
        let d = &mut self.dist;
        d.ranks = ranks;
        d.dispatches += 1;
        // A single blocking nest demotes the whole run's attested schedule.
        d.schedule = Some(match (d.schedule, outcome.schedule) {
            (Some(HaloSchedule::Blocking), _) | (_, HaloSchedule::Blocking) => {
                HaloSchedule::Blocking
            }
            _ => HaloSchedule::Overlap,
        });
        if d.per_rank_wall.len() != outcome.per_rank.len() {
            d.per_rank_wall = vec![0.0; outcome.per_rank.len()];
        }
        let mut compute = 0.0;
        for (acc, r) in d.per_rank_wall.iter_mut().zip(&outcome.per_rank) {
            *acc += r.wall_seconds;
            d.pack_seconds += r.pack_seconds;
            d.interior_seconds += r.interior_seconds;
            d.wait_seconds += r.wait_seconds;
            d.boundary_seconds += r.boundary_seconds;
            compute += r.interior_seconds + r.boundary_seconds;
        }
        d.bytes_exchanged += outcome.bytes_exchanged;
        d.messages += outcome.messages;
        d.measured_seconds += outcome.makespan_seconds;
        d.modeled_seconds += compute / ranks.max(1) as f64 + modeled_comm;
        DistProvenance::fold(&mut d.provenance, DistProvenance::Measured);
        d.scheduler = Some(outcome.scheduler);
        d.workers = d.workers.max(outcome.workers);
        d.steals += outcome.steals;
        d.parks += outcome.parks;
        d.logical_messages += outcome.logical_messages;
        d.physical_messages += outcome.physical_messages;
        d.logical_bytes += outcome.logical_bytes;
        d.physical_bytes += outcome.physical_bytes;
        d.halo_depth = d.halo_depth.max(outcome.halo_depth);
        d.exchange_rounds += outcome.exchange_rounds;
    }

    /// A fault plan for one dispatch: a planned crash fires on the
    /// dispatch whose index matches `at_iteration`, and inside that
    /// dispatch it hits phase 1 — after the phase-0 checkpoint exists to
    /// restore from.
    fn dispatch_plan(&self, dispatch: usize, ranks: usize) -> FaultPlan {
        let mut plan = self.fault_plan.clone();
        plan.crash = match plan.crash {
            Some(c) if c.at_iteration == dispatch => Some(CrashSpec {
                rank: c.rank.min(ranks.saturating_sub(1)),
                at_iteration: 1,
            }),
            _ => None,
        };
        plan
    }

    fn convert_args(args: &[Value]) -> Result<Vec<KernelArg>> {
        args.iter()
            .map(|v| match v {
                Value::Ref(Ref::Array { buf, .. }) => Ok(KernelArg::Buf(*buf)),
                Value::Ref(Ref::Elem { buf, linear: 0 }) => Ok(KernelArg::Buf(*buf)),
                Value::F64(f) => Ok(KernelArg::Scalar(*f)),
                Value::I32(i) => Ok(KernelArg::Scalar(*i as f64)),
                Value::I64(i) | Value::Index(i) => Ok(KernelArg::Scalar(*i as f64)),
                other => Err(IrError::new(format!(
                    "cannot pass {other:?} to a stencil region"
                ))),
            })
            .collect()
    }
}

fn num_cpus_max() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
}

impl<'k> RegionDispatcher for KernelDispatcher<'k> {
    fn call(&mut self, callee: &str, args: &[Value], memory: &mut Memory) -> Result<()> {
        let kernel = self
            .kernels
            .get(callee)
            .ok_or_else(|| IrError::new(format!("no compiled kernel '{callee}'")))?;
        let kargs = Self::convert_args(args)?;
        let start = Instant::now();
        match &kernel.kind {
            PlanKind::Cpu => {
                if kernel.is_distributed() {
                    let grid = self.grid.clone().expect("distributed target has a grid");
                    let dispatch = self.dispatch_index;
                    self.dispatch_index += 1;
                    let plan = self.dispatch_plan(dispatch, grid.size() as usize);
                    let mut session = self.deep_sessions.remove(callee);
                    let ran = distexec::run_distributed(
                        kernel,
                        memory,
                        &kargs,
                        &grid,
                        plan,
                        &self.dist_options,
                        &mut session,
                    )?;
                    if let Some(s) = session {
                        self.deep_sessions.insert(callee.to_string(), s);
                    }
                    match ran {
                        Some(outcome) => {
                            // Real distributed execution: every rank ran the
                            // kernel over its owned block with measured halo
                            // traffic. The makespan is the measured
                            // distributed time; the cost model rides along
                            // as a cross-check inside the report.
                            self.resilience.merge(&outcome.fault_stats);
                            self.distributed_seconds += outcome.makespan_seconds;
                            self.record_distributed(kernel, &outcome);
                        }
                        None => {
                            // Outside the supported shape: execute locally
                            // and charge the modeled distributed iteration
                            // (per-rank compute + halo communication), with
                            // the resilient-transport micro-sim attesting
                            // the protocol.
                            kernel::run_kernel(
                                kernel,
                                memory,
                                &kargs,
                                self.threads,
                                self.pool.as_ref(),
                            )?;
                            let elapsed = start.elapsed().as_secs_f64();
                            let ranks = grid.size() as f64;
                            let compute = elapsed * self.threads as f64 / ranks;
                            let comm =
                                self.modeled_comm(kernel, &grid, self.cost.offnode_fraction(&grid));
                            self.distributed_seconds += compute + comm;
                            self.distributed_seconds +=
                                self.charge_resilient_exchange(kernel, dispatch)?;
                            DistProvenance::fold(
                                &mut self.dist.provenance,
                                DistProvenance::Modeled,
                            );
                            self.dist.modeled_dispatches += 1;
                        }
                    }
                } else if self.naive {
                    kernel::run_kernel_naive(kernel, memory, &kargs)?;
                } else {
                    kernel::run_kernel(kernel, memory, &kargs, 1, None)?;
                }
            }
            PlanKind::Omp { num_threads } => {
                let pool = self
                    .pool
                    .as_ref()
                    .ok_or_else(|| IrError::new("omp kernel dispatched without a thread pool"))?;
                let t = if *num_threads > 0 {
                    *num_threads
                } else {
                    self.threads
                };
                kernel::run_kernel(kernel, memory, &kargs, t, Some(pool))?;
            }
            PlanKind::Gpu {
                block,
                strategy,
                read_args,
                written_args,
                ..
            } => {
                // Execute on CPU for correctness, charge the V100 model.
                // Multi-GPU plans (future-work avenue 5) split the domain
                // over `ranks` devices: each device sees 1/ranks of the
                // work and buffers, and pays the halo exchange per
                // iteration; the makespan is per-device time + comm.
                kernel::run_kernel(kernel, memory, &kargs, 1, None)?;
                let ranks = if kernel.is_distributed() {
                    self.grid
                        .as_ref()
                        .map(|g| g.size() as u64)
                        .unwrap_or(1)
                        .max(1)
                } else {
                    1
                };
                let gpu = self.gpu.as_mut().expect("gpu session for gpu target");
                let stats = kernel.stats();
                let load = KernelLoad {
                    cells: stats.cells / ranks,
                    flops: stats.flops / ranks,
                    bytes_read: stats.bytes_read / ranks,
                    bytes_written: stats.bytes_written / ranks,
                };
                let mut uses = Vec::new();
                for (i, ka) in kargs.iter().enumerate() {
                    if let KernelArg::Buf(b) = ka {
                        let bytes = (memory.buffer(*b).len() * 8) as u64 / ranks;
                        let read = read_args.contains(&i);
                        let written = written_args.contains(&i);
                        if written {
                            self.written_buffers.insert(b.0 as u64, bytes);
                        }
                        uses.push(BufferUse {
                            id: b.0 as u64,
                            bytes,
                            read,
                            written,
                        });
                    }
                }
                let model_strategy = match strategy {
                    GpuStrategy::HostRegister => fsc_gpusim::Strategy::HostRegister,
                    GpuStrategy::Explicit => fsc_gpusim::Strategy::Explicit,
                };
                gpu.launch(load, *block, model_strategy, &uses);
                if kernel.is_distributed() && self.grid.is_some() {
                    // Inter-GPU halo exchange (host-staged over the
                    // interconnect; NVLink/GPUDirect would lower this —
                    // exactly the tuning §6 proposes).
                    let grid = self.grid.clone().expect("distributed target has a grid");
                    let dispatch = self.dispatch_index;
                    self.dispatch_index += 1;
                    self.distributed_seconds += self.modeled_comm(kernel, &grid, 1.0);
                    self.distributed_seconds += self.charge_resilient_exchange(kernel, dispatch)?;
                }
            }
        }
        // Attest which specialization tiers actually executed. The naive
        // runner models Flang's unoptimised codegen and bypasses the ladder
        // entirely, so it records nothing.
        if !self.naive {
            for nest in &kernel.nests {
                self.exec_paths.insert(nest.path);
                self.plans.insert(nest.plan.clone());
                if let Some(src) = nest.jit_source {
                    self.jit_artifacts.insert(src);
                }
            }
        }
        self.cells += kernel.stats().cells;
        self.kernel_wall += start.elapsed();
        Ok(())
    }
}

/// Halo face bytes of the largest exchange of one nest.
fn face_bytes(nest: &fsc_exec::kernel::Nest, grid: &ProcessGrid) -> u64 {
    // Per-rank face: the global face divided by the ranks along the other
    // decomposed dimensions, times the halo width.
    let cells = nest.domain_cells();
    let ranks = grid.size().max(1) as u64;
    nest.exchanges
        .iter()
        .map(|e| {
            let dim_extent = (nest.bounds[e.dim].1 - nest.bounds[e.dim].0).max(1) as u64;
            let global_face = cells / dim_extent;
            (global_face / ranks.max(1)).max(1) * e.width.max(1) as u64 * 8
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_program_requires_a_program_unit() {
        let m = fsc_fortran::compile_to_fir(
            "subroutine s(x)\nreal(kind=8), intent(inout) :: x\nx = 1.0\nend subroutine s",
        )
        .unwrap();
        assert!(find_program(&m).is_err());
    }

    #[test]
    fn flang_only_compiles_without_stencil_module() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        let c = Compiler::compile(
            &src,
            &CompileOptions {
                target: Target::FlangOnly,
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(c.stencil_module.is_none());
        assert!(c.kernels.is_empty());
        assert_eq!(c.entry, "gauss_seidel");
    }

    #[test]
    fn stencil_targets_produce_kernels() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        for target in [
            Target::StencilCpu,
            Target::UnoptimizedCpu,
            Target::StencilOpenMp { threads: 2 },
            Target::StencilGpu {
                explicit_data: true,
                tile: [4, 4, 1],
            },
            Target::StencilDistributed { grid: vec![2] },
            Target::StencilMultiGpu {
                grid: vec![2],
                tile: [4, 4, 1],
            },
        ] {
            let c = Compiler::compile(
                &src,
                &CompileOptions {
                    target: target.clone(),
                    verify_each_pass: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(!c.kernels.is_empty(), "{target:?} produced no kernels");
            assert!(c.stencil_module.is_some());
        }
    }

    #[test]
    fn convert_args_rejects_non_numeric() {
        use fsc_exec::value::{Ref, Value};
        let ok = KernelDispatcher::convert_args(&[Value::F64(1.0), Value::I32(2), Value::Index(3)])
            .unwrap();
        assert_eq!(ok.len(), 3);
        let bad =
            KernelDispatcher::convert_args(&[Value::Ref(Ref::Scalar(fsc_exec::value::SlotId(0)))]);
        assert!(bad.is_err());
    }

    #[test]
    fn distributed_report_carries_rank_count() {
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 1);
        let exec = Compiler::run(
            &src,
            &CompileOptions {
                target: Target::StencilDistributed { grid: vec![3, 2] },
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exec.report.ranks, Some(6));
    }

    #[test]
    fn verify_each_pass_accepts_all_targets() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        for target in [
            Target::StencilCpu,
            Target::StencilOpenMp { threads: 2 },
            Target::StencilGpu {
                explicit_data: true,
                tile: [4, 4, 1],
            },
            Target::StencilDistributed { grid: vec![2] },
        ] {
            let opts = CompileOptions {
                target,
                verify_each_pass: true,
                ..Default::default()
            };
            Compiler::compile(&src, &opts).unwrap();
        }
    }

    #[test]
    fn distributed_run_attests_resilient_transport_at_zero_faults() {
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 2);
        let exec = Compiler::run(
            &src,
            &CompileOptions::for_target(Target::StencilDistributed { grid: vec![2] }),
        )
        .unwrap();
        let res = exec
            .report
            .resilience
            .expect("distributed runs attest resilience");
        assert!(
            res.data_msgs > 0,
            "halo traffic must flow through the protocol"
        );
        assert_eq!(res.injected(), 0, "no faults were planned");
        assert_eq!(res.restores, 0);
        // Non-distributed targets carry no resilience report.
        let serial = Compiler::run(&src, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
        assert!(serial.report.resilience.is_none());
    }

    #[test]
    fn faulty_run_recovers_and_matches_fault_free_bitwise() {
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 3);
        let opts = CompileOptions::for_target(Target::StencilDistributed { grid: vec![2, 2] });
        let compiled = Compiler::compile(&src, &opts).unwrap();
        let clean = compiled.run().unwrap();
        let plan = FaultPlan::lossy(11, 0.10).with_crash(1, 1);
        let faulty = compiled.run_with_faults(plan).unwrap();
        let res = faulty.report.resilience.expect("resilience report");
        assert!(res.injected() > 0, "plan must inject faults");
        assert!(res.retries > 0, "drops must force retransmits");
        assert_eq!(res.injected_crashes, 1);
        assert_eq!(res.restores, 1, "crash must restore from checkpoint");
        let a = clean.array("u").expect("u array");
        let b = faulty.array("u").expect("u array");
        assert_eq!(a.len(), b.len());
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "faulty run must produce bit-identical results"
        );
        // Recovery traffic is charged: the faulty run models more
        // distributed seconds than the clean one.
        assert!(
            faulty.report.distributed_seconds.unwrap() > clean.report.distributed_seconds.unwrap()
        );
    }

    #[test]
    fn run_with_faults_rejects_invalid_plans() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        let opts = CompileOptions::for_target(Target::StencilDistributed { grid: vec![2] });
        let compiled = Compiler::compile(&src, &opts).unwrap();
        let mut plan = FaultPlan::none(0);
        plan.drop_prob = 1.5;
        assert!(compiled.run_with_faults(plan).is_err());
    }

    #[test]
    fn happy_path_never_degrades() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        for target in [
            Target::StencilCpu,
            Target::UnoptimizedCpu,
            Target::StencilOpenMp { threads: 2 },
            Target::StencilGpu {
                explicit_data: true,
                tile: [4, 4, 1],
            },
            Target::StencilDistributed { grid: vec![2] },
        ] {
            let c = Compiler::compile(&src, &CompileOptions::for_target(target.clone())).unwrap();
            assert!(
                c.degradation.attempts.is_empty(),
                "{target:?} degraded: {}",
                c.degradation.describe()
            );
            assert_eq!(c.degradation.ran, DegradationRung::Stencil);
            assert!(!c.degradation.degraded());
        }
    }

    #[test]
    fn sabotaged_pass_degrades_to_scf_rung_with_identical_results() {
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 2);
        let clean = Compiler::run(&src, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
        // `cse` only runs in the full CPU pipeline, not in the scf
        // fallback, so sabotaging it rejects exactly one rung.
        let opts = CompileOptions {
            sabotage_pass: Some("cse".into()),
            ..CompileOptions::for_target(Target::StencilCpu)
        };
        let degraded = Compiler::run(&src, &opts).unwrap();
        let report = &degraded.report.degradation;
        assert_eq!(
            report.ran,
            DegradationRung::ScfFallback,
            "{}",
            report.describe()
        );
        assert_eq!(report.attempts.len(), 1);
        let a = &report.attempts[0];
        assert_eq!(a.rung, DegradationRung::Stencil);
        assert_eq!(a.stage, "target-pipeline");
        assert_eq!(a.failed_pass.as_deref(), Some("cse"));
        assert!(
            a.diagnostics[0].render().contains("E0503"),
            "{}",
            a.diagnostics[0].render()
        );
        // Degraded execution still computes the same answer, bit for bit.
        let x = clean.array("u").unwrap();
        let y = degraded.array("u").unwrap();
        assert_eq!(x.len(), y.len());
        assert!(x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn sabotaging_a_shared_pass_lands_on_fir_interpretation() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        // `canonicalize` runs on both the full pipeline and the scf
        // fallback, so both stencil rungs are rejected.
        let opts = CompileOptions {
            sabotage_pass: Some("canonicalize".into()),
            ..CompileOptions::for_target(Target::StencilCpu)
        };
        let c = Compiler::compile(&src, &opts).unwrap();
        assert_eq!(c.degradation.ran, DegradationRung::FirInterp);
        assert_eq!(c.degradation.attempts.len(), 2);
        assert!(c.stencil_module.is_none());
        assert!(c.kernels.is_empty());
        // And it still runs — matching the Flang-only tier bitwise.
        let degraded = c.run().unwrap();
        let flang = Compiler::run(&src, &CompileOptions::for_target(Target::FlangOnly)).unwrap();
        let x = flang.array("u").unwrap();
        let y = degraded.array("u").unwrap();
        assert!(x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn forced_rungs_run_without_recording_failures() {
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 2);
        let base = Compiler::run(&src, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
        for rung in [DegradationRung::ScfFallback, DegradationRung::FirInterp] {
            let opts = CompileOptions {
                force_rung: Some(rung),
                ..CompileOptions::for_target(Target::StencilCpu)
            };
            let exec = Compiler::run(&src, &opts).unwrap();
            assert_eq!(exec.report.degradation.ran, rung);
            assert!(exec.report.degradation.attempts.is_empty());
            let x = base.array("u").unwrap();
            let y = exec.array("u").unwrap();
            assert!(
                x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits()),
                "rung {rung:?} diverged"
            );
        }
    }

    #[test]
    fn strict_mode_fails_fast_on_sabotage() {
        let src = fsc_workloads::gauss_seidel::fortran_source(4, 1);
        let opts = CompileOptions {
            harden: false,
            ..CompileOptions::for_target(Target::StencilCpu)
        };
        // Strict mode has no sabotage hook path — it compiles fine...
        assert!(Compiler::compile(&src, &opts).is_ok());
        // ...and hardened mode with an unknown sabotage name never fires.
        let opts = CompileOptions {
            sabotage_pass: Some("no-such-pass".into()),
            ..CompileOptions::for_target(Target::StencilCpu)
        };
        let c = Compiler::compile(&src, &opts).unwrap();
        assert!(c.degradation.attempts.is_empty());
    }

    #[test]
    fn every_run_attests_plan_provenance() {
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 1);
        let exec = Compiler::run(&src, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
        assert!(
            !exec.report.plans.is_empty(),
            "stencil runs must record their execution plans"
        );
        assert!(exec.report.attests_plan(PlanProvenance::Default));
        assert!(!exec.report.attests_plan(PlanProvenance::Tuned));
        assert!(exec.report.tuning.is_none(), "no tuning was requested");
        // The naive tier bypasses the plan machinery entirely.
        let naive =
            Compiler::run(&src, &CompileOptions::for_target(Target::UnoptimizedCpu)).unwrap();
        assert!(naive.report.plans.is_empty());
    }

    #[test]
    fn non_template_nests_run_on_the_jit_tier_bit_identically() {
        // Each Figure-8 kernel rejects the specialized templates (sqrt /
        // variable coefficient / min-max), so its compute sweep must land
        // on the stitched jit tier — while the copy sweep still runs
        // specialized — and every tier override must produce the same bits.
        for source in [
            fsc_workloads::jit_kernels::sqrt_source(6, 2),
            fsc_workloads::jit_kernels::varcoef_source(6, 2),
            fsc_workloads::jit_kernels::minmax_source(6, 2),
        ] {
            let exec = Compiler::run(&source, &CompileOptions::default()).unwrap();
            assert!(
                exec.report.attests(ExecPath::Jit),
                "compute sweep must run jit: {:?}",
                exec.report.exec_paths
            );
            assert!(
                !exec.report.jit_artifacts.is_empty(),
                "jit nests must attest their artifact source"
            );
            let reference: Vec<f64> = exec.array("u").unwrap().to_vec();
            for forced in [ExecPath::Jit, ExecPath::FusedVm, ExecPath::GenericVm] {
                let opts = CompileOptions {
                    force_exec_path: Some(forced),
                    ..CompileOptions::default()
                };
                let run = Compiler::run(&source, &opts).unwrap();
                assert!(run.report.attests(forced), "{forced} override must stick");
                let bits_equal = reference
                    .iter()
                    .zip(run.array("u").unwrap())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(bits_equal, "forced {forced} diverged from the default run");
            }
        }
    }

    #[test]
    fn jit_fallback_degrades_with_coded_warning_not_failure() {
        // A body with more than one store to the same view is a stitching
        // hazard (full-row passes would reorder the overwrites), so the
        // jit skips it: the nest runs on the fused VM, an E0705 warning is
        // attested, and the run still succeeds.
        let source = "program two_stores
  implicit none
  integer, parameter :: n = 8
  integer :: i
  real(kind=8) :: u(1:n), v(1:n)
  do i = 1, n
    v(i) = 0.5 * i
  end do
  do i = 2, n - 1
    u(i) = v(i) + v(i-1)
    u(i) = u(i) + 1.0
  end do
end program two_stores";
        let exec = Compiler::run(source, &CompileOptions::default()).unwrap();
        if exec
            .report
            .jit_warnings
            .iter()
            .any(|d| d.code == codes::JIT_FALLBACK)
        {
            // The degraded nest must have fallen down the ladder, not died.
            assert!(
                exec.report.attests(ExecPath::FusedVm)
                    || exec.report.attests(ExecPath::Specialized)
                    || exec.report.attests(ExecPath::Jit),
                "degraded program still runs: {:?}",
                exec.report.exec_paths
            );
        }
        assert!(exec.array("u").is_some());
    }

    fn tune_opts(dir: &std::path::Path, target: Target) -> CompileOptions {
        CompileOptions {
            autotune: Some(TuneConfig {
                cache_path: Some(dir.join("plans.json")),
                no_persist: false,
                reps: 1,
            }),
            ..CompileOptions::for_target(target)
        }
    }

    #[test]
    fn plan_cache_round_trip_attests_cached_provenance() {
        let dir = std::env::temp_dir().join("fsc-core-plancache-rt");
        let _ = std::fs::remove_dir_all(&dir);
        let src = fsc_workloads::gauss_seidel::fortran_source(8, 2);
        let opts = tune_opts(&dir, Target::StencilOpenMp { threads: 2 });
        let base = Compiler::run(
            &src,
            &CompileOptions::for_target(Target::StencilOpenMp { threads: 2 }),
        )
        .unwrap();

        // First compile: a fresh calibration sweep persists its winner.
        let tuned = Compiler::run(&src, &opts).unwrap();
        let report = tuned.report.tuning.as_ref().expect("tuning attestation");
        assert!(report.fresh_tunes() >= 1, "first compile must calibrate");
        assert!(tuned.report.attests_plan(PlanProvenance::Tuned));
        assert!(
            dir.join("plans.json").exists(),
            "winner must be persisted to the plan cache"
        );

        // Second compile (fresh process simulated by dropping the
        // in-process image): the persisted plan is reloaded and attested.
        autotune::reset_in_process_cache();
        let cached = Compiler::run(&src, &opts).unwrap();
        let report = cached.report.tuning.as_ref().expect("tuning attestation");
        assert!(report.cache_hits() >= 1, "reload must hit the cache");
        assert_eq!(report.fresh_tunes(), 0, "nothing should re-calibrate");
        assert!(cached.report.attests_plan(PlanProvenance::Cached));
        assert!(
            report.tuning_wall < std::time::Duration::from_millis(500),
            "cache hits must not pay calibration cost"
        );

        // All plan variants compute bit-identical results.
        let a = base.array("u").unwrap();
        for exec in [&tuned, &cached] {
            let b = exec.array("u").unwrap();
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "tuned/cached plans must be bit-identical to default"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_plan_cache_degrades_with_coded_diagnostic() {
        let dir = std::env::temp_dir().join("fsc-core-plancache-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("plans.json"), "{\"version\": 1, \"entr").unwrap();
        autotune::reset_in_process_cache();
        let src = fsc_workloads::gauss_seidel::fortran_source(6, 1);
        let opts = tune_opts(&dir, Target::StencilCpu);
        // Never a panic, never a failed run.
        let exec = Compiler::run(&src, &opts).unwrap();
        let report = exec.report.tuning.as_ref().expect("tuning attestation");
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == fsc_ir::diag::codes::PLAN_CACHE)
            .expect("corrupt cache must raise a coded E0702 diagnostic");
        assert!(diag.render().contains("E0702"), "{}", diag.render());
        // The corrupt file contributed nothing: no cached provenance.
        assert!(!exec.report.attests_plan(PlanProvenance::Cached));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn governed_run_peak_is_bounded_by_estimate() {
        let src = fsc_workloads::gauss_seidel::fortran_source(8, 2);
        for target in [
            Target::StencilCpu,
            Target::StencilOpenMp { threads: 2 },
            Target::StencilDistributed { grid: vec![2] },
        ] {
            let compiled =
                Compiler::compile(&src, &CompileOptions::for_target(target.clone())).unwrap();
            let est = compiled.estimate().unwrap();
            assert!(est.total() > 0, "{target:?} estimate must be non-trivial");
            let budget = fsc_exec::MemoryBudget::limited(est.total());
            let exec = compiled.run_governed(budget.clone()).unwrap();
            assert_eq!(exec.report.estimate, Some(est));
            assert!(exec.report.peak_bytes > 0, "{target:?} must attest a peak");
            assert!(
                exec.report.peak_bytes <= est.total(),
                "{target:?}: peak {} exceeds estimate {}",
                exec.report.peak_bytes,
                est.total()
            );
            // Governance never changes the answer.
            let plain = compiled.run().unwrap();
            let a = plain.array("u").unwrap();
            let b = exec.array("u").unwrap();
            assert!(
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{target:?}: governed run diverged"
            );
            // Dropping the execution returns every charge to the ledger.
            drop(exec);
            assert_eq!(budget.used(), 0, "{target:?}: ledger must drain");
        }
    }

    #[test]
    fn over_budget_run_fails_with_coded_error_not_abort() {
        let src = fsc_workloads::gauss_seidel::fortran_source(8, 1);
        let compiled =
            Compiler::compile(&src, &CompileOptions::for_target(Target::StencilCpu)).unwrap();
        let err = match compiled.run_governed(fsc_exec::MemoryBudget::limited(64)) {
            Err(e) => e,
            Ok(_) => panic!("a 64-byte budget must deny the run"),
        };
        assert!(
            err.diagnostics[0].render().contains("E0805"),
            "denial must carry E0805: {err}"
        );
    }

    #[test]
    fn array_lookup_by_name() {
        let src = "program t\nreal(kind=8) :: weird_name(3)\nweird_name(1) = 5.0\nend program t";
        let exec = Compiler::run(
            src,
            &CompileOptions {
                target: Target::FlangOnly,
                verify_each_pass: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(exec.array("weird_name").unwrap()[0], 5.0);
        assert!(exec.array("missing").is_none());
    }
}
