//! Compile sessions and the shared, singleflight compile service.
//!
//! This is the library layer behind compile-server mode (`fsc-serve`): a
//! [`CompileRequest`] names *what* to build (source + options, reduced to
//! a stable [`fingerprint`](CompileRequest::fingerprint)), a
//! [`CompileService`] is the process-wide build authority, and a
//! [`Session`] is one client's cheap handle onto it. The service gives
//! concurrent clients three guarantees:
//!
//! * **artifact sharing** — finished [`Compiled`] artifacts live in a
//!   bounded cache keyed by fingerprint and are handed out as
//!   `Arc<Compiled>`: a hit costs a map lookup, never a recompile.
//!   (`Compiled::run(&self)` takes `&self`, so any number of sessions can
//!   execute one artifact concurrently.)
//! * **singleflight deduplication** — when many sessions request the same
//!   fingerprint *at the same time*, exactly one of them (the leader)
//!   runs the compiler; the rest park on the leader's slot and receive
//!   the same `Arc` (or the same coded error). A thousand identical
//!   requests cost one compile.
//! * **attested outcomes** — every request reports how it was satisfied
//!   ([`ArtifactSource`]: fresh / deduped / cached) and what it cost, so
//!   the server's per-request attestation and `/stats` metrics are
//!   measurements, not guesses.
//!
//! **Failure containment** (DESIGN.md §11): slots are crash-safe. A
//! leader that times out or dies does not wedge its slot — an external
//! watchdog calls [`CompileService::abandon_stale`], every parked
//! follower is woken, and exactly one is promoted to leader under a fresh
//! slot. A follower whose own [`CompileRequest::deadline`] expires while
//! parked gets a coded `E0803` error instead of an unbounded wait. A
//! stale leader's late result is still cached (late ≠ wrong), it just no
//! longer owns the slot.
//!
//! Compile *errors* propagate to every deduplicated waiter but are not
//! cached: a later identical request recompiles. Errors from this
//! compiler are deterministic, so retries are wasted work in the common
//! case — but caching them would pin transient environment failures
//! (e.g. an unreadable plan-cache file) forever, which is worse.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{IrError, Result};

use crate::{CompileOptions, Compiled, Compiler, Execution};

/// One unit of work for the compile service: source text plus the full
/// compile configuration.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Fortran source text.
    pub source: String,
    /// Compile configuration (target, hardening, autotune, ...).
    pub options: CompileOptions,
    /// Optional time budget for *acquiring* the artifact. A deduplicated
    /// follower whose budget expires while parked on a leader's slot gets
    /// a coded `E0803` error instead of waiting forever. Leaders are not
    /// self-interrupting (a thread cannot abort its own compile); leader
    /// overruns are enforced externally via
    /// [`CompileService::abandon_stale`] (the server watchdog does this).
    /// Deliberately **excluded from the fingerprint**: two requests that
    /// differ only in budget must still dedupe onto one compile.
    pub deadline: Option<Duration>,
}

impl CompileRequest {
    /// A request for `source` with default options.
    pub fn new(source: impl Into<String>) -> Self {
        Self {
            source: source.into(),
            options: CompileOptions::default(),
            deadline: None,
        }
    }

    /// A request with explicit options.
    pub fn with_options(source: impl Into<String>, options: CompileOptions) -> Self {
        Self {
            source: source.into(),
            options,
            deadline: None,
        }
    }

    /// Attach an acquisition budget (see [`CompileRequest::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stable fingerprint of the request: FNV-1a-64 over the source bytes
    /// and the `Debug` rendering of the options (which covers every field,
    /// deterministically — targets, tiles, rung forcing, tune config).
    /// Identical fingerprints mean "the same compile would run", which is
    /// exactly the singleflight/caching equivalence the service needs.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in self.source.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        for &b in format!("{:?}", self.options).as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

/// How a request's artifact was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactSource {
    /// This request ran the compiler itself (it was the singleflight
    /// leader, or nothing identical was in flight).
    Fresh,
    /// An identical compile was already in flight; this request waited on
    /// it and shares its artifact.
    Deduped,
    /// Served from the bounded artifact cache — no compiler involvement.
    Cached,
}

impl ArtifactSource {
    /// Stable lowercase name (used in server responses and attestations).
    pub fn describe(self) -> &'static str {
        match self {
            ArtifactSource::Fresh => "fresh",
            ArtifactSource::Deduped => "deduped",
            ArtifactSource::Cached => "cached",
        }
    }
}

/// A satisfied compile request: the shared artifact plus the attestation
/// of how it was produced.
#[derive(Clone)]
pub struct CompileOutcome {
    /// The compiled program, shared with every other holder.
    pub compiled: Arc<Compiled>,
    /// The request fingerprint the artifact is keyed under.
    pub fingerprint: u64,
    /// How this particular request was satisfied.
    pub source: ArtifactSource,
    /// Wall-clock this request spent acquiring the artifact (compile time
    /// for the leader, wait time for deduped followers, ~zero for cache
    /// hits).
    pub wall: Duration,
}

/// Lifetime counters for a [`CompileService`] (monotonic; the server's
/// `/stats` endpoint snapshots them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Compiles actually executed (each unique fingerprint costs one,
    /// plus one per post-eviction or post-error retry).
    pub compiles: u64,
    /// Requests that parked behind an identical in-flight compile.
    pub dedup_waits: u64,
    /// Requests served straight from the artifact cache.
    pub artifact_hits: u64,
    /// Compiles that ended in an error.
    pub errors: u64,
    /// Followers whose deadline expired while parked (`E0803`).
    pub deadline_timeouts: u64,
    /// Singleflight slots reclaimed from a dead or overdue leader.
    pub abandoned_slots: u64,
    /// Leaders that finished after their slot had been reclaimed (their
    /// artifact is still cached; their slot ownership was gone).
    pub stale_publishes: u64,
    /// Estimated bytes currently held by the artifact cache (gauge).
    pub artifact_bytes: u64,
    /// Cumulative artifacts evicted from the cache (pressure + purges).
    pub evicted_artifacts: u64,
    /// Cumulative bytes evicted from the cache (pressure + purges).
    pub evicted_bytes: u64,
    /// Artifacts refused caching because they alone exceed the byte cap.
    pub oversize_rejects: u64,
}

impl ServiceMetrics {
    /// Fraction of requests that avoided running the compiler.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.compiles + self.dedup_waits + self.artifact_hits;
        if total == 0 {
            return 0.0;
        }
        (self.dedup_waits + self.artifact_hits) as f64 / total as f64
    }
}

/// State of one in-flight compile, shared between the leader and any
/// deduplicated followers.
enum SlotState {
    /// The leader is still compiling.
    Pending,
    /// The leader was declared dead (timed out or crashed) and the slot
    /// reclaimed: waiters must re-contend for leadership from scratch.
    /// A late publish from the stale leader still overwrites this with
    /// `Done`, so a waiter that has not yet re-contended can take the
    /// result anyway.
    Abandoned,
    /// The compile finished; followers take their copy from here.
    Done(std::result::Result<Arc<Compiled>, IrError>),
}

/// What a follower's wait ended with.
enum WaitOutcome {
    /// The leader published; here is the shared result.
    Done(std::result::Result<Arc<Compiled>, IrError>),
    /// The slot was reclaimed — go back and re-contend for leadership.
    Abandoned,
    /// The follower's own deadline expired while parked.
    TimedOut,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
    /// When the leader took the slot — the watchdog's staleness clock.
    started: Instant,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
            started: Instant::now(),
        }
    }

    fn publish(&self, result: std::result::Result<Arc<Compiled>, IrError>) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = SlotState::Done(result);
        self.ready.notify_all();
    }

    /// Flip a still-pending slot to `Abandoned` and wake every waiter.
    /// Returns false if the compile already finished (nothing to reclaim).
    fn abandon(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Abandoned;
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    /// Park until the slot resolves, the slot is reclaimed, or `deadline`
    /// passes (when one is set).
    fn wait(&self, deadline: Option<Instant>) -> WaitOutcome {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*state {
                SlotState::Done(result) => return WaitOutcome::Done(result.clone()),
                SlotState::Abandoned => return WaitOutcome::Abandoned,
                SlotState::Pending => match deadline {
                    None => {
                        state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return WaitOutcome::TimedOut;
                        }
                        let (s, timeout) = self
                            .ready
                            .wait_timeout(state, d - now)
                            .unwrap_or_else(|e| e.into_inner());
                        state = s;
                        if timeout.timed_out() && matches!(*state, SlotState::Pending) {
                            return WaitOutcome::TimedOut;
                        }
                    }
                },
            }
        }
    }
}

/// Bounded FIFO artifact cache. FIFO (not LRU) keeps eviction decisions
/// deterministic and the hot path a single map lookup; the cache exists
/// to absorb request storms for a working set of programs, not to be a
/// perfect reuse oracle.
///
/// The cache is bounded twice: by entry count *and* by estimated bytes
/// (each entry is charged its [`Compiled::approx_bytes`] at insert).
/// An artifact whose own size exceeds the byte ceiling is **not cached
/// at all** — admitting it would evict every other entry and still leave
/// the cache over budget, so the giant is served fresh each time and the
/// working set survives (`oversize_rejects` counts these).
struct ArtifactCache {
    capacity: usize,
    byte_capacity: u64,
    /// Estimated bytes currently retained (sum of per-entry charges).
    bytes: u64,
    /// Cumulative entries evicted (FIFO pressure and purges).
    evicted_artifacts: u64,
    /// Cumulative bytes evicted (FIFO pressure and purges).
    evicted_bytes: u64,
    /// Artifacts refused admission because they alone exceed the byte cap.
    oversize_rejects: u64,
    map: HashMap<u64, (Arc<Compiled>, u64)>,
    order: VecDeque<u64>,
}

impl ArtifactCache {
    fn new(capacity: usize, byte_capacity: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            byte_capacity: byte_capacity.max(1),
            bytes: 0,
            evicted_artifacts: 0,
            evicted_bytes: 0,
            oversize_rejects: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, fp: u64) -> Option<Arc<Compiled>> {
        self.map.get(&fp).map(|(artifact, _)| artifact.clone())
    }

    fn insert(&mut self, fp: u64, artifact: Arc<Compiled>, size: u64) {
        if self.map.contains_key(&fp) {
            return;
        }
        if size > self.byte_capacity {
            self.oversize_rejects += 1;
            return;
        }
        self.map.insert(fp, (artifact, size));
        self.order.push_back(fp);
        self.bytes = self.bytes.saturating_add(size);
        while self.order.len() > self.capacity || self.bytes > self.byte_capacity {
            let Some(&victim) = self.order.front() else {
                break;
            };
            if victim == fp {
                // The entry just admitted is never its own victim; it
                // fits (size <= byte_capacity), so the loop terminates.
                break;
            }
            self.order.pop_front();
            if let Some((_, sz)) = self.map.remove(&victim) {
                self.bytes = self.bytes.saturating_sub(sz);
                self.evicted_artifacts += 1;
                self.evicted_bytes += sz;
            }
        }
    }

    /// Drop every entry but keep the caps and the cumulative counters
    /// (a purge is an eviction of everything, and `/stats` must not go
    /// backwards).
    fn purge(&mut self) {
        self.evicted_artifacts += self.map.len() as u64;
        self.evicted_bytes += self.bytes;
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

/// The process-wide compile authority: a bounded artifact cache plus a
/// singleflight table of in-flight compiles. See the module docs for the
/// guarantees. Cheap to share (`Arc<CompileService>`); every [`Session`]
/// and every server worker holds the same instance.
pub struct CompileService {
    artifacts: Mutex<ArtifactCache>,
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    compiles: AtomicU64,
    dedup_waits: AtomicU64,
    artifact_hits: AtomicU64,
    errors: AtomicU64,
    deadline_timeouts: AtomicU64,
    abandoned_slots: AtomicU64,
    stale_publishes: AtomicU64,
    next_session: AtomicU64,
    /// Pre-compile hook, called by the leader inside its `catch_unwind`
    /// right before the compiler runs. Production servers leave it unset;
    /// the chaos harness uses it to inject slow compiles and leader
    /// panics *inside* the singleflight critical section.
    pre_compile: Mutex<Option<CompileHook>>,
}

/// A pre-compile hook: runs on the singleflight leader, under its
/// `catch_unwind`, just before the compiler. See
/// [`CompileService::set_compile_hook`].
pub type CompileHook = Arc<dyn Fn(&CompileRequest) + Send + Sync>;

/// Default artifact-cache capacity (distinct fingerprints retained).
pub const DEFAULT_ARTIFACT_CAPACITY: usize = 256;

/// Default artifact-cache byte ceiling (estimated bytes retained).
pub const DEFAULT_ARTIFACT_BYTES: u64 = 64 << 20;

impl Default for CompileService {
    fn default() -> Self {
        Self::new(DEFAULT_ARTIFACT_CAPACITY)
    }
}

impl CompileService {
    /// A service retaining at most `artifact_capacity` compiled programs
    /// (with the default byte ceiling).
    pub fn new(artifact_capacity: usize) -> Self {
        Self::with_limits(artifact_capacity, DEFAULT_ARTIFACT_BYTES)
    }

    /// A service bounded by both an entry count and a byte ceiling.
    pub fn with_limits(artifact_capacity: usize, artifact_bytes: u64) -> Self {
        Self {
            artifacts: Mutex::new(ArtifactCache::new(artifact_capacity, artifact_bytes)),
            inflight: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            artifact_hits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_timeouts: AtomicU64::new(0),
            abandoned_slots: AtomicU64::new(0),
            stale_publishes: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
            pre_compile: Mutex::new(None),
        }
    }

    /// Install (or clear) the pre-compile hook. See the field docs — this
    /// exists for fault injection; it runs under the leader's
    /// `catch_unwind`, so a panicking hook becomes a coded compile error.
    pub fn set_compile_hook(&self, hook: Option<CompileHook>) {
        *self.pre_compile.lock().unwrap_or_else(|e| e.into_inner()) = hook;
    }

    /// Open a new session on this service.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            service: self.clone(),
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            requests: AtomicU64::new(0),
        }
    }

    /// Satisfy a compile request: artifact cache, then singleflight, then
    /// a real compile. Never blocks other fingerprints — the service locks
    /// are held only for map operations, never across a compile.
    ///
    /// Failure containment: a follower parked behind an abandoned slot
    /// (leader timed out or crashed — see [`CompileService::abandon_stale`])
    /// is woken and re-contends for leadership rather than blocking
    /// forever; a follower whose own [`CompileRequest::deadline`] expires
    /// while waiting gets a coded `E0803` error.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileOutcome> {
        let fp = request.fingerprint();
        let t0 = Instant::now();
        let deadline = request.deadline.map(|d| t0 + d);

        loop {
            if let Some(artifact) = self
                .artifacts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(fp)
            {
                self.artifact_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(CompileOutcome {
                    compiled: artifact,
                    fingerprint: fp,
                    source: ArtifactSource::Cached,
                    wall: t0.elapsed(),
                });
            }

            // Singleflight: first requester of a fingerprint becomes leader,
            // everyone else parks on the leader's slot.
            let (slot, leader) = {
                let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                match inflight.get(&fp) {
                    Some(slot) => (slot.clone(), false),
                    None => {
                        let slot = Arc::new(Slot::new());
                        inflight.insert(fp, slot.clone());
                        (slot, true)
                    }
                }
            };

            if leader {
                return self.lead(fp, &slot, request, t0);
            }

            match slot.wait(deadline) {
                WaitOutcome::Done(result) => {
                    self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                    return result.map(|compiled| CompileOutcome {
                        compiled,
                        fingerprint: fp,
                        source: ArtifactSource::Deduped,
                        wall: t0.elapsed(),
                    });
                }
                // The leader died; loop back and re-contend. Exactly one
                // waker wins the inflight-map insert race and becomes the
                // new leader — the rest park on the new slot.
                WaitOutcome::Abandoned => continue,
                WaitOutcome::TimedOut => {
                    self.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(IrError::from_diagnostic(Diagnostic::error(
                        codes::SERVER_DEADLINE,
                        format!(
                            "deadline exceeded after {:.1} ms waiting on an in-flight compile",
                            t0.elapsed().as_secs_f64() * 1000.0
                        ),
                    )));
                }
            }
        }
    }

    /// The leader path: run the compiler, cache the artifact, publish to
    /// followers, retire the slot. A good artifact is cached **even if the
    /// slot was reclaimed mid-compile** — a late result is still a correct
    /// result, and caching it makes the retry that replaced this leader
    /// cheap or free.
    fn lead(
        &self,
        fp: u64,
        slot: &Arc<Slot>,
        request: &CompileRequest,
        t0: Instant,
    ) -> Result<CompileOutcome> {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let hook = self
            .pre_compile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        // A panic that escapes the hardened pipeline must still release the
        // followers, so it is caught and published as a coded error.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &hook {
                hook(request);
            }
            Compiler::compile(&request.source, &request.options)
        }))
        .unwrap_or_else(|payload| {
            let msg = fsc_passes::pipeline::payload_message(payload.as_ref());
            Err(IrError::from_diagnostic(Diagnostic::error(
                codes::KERNEL,
                format!("compile panicked: {msg}"),
            )))
        })
        .map(Arc::new);

        if let Ok(artifact) = &result {
            let size = artifact.approx_bytes();
            self.artifacts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(fp, artifact.clone(), size);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        // Retire the slot, but only if it is still ours — a watchdog may
        // have reclaimed it (and a new leader may already be compiling
        // under a fresh slot for the same fingerprint). Ordering matters:
        // the artifact is cached *before* the map entry goes away, so a
        // late joiner either finds the slot (and gets the published
        // result) or misses it and hits the artifact cache.
        let still_current = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&fp) {
                Some(current) if Arc::ptr_eq(current, slot) => {
                    inflight.remove(&fp);
                    true
                }
                _ => false,
            }
        };
        // Publish regardless: a waiter that has not yet re-contended after
        // an abandonment can still take the real result.
        slot.publish(result.clone());
        if !still_current {
            self.stale_publishes.fetch_add(1, Ordering::Relaxed);
        }

        result.map(|compiled| CompileOutcome {
            compiled,
            fingerprint: fp,
            source: ArtifactSource::Fresh,
            wall: t0.elapsed(),
        })
    }

    /// Reclaim the singleflight slot for `fp` if (and only if) its leader
    /// has held it for at least `min_age`. Every parked follower is woken
    /// to re-contend for leadership; the stale leader's eventual result is
    /// still published and cached but no longer owns the slot. The age
    /// guard makes the call race-safe: a *fresh* slot (a new leader that
    /// replaced an already-reclaimed one) is younger than `min_age` and is
    /// left alone. Returns true when a slot was actually reclaimed.
    ///
    /// This is the external enforcement point for leader deadlines — the
    /// server watchdog calls it when a worker overruns its budget, and the
    /// supervisor calls it when a worker thread dies.
    pub fn abandon_stale(&self, fp: u64, min_age: Duration) -> bool {
        let slot = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&fp) {
                Some(slot) if slot.started.elapsed() >= min_age => {
                    let slot = slot.clone();
                    inflight.remove(&fp);
                    slot
                }
                _ => return false,
            }
        };
        if slot.abandon() {
            self.abandoned_slots.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Number of singleflight slots currently registered (compiles in
    /// flight). After a drained server quiesces this must be zero — the
    /// chaos harness asserts it ("zero wedged slots").
    pub fn inflight_len(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Drop every cached artifact (chaos injection: forces the next
    /// request of each fingerprint to recompile; results must still be
    /// bit-identical).
    pub fn purge_artifacts(&self) {
        self.artifacts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .purge();
    }

    /// Compile and run in one call.
    pub fn run(&self, request: &CompileRequest) -> Result<(CompileOutcome, Execution)> {
        let outcome = self.compile(request)?;
        let execution = outcome.compiled.run()?;
        Ok((outcome, execution))
    }

    /// Snapshot of the lifetime counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let (artifact_bytes, evicted_artifacts, evicted_bytes, oversize_rejects) = {
            let cache = self.artifacts.lock().unwrap_or_else(|e| e.into_inner());
            (
                cache.bytes,
                cache.evicted_artifacts,
                cache.evicted_bytes,
                cache.oversize_rejects,
            )
        };
        ServiceMetrics {
            compiles: self.compiles.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            deadline_timeouts: self.deadline_timeouts.load(Ordering::Relaxed),
            abandoned_slots: self.abandoned_slots.load(Ordering::Relaxed),
            stale_publishes: self.stale_publishes.load(Ordering::Relaxed),
            artifact_bytes,
            evicted_artifacts,
            evicted_bytes,
            oversize_rejects,
        }
    }
}

/// One client's handle onto a shared [`CompileService`]: an id for
/// attribution plus a per-session request counter. Sessions are cheap —
/// the server opens one per connection.
pub struct Session {
    service: Arc<CompileService>,
    /// Monotonic session id, unique within the service.
    pub id: u64,
    requests: AtomicU64,
}

impl Session {
    /// Satisfy a compile request through the shared service.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileOutcome> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.service.compile(request)
    }

    /// Compile and run through the shared service.
    pub fn run(&self, request: &CompileRequest) -> Result<(CompileOutcome, Execution)> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.service.run(request)
    }

    /// Requests issued through this session so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The shared service this session rides on.
    pub fn service(&self) -> &Arc<CompileService> {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;
    use std::sync::Barrier;

    fn request(n: usize) -> CompileRequest {
        CompileRequest::with_options(
            fsc_workloads::gauss_seidel::fortran_source(n, 1),
            CompileOptions::for_target(Target::StencilCpu),
        )
    }

    #[test]
    fn fingerprint_covers_source_and_options() {
        let a = request(4);
        let b = request(5);
        assert_ne!(a.fingerprint(), b.fingerprint(), "source must matter");
        let mut c = request(4);
        c.options.target = Target::StencilOpenMp { threads: 2 };
        assert_ne!(a.fingerprint(), c.fingerprint(), "options must matter");
        assert_eq!(a.fingerprint(), request(4).fingerprint(), "must be stable");
    }

    #[test]
    fn repeat_requests_hit_the_artifact_cache() {
        let service = Arc::new(CompileService::default());
        let req = request(4);
        let first = service.compile(&req).unwrap();
        assert_eq!(first.source, ArtifactSource::Fresh);
        let second = service.compile(&req).unwrap();
        assert_eq!(second.source, ArtifactSource::Cached);
        assert!(Arc::ptr_eq(&first.compiled, &second.compiled));
        let m = service.metrics();
        assert_eq!((m.compiles, m.artifact_hits, m.errors), (1, 1, 0));
    }

    /// The singleflight guarantee: many identical concurrent requests run
    /// the compiler exactly once, and every requester gets the same
    /// artifact.
    #[test]
    fn identical_concurrent_requests_compile_once() {
        let service = Arc::new(CompileService::default());
        let req = request(6);
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (service, req, barrier) = (service.clone(), req.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    service.compile(&req).unwrap()
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let m = service.metrics();
        assert_eq!(m.compiles, 1, "identical requests must compile once");
        assert_eq!(
            m.dedup_waits + m.artifact_hits,
            (n - 1) as u64,
            "everyone else must reuse: {m:?}"
        );
        let first = &outcomes[0].compiled;
        for o in &outcomes {
            assert!(
                Arc::ptr_eq(first, &o.compiled),
                "all must share one artifact"
            );
        }
    }

    #[test]
    fn distinct_requests_compile_independently() {
        let service = Arc::new(CompileService::default());
        service.compile(&request(4)).unwrap();
        service.compile(&request(5)).unwrap();
        assert_eq!(service.metrics().compiles, 2);
    }

    #[test]
    fn errors_reach_every_waiter_and_are_not_cached() {
        let service = Arc::new(CompileService::default());
        let bad = CompileRequest::new("program p\n  this is not fortran\nend program p");
        assert!(service.compile(&bad).is_err());
        assert!(service.compile(&bad).is_err());
        let m = service.metrics();
        assert_eq!(m.errors, 2, "errors are retried, not cached: {m:?}");
        assert_eq!(m.artifact_hits, 0);
    }

    #[test]
    fn artifact_cache_evicts_fifo_beyond_capacity() {
        let service = Arc::new(CompileService::new(2));
        service.compile(&request(4)).unwrap();
        service.compile(&request(5)).unwrap();
        service.compile(&request(6)).unwrap(); // evicts request(4)
        let again = service.compile(&request(4)).unwrap();
        assert_eq!(again.source, ArtifactSource::Fresh);
        assert_eq!(service.metrics().compiles, 4);
    }

    #[test]
    fn sessions_share_the_service_and_count_requests() {
        let service = Arc::new(CompileService::default());
        let a = service.session();
        let b = service.session();
        assert_ne!(a.id, b.id);
        let req = request(4);
        a.compile(&req).unwrap();
        let outcome = b.compile(&req).unwrap();
        assert_eq!(outcome.source, ArtifactSource::Cached);
        assert_eq!(a.requests(), 1);
        assert_eq!(b.requests(), 1);
        assert_eq!(service.metrics().compiles, 1);
    }

    #[test]
    fn run_through_a_session_produces_results() {
        let service = Arc::new(CompileService::default());
        let session = service.session();
        let (outcome, exec) = session.run(&request(4)).unwrap();
        assert_eq!(outcome.source, ArtifactSource::Fresh);
        assert!(exec.array("u").is_some());
    }

    /// Install a hook that blocks the *first* leader until `release` goes
    /// true; later calls pass straight through.
    fn stuck_first_leader_hook(
        service: &Arc<CompileService>,
        release: &Arc<std::sync::atomic::AtomicBool>,
    ) {
        let calls = Arc::new(AtomicU64::new(0));
        let release = release.clone();
        service.set_compile_hook(Some(Arc::new(move |_req: &CompileRequest| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })));
    }

    /// The leader-death path the original Mutex+Condvar slots never
    /// exercised: a stuck leader's slot is reclaimed and a parked follower
    /// is promoted to leader instead of blocking forever. The stuck
    /// leader's late result is still published (stale) and does not
    /// disturb the promoted compile.
    #[test]
    fn abandoned_slot_promotes_a_waiting_follower() {
        let service = Arc::new(CompileService::default());
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        stuck_first_leader_hook(&service, &release);
        let req = request(4);
        let fp = req.fingerprint();

        let leader = {
            let (service, req) = (service.clone(), req.clone());
            std::thread::spawn(move || service.compile(&req))
        };
        while service.inflight_len() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let follower = {
            let (service, req) = (service.clone(), req.clone());
            std::thread::spawn(move || service.compile(&req))
        };
        // Let the follower park, then declare the leader dead.
        std::thread::sleep(Duration::from_millis(30));
        assert!(service.abandon_stale(fp, Duration::ZERO));

        // The follower must complete *while the original leader is still
        // stuck* — it re-contended, won the fresh slot, and compiled.
        let outcome = follower.join().unwrap().unwrap();
        assert_eq!(outcome.source, ArtifactSource::Fresh);

        release.store(true, Ordering::SeqCst);
        let stale = leader.join().unwrap().unwrap();
        assert_eq!(stale.source, ArtifactSource::Fresh);

        let m = service.metrics();
        assert_eq!(m.abandoned_slots, 1, "{m:?}");
        assert_eq!(m.compiles, 2, "promotion costs one extra compile: {m:?}");
        assert_eq!(m.stale_publishes, 1, "{m:?}");
        assert_eq!(service.inflight_len(), 0, "no wedged slots");
    }

    /// A follower whose own deadline expires while parked gets a coded
    /// E0803 error, not an unbounded wait.
    #[test]
    fn follower_deadline_expires_with_coded_error() {
        let service = Arc::new(CompileService::default());
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        stuck_first_leader_hook(&service, &release);
        let req = request(4);

        let leader = {
            let (service, req) = (service.clone(), req.clone());
            std::thread::spawn(move || service.compile(&req))
        };
        while service.inflight_len() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let err = match service.compile(&req.clone().with_deadline(Duration::from_millis(50))) {
            Err(e) => e,
            Ok(_) => panic!("a parked follower must time out, not succeed"),
        };
        assert_eq!(
            err.primary().map(|d| d.code),
            Some(codes::SERVER_DEADLINE),
            "{err:?}"
        );
        assert_eq!(service.metrics().deadline_timeouts, 1);

        release.store(true, Ordering::SeqCst);
        leader.join().unwrap().unwrap();
        assert_eq!(service.inflight_len(), 0);
    }

    /// Deadline is excluded from the fingerprint: budgets must not split
    /// the singleflight/cache equivalence class.
    #[test]
    fn deadline_does_not_change_the_fingerprint() {
        let req = request(4);
        let budgeted = req.clone().with_deadline(Duration::from_millis(5));
        assert_eq!(req.fingerprint(), budgeted.fingerprint());
    }

    #[test]
    fn purge_artifacts_forces_a_fresh_compile() {
        let service = Arc::new(CompileService::default());
        let req = request(4);
        service.compile(&req).unwrap();
        service.purge_artifacts();
        let again = service.compile(&req).unwrap();
        assert_eq!(again.source, ArtifactSource::Fresh);
        assert_eq!(service.metrics().compiles, 2);
    }

    /// abandon_stale's age guard: a young slot (fresh leader) is left
    /// alone, so a watchdog firing late cannot kill a healthy retry.
    #[test]
    fn abandon_stale_spares_young_slots() {
        let service = Arc::new(CompileService::default());
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        stuck_first_leader_hook(&service, &release);
        let req = request(4);
        let fp = req.fingerprint();
        let leader = {
            let (service, req) = (service.clone(), req.clone());
            std::thread::spawn(move || service.compile(&req))
        };
        while service.inflight_len() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            !service.abandon_stale(fp, Duration::from_secs(3600)),
            "a slot younger than min_age must not be reclaimed"
        );
        release.store(true, Ordering::SeqCst);
        leader.join().unwrap().unwrap();
        assert_eq!(service.metrics().abandoned_slots, 0);
    }

    /// Satellite regression: one artifact bigger than the whole byte cap
    /// must be refused admission instead of evicting every resident
    /// entry, and byte-pressure eviction must stay FIFO and accounted.
    #[test]
    fn oversized_artifact_cannot_evict_the_cache() {
        let req = request(4);
        let artifact = Arc::new(Compiler::compile(&req.source, &req.options).unwrap());
        let mut cache = ArtifactCache::new(8, 1000);
        cache.insert(1, artifact.clone(), 400);
        cache.insert(2, artifact.clone(), 400);
        assert_eq!(cache.bytes, 800);

        // A giant larger than the entire cache: refused, residents intact.
        cache.insert(3, artifact.clone(), 5000);
        assert!(cache.get(3).is_none(), "the giant must not be cached");
        assert!(cache.get(1).is_some() && cache.get(2).is_some());
        assert_eq!((cache.bytes, cache.oversize_rejects), (800, 1));
        assert_eq!(cache.evicted_artifacts, 0);

        // A fitting artifact evicts exactly enough, oldest first.
        cache.insert(4, artifact.clone(), 400);
        assert!(cache.get(1).is_none(), "byte pressure evicts FIFO");
        assert!(cache.get(2).is_some() && cache.get(4).is_some());
        assert_eq!((cache.bytes, cache.evicted_artifacts), (800, 1));
        assert_eq!(cache.evicted_bytes, 400);
    }

    /// Byte-cap eviction through the full service path keeps the hit
    /// metrics consistent: every request is exactly one of
    /// compile/dedup/hit, and the byte gauge never exceeds the cap.
    #[test]
    fn byte_cap_eviction_keeps_hit_metrics_consistent() {
        let probe = Arc::new(CompileService::default());
        probe.compile(&request(4)).unwrap();
        let one = probe.metrics().artifact_bytes;
        assert!(one > 0, "artifacts must have a nonzero size estimate");

        // Room for one artifact but not two.
        let cap = one + one / 2;
        let service = Arc::new(CompileService::with_limits(8, cap));
        service.compile(&request(4)).unwrap();
        service.compile(&request(5)).unwrap(); // byte pressure evicts 4
        let again = service.compile(&request(4)).unwrap();
        assert_eq!(again.source, ArtifactSource::Fresh, "4 was evicted");
        let hit = service.compile(&request(4)).unwrap();
        assert_eq!(hit.source, ArtifactSource::Cached);

        let m = service.metrics();
        assert_eq!((m.compiles, m.artifact_hits, m.dedup_waits), (3, 1, 0));
        assert!(m.evicted_artifacts >= 1, "{m:?}");
        assert!(m.evicted_bytes >= one.min(m.evicted_bytes), "{m:?}");
        assert!(m.artifact_bytes <= cap, "gauge must respect the cap: {m:?}");
        assert!(
            (m.reuse_rate() - 0.25).abs() < 1e-9,
            "1 reuse in 4 requests: {m:?}"
        );
    }

    /// Purging counts as eviction (counters are monotonic) and leaves
    /// the byte gauge at zero.
    #[test]
    fn purge_keeps_cumulative_eviction_counters() {
        let service = Arc::new(CompileService::default());
        service.compile(&request(4)).unwrap();
        let before = service.metrics();
        assert!(before.artifact_bytes > 0);
        service.purge_artifacts();
        let after = service.metrics();
        assert_eq!(after.artifact_bytes, 0);
        assert_eq!(after.evicted_artifacts, before.evicted_artifacts + 1);
        assert_eq!(
            after.evicted_bytes,
            before.evicted_bytes + before.artifact_bytes
        );
    }
}
