//! Compile sessions and the shared, singleflight compile service.
//!
//! This is the library layer behind compile-server mode (`fsc-serve`): a
//! [`CompileRequest`] names *what* to build (source + options, reduced to
//! a stable [`fingerprint`](CompileRequest::fingerprint)), a
//! [`CompileService`] is the process-wide build authority, and a
//! [`Session`] is one client's cheap handle onto it. The service gives
//! concurrent clients three guarantees:
//!
//! * **artifact sharing** — finished [`Compiled`] artifacts live in a
//!   bounded cache keyed by fingerprint and are handed out as
//!   `Arc<Compiled>`: a hit costs a map lookup, never a recompile.
//!   (`Compiled::run(&self)` takes `&self`, so any number of sessions can
//!   execute one artifact concurrently.)
//! * **singleflight deduplication** — when many sessions request the same
//!   fingerprint *at the same time*, exactly one of them (the leader)
//!   runs the compiler; the rest park on the leader's slot and receive
//!   the same `Arc` (or the same coded error). A thousand identical
//!   requests cost one compile.
//! * **attested outcomes** — every request reports how it was satisfied
//!   ([`ArtifactSource`]: fresh / deduped / cached) and what it cost, so
//!   the server's per-request attestation and `/stats` metrics are
//!   measurements, not guesses.
//!
//! Compile *errors* propagate to every deduplicated waiter but are not
//! cached: a later identical request recompiles. Errors from this
//! compiler are deterministic, so retries are wasted work in the common
//! case — but caching them would pin transient environment failures
//! (e.g. an unreadable plan-cache file) forever, which is worse.

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::{IrError, Result};

use crate::{CompileOptions, Compiled, Compiler, Execution};

/// One unit of work for the compile service: source text plus the full
/// compile configuration.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Fortran source text.
    pub source: String,
    /// Compile configuration (target, hardening, autotune, ...).
    pub options: CompileOptions,
}

impl CompileRequest {
    /// A request for `source` with default options.
    pub fn new(source: impl Into<String>) -> Self {
        Self {
            source: source.into(),
            options: CompileOptions::default(),
        }
    }

    /// A request with explicit options.
    pub fn with_options(source: impl Into<String>, options: CompileOptions) -> Self {
        Self {
            source: source.into(),
            options,
        }
    }

    /// Stable fingerprint of the request: FNV-1a-64 over the source bytes
    /// and the `Debug` rendering of the options (which covers every field,
    /// deterministically — targets, tiles, rung forcing, tune config).
    /// Identical fingerprints mean "the same compile would run", which is
    /// exactly the singleflight/caching equivalence the service needs.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in self.source.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        for &b in format!("{:?}", self.options).as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

/// How a request's artifact was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactSource {
    /// This request ran the compiler itself (it was the singleflight
    /// leader, or nothing identical was in flight).
    Fresh,
    /// An identical compile was already in flight; this request waited on
    /// it and shares its artifact.
    Deduped,
    /// Served from the bounded artifact cache — no compiler involvement.
    Cached,
}

impl ArtifactSource {
    /// Stable lowercase name (used in server responses and attestations).
    pub fn describe(self) -> &'static str {
        match self {
            ArtifactSource::Fresh => "fresh",
            ArtifactSource::Deduped => "deduped",
            ArtifactSource::Cached => "cached",
        }
    }
}

/// A satisfied compile request: the shared artifact plus the attestation
/// of how it was produced.
#[derive(Clone)]
pub struct CompileOutcome {
    /// The compiled program, shared with every other holder.
    pub compiled: Arc<Compiled>,
    /// The request fingerprint the artifact is keyed under.
    pub fingerprint: u64,
    /// How this particular request was satisfied.
    pub source: ArtifactSource,
    /// Wall-clock this request spent acquiring the artifact (compile time
    /// for the leader, wait time for deduped followers, ~zero for cache
    /// hits).
    pub wall: Duration,
}

/// Lifetime counters for a [`CompileService`] (monotonic; the server's
/// `/stats` endpoint snapshots them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Compiles actually executed (each unique fingerprint costs one,
    /// plus one per post-eviction or post-error retry).
    pub compiles: u64,
    /// Requests that parked behind an identical in-flight compile.
    pub dedup_waits: u64,
    /// Requests served straight from the artifact cache.
    pub artifact_hits: u64,
    /// Compiles that ended in an error.
    pub errors: u64,
}

impl ServiceMetrics {
    /// Fraction of requests that avoided running the compiler.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.compiles + self.dedup_waits + self.artifact_hits;
        if total == 0 {
            return 0.0;
        }
        (self.dedup_waits + self.artifact_hits) as f64 / total as f64
    }
}

/// State of one in-flight compile, shared between the leader and any
/// deduplicated followers.
enum SlotState {
    /// The leader is still compiling.
    Pending,
    /// The compile finished; followers take their copy from here.
    Done(std::result::Result<Arc<Compiled>, IrError>),
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: std::result::Result<Arc<Compiled>, IrError>) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = SlotState::Done(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> std::result::Result<Arc<Compiled>, IrError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*state {
                SlotState::Done(result) => return result.clone(),
                SlotState::Pending => {
                    state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// Bounded FIFO artifact cache. FIFO (not LRU) keeps eviction decisions
/// deterministic and the hot path a single map lookup; the cache exists
/// to absorb request storms for a working set of programs, not to be a
/// perfect reuse oracle.
struct ArtifactCache {
    capacity: usize,
    map: HashMap<u64, Arc<Compiled>>,
    order: VecDeque<u64>,
}

impl ArtifactCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, fp: u64) -> Option<Arc<Compiled>> {
        self.map.get(&fp).cloned()
    }

    fn insert(&mut self, fp: u64, artifact: Arc<Compiled>) {
        if self.map.insert(fp, artifact).is_none() {
            self.order.push_back(fp);
            while self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
}

/// The process-wide compile authority: a bounded artifact cache plus a
/// singleflight table of in-flight compiles. See the module docs for the
/// guarantees. Cheap to share (`Arc<CompileService>`); every [`Session`]
/// and every server worker holds the same instance.
pub struct CompileService {
    artifacts: Mutex<ArtifactCache>,
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    compiles: AtomicU64,
    dedup_waits: AtomicU64,
    artifact_hits: AtomicU64,
    errors: AtomicU64,
    next_session: AtomicU64,
}

/// Default artifact-cache capacity (distinct fingerprints retained).
pub const DEFAULT_ARTIFACT_CAPACITY: usize = 256;

impl Default for CompileService {
    fn default() -> Self {
        Self::new(DEFAULT_ARTIFACT_CAPACITY)
    }
}

impl CompileService {
    /// A service retaining at most `artifact_capacity` compiled programs.
    pub fn new(artifact_capacity: usize) -> Self {
        Self {
            artifacts: Mutex::new(ArtifactCache::new(artifact_capacity)),
            inflight: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            artifact_hits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
        }
    }

    /// Open a new session on this service.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            service: self.clone(),
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            requests: AtomicU64::new(0),
        }
    }

    /// Satisfy a compile request: artifact cache, then singleflight, then
    /// a real compile. Never blocks other fingerprints — the service locks
    /// are held only for map operations, never across a compile.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileOutcome> {
        let fp = request.fingerprint();
        let t0 = Instant::now();

        if let Some(artifact) = self
            .artifacts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(fp)
        {
            self.artifact_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(CompileOutcome {
                compiled: artifact,
                fingerprint: fp,
                source: ArtifactSource::Cached,
                wall: t0.elapsed(),
            });
        }

        // Singleflight: first requester of a fingerprint becomes leader,
        // everyone else parks on the leader's slot.
        let (slot, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&fp) {
                Some(slot) => (slot.clone(), false),
                None => {
                    let slot = Arc::new(Slot::new());
                    inflight.insert(fp, slot.clone());
                    (slot, true)
                }
            }
        };

        if !leader {
            self.dedup_waits.fetch_add(1, Ordering::Relaxed);
            let compiled = slot.wait()?;
            return Ok(CompileOutcome {
                compiled,
                fingerprint: fp,
                source: ArtifactSource::Deduped,
                wall: t0.elapsed(),
            });
        }

        self.compiles.fetch_add(1, Ordering::Relaxed);
        // A panic that escapes the hardened pipeline must still release the
        // followers, so it is caught and published as a coded error.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Compiler::compile(&request.source, &request.options)
        }))
        .unwrap_or_else(|payload| {
            let msg = fsc_passes::pipeline::payload_message(payload.as_ref());
            Err(IrError::from_diagnostic(Diagnostic::error(
                codes::KERNEL,
                format!("compile panicked: {msg}"),
            )))
        })
        .map(Arc::new);

        if let Ok(artifact) = &result {
            self.artifacts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(fp, artifact.clone());
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        // Publish before retiring the slot so late joiners either find the
        // slot (and get the result) or miss it (and hit the artifact cache
        // / recompile on error).
        slot.publish(result.clone());
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&fp);

        result.map(|compiled| CompileOutcome {
            compiled,
            fingerprint: fp,
            source: ArtifactSource::Fresh,
            wall: t0.elapsed(),
        })
    }

    /// Compile and run in one call.
    pub fn run(&self, request: &CompileRequest) -> Result<(CompileOutcome, Execution)> {
        let outcome = self.compile(request)?;
        let execution = outcome.compiled.run()?;
        Ok((outcome, execution))
    }

    /// Snapshot of the lifetime counters.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            compiles: self.compiles.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// One client's handle onto a shared [`CompileService`]: an id for
/// attribution plus a per-session request counter. Sessions are cheap —
/// the server opens one per connection.
pub struct Session {
    service: Arc<CompileService>,
    /// Monotonic session id, unique within the service.
    pub id: u64,
    requests: AtomicU64,
}

impl Session {
    /// Satisfy a compile request through the shared service.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileOutcome> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.service.compile(request)
    }

    /// Compile and run through the shared service.
    pub fn run(&self, request: &CompileRequest) -> Result<(CompileOutcome, Execution)> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.service.run(request)
    }

    /// Requests issued through this session so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The shared service this session rides on.
    pub fn service(&self) -> &Arc<CompileService> {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;
    use std::sync::Barrier;

    fn request(n: usize) -> CompileRequest {
        CompileRequest::with_options(
            fsc_workloads::gauss_seidel::fortran_source(n, 1),
            CompileOptions::for_target(Target::StencilCpu),
        )
    }

    #[test]
    fn fingerprint_covers_source_and_options() {
        let a = request(4);
        let b = request(5);
        assert_ne!(a.fingerprint(), b.fingerprint(), "source must matter");
        let mut c = request(4);
        c.options.target = Target::StencilOpenMp { threads: 2 };
        assert_ne!(a.fingerprint(), c.fingerprint(), "options must matter");
        assert_eq!(a.fingerprint(), request(4).fingerprint(), "must be stable");
    }

    #[test]
    fn repeat_requests_hit_the_artifact_cache() {
        let service = Arc::new(CompileService::default());
        let req = request(4);
        let first = service.compile(&req).unwrap();
        assert_eq!(first.source, ArtifactSource::Fresh);
        let second = service.compile(&req).unwrap();
        assert_eq!(second.source, ArtifactSource::Cached);
        assert!(Arc::ptr_eq(&first.compiled, &second.compiled));
        let m = service.metrics();
        assert_eq!((m.compiles, m.artifact_hits, m.errors), (1, 1, 0));
    }

    /// The singleflight guarantee: many identical concurrent requests run
    /// the compiler exactly once, and every requester gets the same
    /// artifact.
    #[test]
    fn identical_concurrent_requests_compile_once() {
        let service = Arc::new(CompileService::default());
        let req = request(6);
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let (service, req, barrier) = (service.clone(), req.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    service.compile(&req).unwrap()
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let m = service.metrics();
        assert_eq!(m.compiles, 1, "identical requests must compile once");
        assert_eq!(
            m.dedup_waits + m.artifact_hits,
            (n - 1) as u64,
            "everyone else must reuse: {m:?}"
        );
        let first = &outcomes[0].compiled;
        for o in &outcomes {
            assert!(
                Arc::ptr_eq(first, &o.compiled),
                "all must share one artifact"
            );
        }
    }

    #[test]
    fn distinct_requests_compile_independently() {
        let service = Arc::new(CompileService::default());
        service.compile(&request(4)).unwrap();
        service.compile(&request(5)).unwrap();
        assert_eq!(service.metrics().compiles, 2);
    }

    #[test]
    fn errors_reach_every_waiter_and_are_not_cached() {
        let service = Arc::new(CompileService::default());
        let bad = CompileRequest::new("program p\n  this is not fortran\nend program p");
        assert!(service.compile(&bad).is_err());
        assert!(service.compile(&bad).is_err());
        let m = service.metrics();
        assert_eq!(m.errors, 2, "errors are retried, not cached: {m:?}");
        assert_eq!(m.artifact_hits, 0);
    }

    #[test]
    fn artifact_cache_evicts_fifo_beyond_capacity() {
        let service = Arc::new(CompileService::new(2));
        service.compile(&request(4)).unwrap();
        service.compile(&request(5)).unwrap();
        service.compile(&request(6)).unwrap(); // evicts request(4)
        let again = service.compile(&request(4)).unwrap();
        assert_eq!(again.source, ArtifactSource::Fresh);
        assert_eq!(service.metrics().compiles, 4);
    }

    #[test]
    fn sessions_share_the_service_and_count_requests() {
        let service = Arc::new(CompileService::default());
        let a = service.session();
        let b = service.session();
        assert_ne!(a.id, b.id);
        let req = request(4);
        a.compile(&req).unwrap();
        let outcome = b.compile(&req).unwrap();
        assert_eq!(outcome.source, ArtifactSource::Cached);
        assert_eq!(a.requests(), 1);
        assert_eq!(b.requests(), 1);
        assert_eq!(service.metrics().compiles, 1);
    }

    #[test]
    fn run_through_a_session_produces_results() {
        let service = Arc::new(CompileService::default());
        let session = service.session();
        let (outcome, exec) = session.run(&request(4)).unwrap();
        assert_eq!(outcome.source, ArtifactSource::Fresh);
        assert!(exec.array("u").is_some());
    }
}
