//! A functional MPI-like rank runtime: each rank is an OS thread, messages
//! travel over crossbeam channels, and a shared-state barrier provides
//! synchronisation. This is the substrate the hand-MPI baseline runs on —
//! real message passing, not shared arrays — so the auto-parallelised path
//! can be validated against a genuinely distributed implementation.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

/// A tagged message between ranks.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// User tag.
    pub tag: i64,
    /// Payload.
    pub data: Vec<f64>,
}

struct Barrier {
    lock: Mutex<(usize, usize)>, // (count, generation)
    cv: Condvar,
    n: usize,
}

impl Barrier {
    fn new(n: usize) -> Self {
        Self {
            lock: Mutex::new((0, 0)),
            cv: Condvar::new(),
            n,
        }
    }

    fn wait(&self) {
        let mut guard = self.lock.lock();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.n {
            guard.0 = 0;
            guard.1 += 1;
            self.cv.notify_all();
        } else {
            while guard.1 == gen {
                self.cv.wait(&mut guard);
            }
        }
    }
}

/// Per-rank communication context handed to the rank body.
pub struct RankCtx {
    /// This rank.
    pub rank: usize,
    /// Total ranks.
    pub size: usize,
    senders: Arc<Vec<Sender<Message>>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet matched (by sender+tag).
    stash: Vec<Message>,
    barrier: Arc<Barrier>,
}

impl RankCtx {
    /// Send `data` to `dest` with `tag` (non-blocking, buffered).
    pub fn send(&self, dest: usize, tag: i64, data: Vec<f64>) {
        self.senders[dest]
            .send(Message {
                from: self.rank,
                tag,
                data,
            })
            .expect("rank channel closed");
    }

    /// Receive the next message from `src` with `tag` (blocking, with
    /// out-of-order stashing like an MPI matching queue).
    pub fn recv(&mut self, src: usize, tag: i64) -> Vec<f64> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|m| m.from == src && m.tag == tag)
        {
            return self.stash.swap_remove(pos).data;
        }
        loop {
            let msg = self.receiver.recv().expect("rank channel closed");
            if msg.from == src && msg.tag == tag {
                return msg.data;
            }
            self.stash.push(msg);
        }
    }

    /// Global barrier across all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Run `size` ranks, each executing `body`, and collect each rank's result
/// in rank order. Panics in a rank propagate.
pub fn run_ranks<T, F>(size: usize, body: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
{
    assert!(size > 0);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let barrier = Arc::new(Barrier::new(size));
    let body = Arc::new(body);

    let mut handles = Vec::with_capacity(size);
    for (rank, receiver) in receivers.into_iter().enumerate() {
        let senders = Arc::clone(&senders);
        let barrier = Arc::clone(&barrier);
        let body = Arc::clone(&body);
        handles.push(std::thread::spawn(move || {
            let mut ctx = RankCtx {
                rank,
                size,
                senders,
                receiver,
                stash: Vec::new(),
                barrier,
            };
            body(&mut ctx)
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

/// Convenience: run a 1-D halo-exchanged Jacobi-style update across ranks
/// and return per-rank message counts — used by tests and as the skeleton
/// of the hand-MPI baseline.
pub fn message_counts_after<F>(size: usize, body: F) -> HashMap<usize, usize>
where
    F: Fn(&mut RankCtx) -> usize + Send + Sync + 'static,
{
    run_ranks(size, body).into_iter().enumerate().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = run_ranks(4, |ctx| {
            let next = (ctx.rank + 1) % ctx.size;
            let prev = (ctx.rank + ctx.size - 1) % ctx.size;
            ctx.send(next, 0, vec![ctx.rank as f64]);
            let got = ctx.recv(prev, 0);
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn out_of_order_matching() {
        let results = run_ranks(2, |ctx| {
            if ctx.rank == 0 {
                ctx.send(1, 7, vec![7.0]);
                ctx.send(1, 8, vec![8.0]);
                0.0
            } else {
                // Receive in the opposite order to force stashing.
                let b = ctx.recv(0, 8);
                let a = ctx.recv(0, 7);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 78.0);
    }

    #[test]
    fn barrier_synchronises_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PHASE1: AtomicUsize = AtomicUsize::new(0);
        let results = run_ranks(8, |ctx| {
            PHASE1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all 8 increments.
            PHASE1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 8));
    }

    #[test]
    fn halo_exchange_1d() {
        // Each rank owns 4 cells of a 16-cell line initialised to its rank;
        // one halo swap then an average must see neighbour values.
        let results = run_ranks(4, |ctx| {
            let mut local = [ctx.rank as f64; 6]; // 4 + 2 halo
                                                  // Exchange with left and right.
            if ctx.rank > 0 {
                ctx.send(ctx.rank - 1, 1, vec![local[1]]);
            }
            if ctx.rank + 1 < ctx.size {
                ctx.send(ctx.rank + 1, 2, vec![local[4]]);
            }
            if ctx.rank > 0 {
                local[0] = ctx.recv(ctx.rank - 1, 2)[0];
            }
            if ctx.rank + 1 < ctx.size {
                local[5] = ctx.recv(ctx.rank + 1, 1)[0];
            }
            (local[0], local[5])
        });
        assert_eq!(results[1], (0.0, 2.0));
        assert_eq!(results[2], (1.0, 3.0));
        // Boundary ranks keep their own values in the unexchanged halo.
        assert_eq!(results[0].0, 0.0);
        assert_eq!(results[3].1, 3.0);
    }

    #[test]
    fn single_rank_runs() {
        let r = run_ranks(1, |ctx| ctx.size);
        assert_eq!(r, vec![1]);
    }
}
