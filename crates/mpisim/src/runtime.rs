//! A functional MPI-like rank runtime: each rank is an OS thread, messages
//! travel over crossbeam channels, and a shared-state barrier provides
//! synchronisation. This is the substrate the hand-MPI baseline runs on —
//! real message passing, not shared arrays — so the auto-parallelised path
//! can be validated against a genuinely distributed implementation.
//!
//! **No blocking wait in this runtime can hang forever.** Every `recv` and
//! `barrier` carries a deadline, a shared watchdog converts an all-ranks-
//! blocked state into a structured [`MpiSimError::Deadlock`] naming the
//! stuck ranks and their pending tags, and a rank panic poisons the
//! communicator so the surviving ranks error out instead of waiting on a
//! barrier that can never fill.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};

use crate::error::{BlockedRank, MpiSimError};

/// A tagged message between ranks.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// User tag.
    pub tag: i64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Deadlines and watchdog tuning for a rank group.
#[derive(Debug, Clone, Copy)]
pub struct RankConfig {
    /// Default deadline of a bare `recv` / `barrier` (generous: the happy
    /// path never comes near it, but a lost message surfaces as a
    /// diagnosable error instead of hanging the test suite).
    pub recv_deadline: Duration,
    /// How long *all* live ranks must be blocked with zero message
    /// deliveries before the watchdog declares deadlock.
    pub deadlock_grace: Duration,
    /// Granularity of blocking waits (poll interval for poison/watchdog
    /// checks; waits still wake immediately on message arrival / notify).
    pub poll: Duration,
}

impl Default for RankConfig {
    fn default() -> Self {
        Self {
            recv_deadline: Duration::from_secs(30),
            deadlock_grace: Duration::from_millis(250),
            poll: Duration::from_millis(10),
        }
    }
}

/// What a rank is doing right now, from the watchdog's viewpoint.
enum RankState {
    /// Executing user code (or not yet started).
    Running,
    /// Inside a blocking wait.
    Blocked { op: String, since: Instant },
    /// Returned from its body.
    Done,
}

/// Shared communicator health state: the blocked-rank table, a global
/// message-delivery progress counter, and the poison flag.
pub(crate) struct WatchState {
    slots: Mutex<Vec<RankState>>,
    progress: AtomicU64,
    /// (last observed progress value, when it last changed).
    last_obs: Mutex<(u64, Instant)>,
    poisoned: AtomicBool,
    poison_info: Mutex<Option<(usize, String)>>,
}

impl WatchState {
    fn new(n: usize) -> Self {
        Self {
            slots: Mutex::new((0..n).map(|_| RankState::Running).collect()),
            progress: AtomicU64::new(0),
            last_obs: Mutex::new((0, Instant::now())),
            poisoned: AtomicBool::new(false),
            poison_info: Mutex::new(None),
        }
    }

    pub(crate) fn enter(&self, rank: usize, op: String) {
        self.slots.lock()[rank] = RankState::Blocked {
            op,
            since: Instant::now(),
        };
    }

    pub(crate) fn exit(&self, rank: usize) {
        self.slots.lock()[rank] = RankState::Running;
    }

    fn done(&self, rank: usize) {
        self.slots.lock()[rank] = RankState::Done;
    }

    /// Record one message delivery (any rank): deadlock detection requires
    /// this counter to be stable for the grace period.
    pub(crate) fn bump(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Poison the communicator: all blocked ranks abort their waits with
    /// [`MpiSimError::Poisoned`] within one poll interval.
    pub(crate) fn poison(&self, by_rank: usize, reason: String) {
        let mut info = self.poison_info.lock();
        if info.is_none() {
            *info = Some((by_rank, reason));
        }
        drop(info);
        self.poisoned.store(true, Ordering::SeqCst);
    }

    pub(crate) fn poison_error(&self) -> Option<MpiSimError> {
        if !self.poisoned.load(Ordering::SeqCst) {
            return None;
        }
        let info = self.poison_info.lock();
        let (by_rank, reason) = info.clone().unwrap_or((usize::MAX, "unknown".into()));
        Some(MpiSimError::Poisoned { by_rank, reason })
    }

    /// If every live rank is blocked and no message has been delivered for
    /// `grace`, return the table of stuck ranks.
    pub(crate) fn deadlock_check(&self, grace: Duration) -> Option<Vec<BlockedRank>> {
        // Once a failure is being reported the rank table is in flux (the
        // reporting rank unblocks and finishes); a check racing with that
        // teardown would diagnose a partial deadlock missing ranks. The
        // poison flag is set before any reporter exits, so gating here
        // guarantees every reported deadlock names the full stuck set.
        if self.poisoned.load(Ordering::SeqCst) {
            return None;
        }
        let now = Instant::now();
        let p = self.progress.load(Ordering::Relaxed);
        {
            let mut last = self.last_obs.lock();
            if p != last.0 {
                *last = (p, now);
                return None;
            }
            if now.duration_since(last.1) < grace {
                return None;
            }
        }
        let slots = self.slots.lock();
        let mut blocked = Vec::new();
        let mut live = 0usize;
        for (rank, s) in slots.iter().enumerate() {
            match s {
                RankState::Running => return None,
                RankState::Done => {}
                RankState::Blocked { op, since } => {
                    live += 1;
                    blocked.push(BlockedRank {
                        rank,
                        op: op.clone(),
                        blocked_ms: now.duration_since(*since).as_millis() as u64,
                    });
                }
            }
        }
        // Only a deadlock if the blocked ranks have been stuck for the
        // grace period themselves (not a rank that just started waiting).
        if live == 0
            || blocked
                .iter()
                .any(|b| b.blocked_ms < grace.as_millis() as u64)
        {
            return None;
        }
        Some(blocked)
    }
}

struct Barrier {
    lock: Mutex<(usize, usize)>, // (count, generation)
    cv: Condvar,
    n: usize,
}

impl Barrier {
    fn new(n: usize) -> Self {
        Self {
            lock: Mutex::new((0, 0)),
            cv: Condvar::new(),
            n,
        }
    }

    /// Wait with a deadline, aborting on poison and reporting deadlock via
    /// the watchdog. A rank panic elsewhere poisons the communicator, which
    /// releases waiters here within one poll interval.
    fn wait_deadline(
        &self,
        rank: usize,
        watch: &WatchState,
        cfg: &RankConfig,
    ) -> Result<(), MpiSimError> {
        let mut guard = self.lock.lock();
        let gen = guard.1;
        guard.0 += 1;
        if guard.0 == self.n {
            guard.0 = 0;
            guard.1 += 1;
            watch.bump();
            self.cv.notify_all();
            return Ok(());
        }
        let deadline = Instant::now() + cfg.recv_deadline;
        watch.enter(rank, "barrier".into());
        let res = loop {
            if let Some(e) = watch.poison_error() {
                break Err(e);
            }
            self.cv.wait_for(&mut guard, cfg.poll);
            if guard.1 != gen {
                watch.bump();
                break Ok(());
            }
            if let Some(blocked) = watch.deadlock_check(cfg.deadlock_grace) {
                let err = MpiSimError::Deadlock { blocked };
                watch.poison(rank, err.to_string());
                break Err(err);
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(MpiSimError::Timeout {
                    rank,
                    op: "barrier".into(),
                    waited_ms: cfg.recv_deadline.as_millis() as u64,
                });
            }
        };
        watch.exit(rank);
        res
    }
}

/// Per-rank communication context handed to the rank body.
pub struct RankCtx {
    /// This rank.
    pub rank: usize,
    /// Total ranks.
    pub size: usize,
    pub(crate) senders: Arc<Vec<Sender<Message>>>,
    pub(crate) receiver: Receiver<Message>,
    /// Messages received but not yet matched (by sender+tag).
    stash: Vec<Message>,
    barrier: Arc<Barrier>,
    pub(crate) watch: Arc<WatchState>,
    pub(crate) cfg: RankConfig,
}

impl RankCtx {
    /// Send `data` to `dest` with `tag` (non-blocking, buffered).
    pub fn send(&self, dest: usize, tag: i64, data: Vec<f64>) {
        if self.senders[dest]
            .send(Message {
                from: self.rank,
                tag,
                data,
            })
            .is_err()
        {
            // The destination rank has exited and dropped its receiver. If
            // the communicator is poisoned this is a cascade of an earlier
            // failure; surface that failure instead of a channel error.
            let err = self.watch.poison_error().unwrap_or_else(|| {
                MpiSimError::InvalidConfig(format!(
                    "rank {}: send(dest={dest}, tag={tag}) to a finished rank",
                    self.rank
                ))
            });
            panic::panic_any(err);
        }
    }

    /// Receive the next message from `src` with `tag` (blocking, with
    /// out-of-order stashing like an MPI matching queue). Uses the
    /// configured default deadline; on timeout, deadlock, or poison this
    /// panics with a structured [`MpiSimError`] that [`run_ranks`] catches
    /// and returns, so a lost message is a diagnosable failure rather than
    /// a hang.
    pub fn recv(&mut self, src: usize, tag: i64) -> Vec<f64> {
        let deadline = self.cfg.recv_deadline;
        match self.recv_deadline(src, tag, deadline) {
            Ok(data) => data,
            Err(e) => panic::panic_any(e),
        }
    }

    /// Receive with an explicit deadline, returning a structured error on
    /// timeout, detected deadlock, or communicator poison.
    pub fn recv_deadline(
        &mut self,
        src: usize,
        tag: i64,
        timeout: Duration,
    ) -> Result<Vec<f64>, MpiSimError> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|m| m.from == src && m.tag == tag)
        {
            return Ok(self.stash.swap_remove(pos).data);
        }
        let op = format!("recv(src={src}, tag={tag})");
        let deadline = Instant::now() + timeout;
        self.watch.enter(self.rank, op.clone());
        let res = loop {
            if let Some(e) = self.watch.poison_error() {
                break Err(e);
            }
            match self.receiver.recv_timeout(self.cfg.poll) {
                Ok(msg) => {
                    self.watch.bump();
                    if msg.from == src && msg.tag == tag {
                        break Ok(msg.data);
                    }
                    self.stash.push(msg);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(blocked) = self.watch.deadlock_check(self.cfg.deadlock_grace) {
                        let err = MpiSimError::Deadlock { blocked };
                        self.watch.poison(self.rank, err.to_string());
                        break Err(err);
                    }
                    if Instant::now() >= deadline {
                        break Err(MpiSimError::Timeout {
                            rank: self.rank,
                            op: op.clone(),
                            waited_ms: timeout.as_millis() as u64,
                        });
                    }
                }
                // Unreachable while any ctx is alive (each holds the full
                // sender vector), but map it defensively.
                Err(RecvTimeoutError::Disconnected) => {
                    break Err(self.watch.poison_error().unwrap_or(MpiSimError::Timeout {
                        rank: self.rank,
                        op: op.clone(),
                        waited_ms: 0,
                    }));
                }
            }
        };
        self.watch.exit(self.rank);
        res
    }

    /// Global barrier across all ranks. Deadline-protected like `recv`;
    /// a failure panics with a structured [`MpiSimError`] that
    /// [`run_ranks`] converts into its `Err` return.
    pub fn barrier(&self) {
        if let Err(e) = self
            .barrier
            .wait_deadline(self.rank, &self.watch, &self.cfg)
        {
            panic::panic_any(e);
        }
    }
}

pub(crate) fn panic_payload_to_error(
    rank: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> MpiSimError {
    match payload.downcast::<MpiSimError>() {
        Ok(e) => *e,
        // A compiler error escaping a rank body keeps its diagnostics
        // instead of being flattened to a panic string.
        Err(payload) => match payload.downcast::<fsc_ir::IrError>() {
            Ok(e) => MpiSimError::compile_failure(rank, *e),
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else {
                    "non-string panic payload".to_string()
                };
                MpiSimError::RankPanicked { rank, message }
            }
        },
    }
}

/// Run `size` ranks, each executing `body`, and collect each rank's result
/// in rank order. A rank panic is caught, attributed to its rank, and
/// poisons the communicator so the surviving ranks error out of their
/// blocking waits instead of hanging; the root-cause failure is returned.
pub fn run_ranks<T, F>(size: usize, body: F) -> Result<Vec<T>, MpiSimError>
where
    T: Send + 'static,
    F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
{
    run_ranks_cfg(size, RankConfig::default(), body)
}

/// [`run_ranks`] with explicit deadline/watchdog configuration.
pub fn run_ranks_cfg<T, F>(size: usize, cfg: RankConfig, body: F) -> Result<Vec<T>, MpiSimError>
where
    T: Send + 'static,
    F: Fn(&mut RankCtx) -> T + Send + Sync + 'static,
{
    assert!(size > 0);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let barrier = Arc::new(Barrier::new(size));
    let watch = Arc::new(WatchState::new(size));
    let body = Arc::new(body);

    let mut handles = Vec::with_capacity(size);
    for (rank, receiver) in receivers.into_iter().enumerate() {
        let senders = Arc::clone(&senders);
        let barrier = Arc::clone(&barrier);
        let watch = Arc::clone(&watch);
        let body = Arc::clone(&body);
        handles.push(std::thread::spawn(move || {
            let mut ctx = RankCtx {
                rank,
                size,
                senders,
                receiver,
                stash: Vec::new(),
                barrier,
                watch: Arc::clone(&watch),
                cfg,
            };
            match panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
                Ok(v) => {
                    watch.done(rank);
                    Ok(v)
                }
                Err(payload) => {
                    let err = panic_payload_to_error(rank, payload);
                    // Release everyone still blocked on the barrier or in
                    // recv: they abort with Poisoned at their next poll.
                    watch.poison(rank, err.to_string());
                    watch.done(rank);
                    Err(err)
                }
            }
        }));
    }
    let mut results = Vec::with_capacity(size);
    let mut errors: Vec<MpiSimError> = Vec::new();
    for (rank, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(v)) => results.push(v),
            Ok(Err(e)) => errors.push(e),
            // catch_unwind swallows all panics; a join error would mean the
            // thread died outside it.
            Err(_) => errors.push(MpiSimError::RankPanicked {
                rank,
                message: "rank thread died outside catch_unwind".into(),
            }),
        }
    }
    if let Some(root) = errors.into_iter().min_by_key(|e| e.root_cause_priority()) {
        return Err(root);
    }
    Ok(results)
}

/// Convenience: run a 1-D halo-exchanged Jacobi-style update across ranks
/// and return per-rank message counts — used by tests and as the skeleton
/// of the hand-MPI baseline.
pub fn message_counts_after<F>(size: usize, body: F) -> HashMap<usize, usize>
where
    F: Fn(&mut RankCtx) -> usize + Send + Sync + 'static,
{
    run_ranks(size, body)
        .expect("rank group failed")
        .into_iter()
        .enumerate()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = run_ranks(4, |ctx| {
            let next = (ctx.rank + 1) % ctx.size;
            let prev = (ctx.rank + ctx.size - 1) % ctx.size;
            ctx.send(next, 0, vec![ctx.rank as f64]);
            let got = ctx.recv(prev, 0);
            got[0]
        })
        .unwrap();
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn out_of_order_matching() {
        let results = run_ranks(2, |ctx| {
            if ctx.rank == 0 {
                ctx.send(1, 7, vec![7.0]);
                ctx.send(1, 8, vec![8.0]);
                0.0
            } else {
                // Receive in the opposite order to force stashing.
                let b = ctx.recv(0, 8);
                let a = ctx.recv(0, 7);
                a[0] * 10.0 + b[0]
            }
        })
        .unwrap();
        assert_eq!(results[1], 78.0);
    }

    #[test]
    fn barrier_synchronises_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static PHASE1: AtomicUsize = AtomicUsize::new(0);
        let results = run_ranks(8, |ctx| {
            PHASE1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all 8 increments.
            PHASE1.load(Ordering::SeqCst)
        })
        .unwrap();
        assert!(results.iter().all(|&v| v == 8));
    }

    #[test]
    fn halo_exchange_1d() {
        // Each rank owns 4 cells of a 16-cell line initialised to its rank;
        // one halo swap then an average must see neighbour values.
        let results = run_ranks(4, |ctx| {
            let mut local = [ctx.rank as f64; 6]; // 4 + 2 halo
                                                  // Exchange with left and right.
            if ctx.rank > 0 {
                ctx.send(ctx.rank - 1, 1, vec![local[1]]);
            }
            if ctx.rank + 1 < ctx.size {
                ctx.send(ctx.rank + 1, 2, vec![local[4]]);
            }
            if ctx.rank > 0 {
                local[0] = ctx.recv(ctx.rank - 1, 2)[0];
            }
            if ctx.rank + 1 < ctx.size {
                local[5] = ctx.recv(ctx.rank + 1, 1)[0];
            }
            (local[0], local[5])
        })
        .unwrap();
        assert_eq!(results[1], (0.0, 2.0));
        assert_eq!(results[2], (1.0, 3.0));
        // Boundary ranks keep their own values in the unexchanged halo.
        assert_eq!(results[0].0, 0.0);
        assert_eq!(results[3].1, 3.0);
    }

    #[test]
    fn single_rank_runs() {
        let r = run_ranks(1, |ctx| ctx.size).unwrap();
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn recv_deadline_times_out_with_diagnosis() {
        let cfg = RankConfig {
            recv_deadline: Duration::from_millis(2000),
            deadlock_grace: Duration::from_millis(10_000), // never trips here
            poll: Duration::from_millis(5),
        };
        let err = run_ranks_cfg(2, cfg, |ctx| {
            if ctx.rank == 0 {
                // Rank 1 never sends tag 5.
                ctx.recv_deadline(1, 5, Duration::from_millis(80))
                    .map_err(|e| std::panic::panic_any(e))
                    .unwrap()
            } else {
                vec![]
            }
        })
        .unwrap_err();
        match err {
            MpiSimError::Timeout { rank, op, .. } => {
                assert_eq!(rank, 0);
                assert!(op.contains("src=1") && op.contains("tag=5"), "{op}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_is_named_and_releases_barrier() {
        let t0 = Instant::now();
        let err = run_ranks(4, |ctx| {
            if ctx.rank == 2 {
                panic!("deliberate failure in rank body");
            }
            // The other ranks head into a barrier rank 2 will never reach:
            // the poison must release them promptly.
            ctx.barrier();
        })
        .unwrap_err();
        match &err {
            MpiSimError::RankPanicked { rank, message } => {
                assert_eq!(*rank, 2);
                assert!(message.contains("deliberate failure"), "{message}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "survivors must not wait out the full deadline"
        );
    }

    #[test]
    fn compiler_error_in_rank_body_keeps_its_diagnostics() {
        use fsc_ir::diag::Diagnostic;
        use fsc_ir::IrError;
        let err = run_ranks(4, |ctx| {
            if ctx.rank == 1 {
                let e = IrError::from_diagnostic(
                    Diagnostic::error("E0601", "lowering error: no such kernel").at_line_col(3, 14),
                );
                std::panic::panic_any(e);
            }
            ctx.barrier();
        })
        .unwrap_err();
        match &err {
            MpiSimError::CompileFailure { rank, diagnostics } => {
                assert_eq!(*rank, 1);
                let rendered = diagnostics[0].render();
                assert!(rendered.contains("E0601"), "{rendered}");
                assert!(rendered.contains("line 3:14"), "{rendered}");
            }
            other => panic!("expected CompileFailure, got {other:?}"),
        }
        // Display names the rank and carries the coded diagnostic.
        let shown = err.to_string();
        assert!(shown.contains("rank 1"), "{shown}");
        assert!(shown.contains("E0601"), "{shown}");
        // And the driving layer can round-trip it back to an IrError whose
        // diagnostics record which rank failed.
        let back = err.into_compile_error().unwrap();
        let d = back.primary().unwrap();
        assert!(
            d.notes.iter().any(|n| n.contains("rank 1")),
            "{:?}",
            d.notes
        );
    }

    #[test]
    fn mismatched_tags_surface_as_deadlock_not_hang() {
        let cfg = RankConfig {
            recv_deadline: Duration::from_secs(20),
            deadlock_grace: Duration::from_millis(150),
            poll: Duration::from_millis(5),
        };
        let err = run_ranks_cfg(2, cfg, |ctx| {
            // Tags deliberately mismatched: a classic MPI deadlock.
            if ctx.rank == 0 {
                ctx.recv(1, 99)
            } else {
                ctx.recv(0, 98)
            }
        })
        .unwrap_err();
        match &err {
            MpiSimError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2, "{blocked:?}");
                let ops: Vec<&str> = blocked.iter().map(|b| b.op.as_str()).collect();
                assert!(ops.iter().any(|o| o.contains("tag=99")), "{ops:?}");
                assert!(ops.iter().any(|o| o.contains("tag=98")), "{ops:?}");
            }
            // The non-detecting rank may also report; root-cause selection
            // must still prefer the deadlock diagnosis.
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }
}
