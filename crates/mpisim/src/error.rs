//! Structured failures of the MPI-sim substrate.
//!
//! Every blocking wait in the runtime carries a deadline, and every way a
//! distributed run can go wrong surfaces as one of these variants instead
//! of a hang or an anonymous panic: the test suite (and CI) always gets a
//! diagnosis naming the rank, the peer, and the pending tag.

use fsc_ir::diag::{codes, Diagnostic};
use fsc_ir::IrError;
use std::fmt;

/// One rank's blocked operation, as seen by the deadlock watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRank {
    /// The blocked rank.
    pub rank: usize,
    /// Human-readable description of the pending operation, including the
    /// peer and tag (e.g. `recv(src=1, tag=7)` or `barrier`).
    pub op: String,
    /// How long the rank has been blocked, in milliseconds.
    pub blocked_ms: u64,
}

impl fmt::Display for BlockedRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} blocked in {} for {}ms",
            self.rank, self.op, self.blocked_ms
        )
    }
}

/// A structured failure of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiSimError {
    /// A blocking wait exceeded its deadline without the communicator being
    /// fully deadlocked (e.g. a peer is slow or never sends).
    Timeout {
        /// The rank whose wait expired.
        rank: usize,
        /// The operation that timed out (peer + tag included).
        op: String,
        /// How long the rank waited, in milliseconds.
        waited_ms: u64,
    },
    /// Every live rank is blocked and no message has been delivered for the
    /// watchdog's grace period: a true deadlock, with the complete table of
    /// stuck ranks and their pending operations.
    Deadlock {
        /// All blocked ranks at detection time.
        blocked: Vec<BlockedRank>,
    },
    /// A rank's body panicked; the panic was caught and the barrier
    /// poisoned so the surviving ranks error out instead of hanging.
    RankPanicked {
        /// The rank that panicked.
        rank: usize,
        /// The panic message.
        message: String,
    },
    /// The communicator was poisoned by another rank's failure; this rank
    /// aborted its blocking wait as a consequence.
    Poisoned {
        /// The rank whose failure poisoned the communicator.
        by_rank: usize,
        /// Why the communicator was poisoned.
        reason: String,
    },
    /// The resilient protocol retransmitted a message up to its retry bound
    /// without ever seeing an acknowledgement.
    RetriesExhausted {
        /// The sending rank.
        rank: usize,
        /// The destination rank.
        dest: usize,
        /// The user tag of the unacknowledged message.
        tag: i64,
        /// Send attempts made (first transmission + retries).
        attempts: u32,
    },
    /// A rank's body hit a compiler error (an [`IrError`] escaping a kernel
    /// compile or interpretation step). The diagnostics are carried through
    /// structurally so the driving layer can render coded errors naming the
    /// failing rank instead of a flattened panic string.
    CompileFailure {
        /// The rank on which the compiler error surfaced.
        rank: usize,
        /// The structured diagnostics of the underlying compile error.
        diagnostics: Vec<Diagnostic>,
    },
    /// A configuration error (bad fault plan, crash without a checkpoint,
    /// invalid partition arguments).
    InvalidConfig(String),
}

impl fmt::Display for MpiSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout {
                rank,
                op,
                waited_ms,
            } => write!(f, "rank {rank}: {op} timed out after {waited_ms}ms"),
            Self::Deadlock { blocked } => {
                write!(f, "deadlock across {} rank(s): ", blocked.len())?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            Self::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            Self::Poisoned { by_rank, reason } => {
                write!(f, "communicator poisoned by rank {by_rank}: {reason}")
            }
            Self::RetriesExhausted {
                rank,
                dest,
                tag,
                attempts,
            } => write!(
                f,
                "rank {rank}: message to rank {dest} (tag {tag}) unacknowledged after {attempts} attempts"
            ),
            Self::CompileFailure { rank, diagnostics } => {
                write!(f, "rank {rank}: compiler error")?;
                for d in diagnostics {
                    write!(f, "\n  {}", d.render())?;
                }
                Ok(())
            }
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MpiSimError {}

impl MpiSimError {
    /// Severity used to pick the root cause when several ranks fail at
    /// once: cascading poison errors rank below the failure that caused
    /// them.
    pub(crate) fn root_cause_priority(&self) -> u8 {
        match self {
            Self::CompileFailure { .. } => 0,
            Self::RankPanicked { .. } => 1,
            Self::Deadlock { .. } => 2,
            Self::RetriesExhausted { .. } => 3,
            Self::Timeout { .. } => 4,
            Self::InvalidConfig(_) => 5,
            Self::Poisoned { .. } => 6,
        }
    }

    /// Wrap a compiler error that surfaced on `rank`, preserving its
    /// structured diagnostics (or synthesising an `E0701` one when the
    /// error was string-only).
    pub fn compile_failure(rank: usize, err: IrError) -> Self {
        let diagnostics = if err.diagnostics.is_empty() {
            vec![Diagnostic::error(codes::EXEC, err.message)]
        } else {
            err.diagnostics
        };
        Self::CompileFailure { rank, diagnostics }
    }

    /// Recover the structured compile error, if that is what this is: the
    /// inverse of [`MpiSimError::compile_failure`], used by the driving
    /// layer to re-raise rank failures as coded diagnostics.
    pub fn into_compile_error(self) -> Result<IrError, Self> {
        match self {
            Self::CompileFailure { rank, diagnostics } => {
                let diagnostics = diagnostics
                    .into_iter()
                    .map(|d| d.note(format!("surfaced on rank {rank} of a distributed run")))
                    .collect();
                Ok(IrError::from_diagnostics(diagnostics))
            }
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_names_ranks_and_tags() {
        let e = MpiSimError::Deadlock {
            blocked: vec![
                BlockedRank {
                    rank: 0,
                    op: "recv(src=1, tag=99)".into(),
                    blocked_ms: 210,
                },
                BlockedRank {
                    rank: 1,
                    op: "recv(src=0, tag=98)".into(),
                    blocked_ms: 209,
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("rank 0"), "{s}");
        assert!(s.contains("tag=99"), "{s}");
        assert!(s.contains("rank 1"), "{s}");
        assert!(s.contains("tag=98"), "{s}");
    }

    #[test]
    fn poison_ranks_below_origin_failures() {
        let panic = MpiSimError::RankPanicked {
            rank: 2,
            message: "boom".into(),
        };
        let poison = MpiSimError::Poisoned {
            by_rank: 2,
            reason: "rank 2 panicked".into(),
        };
        assert!(panic.root_cause_priority() < poison.root_cause_priority());
    }
}
