//! Deterministic fault injection for the MPI-sim substrate.
//!
//! A [`FaultPlan`] describes *what* the network and the machines may do to
//! a run — drop, duplicate, corrupt, delay, or reorder messages, and crash
//! a rank at a chosen iteration — and a seeded [`FaultInjector`] turns the
//! plan into per-rank deterministic decisions (xorshift64\*, seeded from
//! `plan.seed ^ rank`), so every injected fault sequence is reproducible
//! run-to-run. [`FaultStats`] counts what was injected and what the
//! recovery protocol did about it; the counters flow into `RunReport` so
//! resilience overhead is attested, not assumed.

use std::time::Duration;

use crate::error::MpiSimError;

/// Crash one rank at one iteration (fail-stop, then restart from its last
/// local checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank to crash.
    pub rank: usize,
    /// The iteration (0-based) at whose start the crash fires.
    pub at_iteration: usize,
}

/// A seeded, deterministic description of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; the same plan injects the same faults every run.
    pub seed: u64,
    /// Probability a sent data message is silently dropped.
    pub drop_prob: f64,
    /// Probability a sent data message is delivered twice.
    pub dup_prob: f64,
    /// Probability a sent data message has one payload bit flipped.
    pub corrupt_prob: f64,
    /// Probability a sent data message is delayed by up to
    /// [`Self::max_delay_ms`] before entering the network.
    pub delay_prob: f64,
    /// Upper bound of an injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Probability a sent data message is held back until the *next* send
    /// to the same destination (an adjacent-pair reorder).
    pub reorder_prob: f64,
    /// Optional fail-stop crash of one rank.
    pub crash: Option<CrashSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing: the resilient protocol still runs
    /// (sequence numbers, acks, checkpoints) so its overhead is measurable
    /// at 0% faults.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            max_delay_ms: 0,
            reorder_prob: 0.0,
            crash: None,
        }
    }

    /// A lossy-network plan: `drop_prob` drops plus light duplication and
    /// reordering — the standard stress configuration of the tests.
    pub fn lossy(seed: u64, drop_prob: f64) -> Self {
        Self {
            drop_prob,
            dup_prob: drop_prob / 2.0,
            reorder_prob: drop_prob / 2.0,
            ..Self::none(seed)
        }
    }

    /// Add a rank crash to the plan.
    pub fn with_crash(mut self, rank: usize, at_iteration: usize) -> Self {
        self.crash = Some(CrashSpec { rank, at_iteration });
        self
    }

    /// Validate probabilities and delay bounds.
    pub fn validate(&self) -> Result<(), MpiSimError> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("dup_prob", self.dup_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("delay_prob", self.delay_prob),
            ("reorder_prob", self.reorder_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(MpiSimError::InvalidConfig(format!(
                    "fault plan {name} = {p} outside [0, 1]"
                )));
            }
        }
        if self.delay_prob > 0.0 && self.max_delay_ms == 0 {
            return Err(MpiSimError::InvalidConfig(
                "delay_prob > 0 requires max_delay_ms > 0".into(),
            ));
        }
        Ok(())
    }

    /// True when the plan can perturb message traffic at all.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.delay_prob > 0.0
            || self.reorder_prob > 0.0
            || self.crash.is_some()
    }
}

/// What the injector decided to do to one outgoing data message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Deliver normally.
    Deliver,
    /// Silently drop (the sender's retry timer will recover it).
    Drop,
    /// Deliver twice (the receiver's sequence dedup drops the extra).
    Duplicate,
    /// Flip one payload bit (the receiver's checksum rejects it).
    Corrupt,
    /// Hold the message for this long before it enters the network.
    Delay(Duration),
    /// Hold until the next send to the same destination (reorder).
    HoldUntilNext,
}

/// xorshift64\* — deterministic, allocation-free, good enough for fault
/// schedules (same generator family as the proptest shim).
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

/// Per-rank deterministic realisation of a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rank: usize,
    rng: Rng,
    crash_armed: bool,
}

impl FaultInjector {
    /// Injector for `rank` under `plan`.
    pub fn new(plan: &FaultPlan, rank: usize) -> Self {
        // Mix the rank into the seed so each rank draws an independent but
        // reproducible stream.
        let seed = plan
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((rank as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
        Self {
            plan: plan.clone(),
            rank,
            rng: Rng::new(seed),
            crash_armed: plan.crash.is_some_and(|c| c.rank == rank),
        }
    }

    /// The plan this injector realises.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one outgoing data message. `retransmit` draws
    /// skip the reorder hold (a retransmission must not wait for a next
    /// send that may never come) but still face drops, corruption, and
    /// delays — retrying once is not a guarantee of delivery.
    pub fn on_send(&mut self, retransmit: bool) -> SendAction {
        let u = self.rng.unit();
        let mut edge = self.plan.drop_prob;
        if u < edge {
            return SendAction::Drop;
        }
        edge += self.plan.dup_prob;
        if u < edge {
            return SendAction::Duplicate;
        }
        edge += self.plan.corrupt_prob;
        if u < edge {
            return SendAction::Corrupt;
        }
        edge += self.plan.delay_prob;
        if u < edge {
            let ms = 1 + self.rng.below(self.plan.max_delay_ms.max(1));
            return SendAction::Delay(Duration::from_millis(ms));
        }
        edge += self.plan.reorder_prob;
        if u < edge && !retransmit {
            return SendAction::HoldUntilNext;
        }
        SendAction::Deliver
    }

    /// Pick the payload bit to flip for a corruption (word index drawn
    /// deterministically; the caller maps it into the payload).
    pub fn corrupt_word(&mut self, payload_len: usize) -> usize {
        if payload_len == 0 {
            0
        } else {
            self.rng.below(payload_len as u64) as usize
        }
    }

    /// True exactly once, at the start of the crash iteration of the
    /// crashing rank.
    pub fn should_crash(&mut self, iteration: usize) -> bool {
        if self.crash_armed {
            if let Some(c) = self.plan.crash {
                if c.rank == self.rank && iteration >= c.at_iteration {
                    self.crash_armed = false;
                    return true;
                }
            }
        }
        false
    }
}

/// Counters attesting injected faults and the recovery work they caused.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Data messages sent (first transmissions, not retries).
    pub data_msgs: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
    /// Injected: messages dropped in the network.
    pub injected_drops: u64,
    /// Injected: messages delivered twice.
    pub injected_dups: u64,
    /// Injected: messages with a flipped payload bit.
    pub injected_corruptions: u64,
    /// Injected: messages delayed.
    pub injected_delays: u64,
    /// Injected: messages held back past a later send (reorders).
    pub injected_reorders: u64,
    /// Injected: rank crashes.
    pub injected_crashes: u64,
    /// Protocol: retransmissions after a missing ack.
    pub retries: u64,
    /// Protocol: duplicate deliveries discarded by sequence dedup.
    pub duplicates_dropped: u64,
    /// Protocol: deliveries rejected by the checksum.
    pub corruptions_detected: u64,
    /// Protocol: local checkpoints taken.
    pub checkpoints: u64,
    /// Protocol: restores from a checkpoint after a crash.
    pub restores: u64,
    /// Protocol: iterations re-executed during restore-and-replay.
    pub replayed_iterations: u64,
    /// Wall-clock seconds of work discarded by crashes (checkpoint-to-crash
    /// compute that must be replayed).
    pub wasted_seconds: f64,
}

impl FaultStats {
    /// Total injected network faults (excludes crashes).
    pub fn injected(&self) -> u64 {
        self.injected_drops
            + self.injected_dups
            + self.injected_corruptions
            + self.injected_delays
            + self.injected_reorders
    }

    /// Fold another rank's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.data_msgs += other.data_msgs;
        self.acks_sent += other.acks_sent;
        self.injected_drops += other.injected_drops;
        self.injected_dups += other.injected_dups;
        self.injected_corruptions += other.injected_corruptions;
        self.injected_delays += other.injected_delays;
        self.injected_reorders += other.injected_reorders;
        self.injected_crashes += other.injected_crashes;
        self.retries += other.retries;
        self.duplicates_dropped += other.duplicates_dropped;
        self.corruptions_detected += other.corruptions_detected;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.replayed_iterations += other.replayed_iterations;
        self.wasted_seconds += other.wasted_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_rank() {
        let plan = FaultPlan::lossy(42, 0.2);
        let mut a = FaultInjector::new(&plan, 3);
        let mut b = FaultInjector::new(&plan, 3);
        let seq_a: Vec<SendAction> = (0..64).map(|_| a.on_send(false)).collect();
        let seq_b: Vec<SendAction> = (0..64).map(|_| b.on_send(false)).collect();
        assert_eq!(seq_a, seq_b);
        // A different rank draws a different stream.
        let mut c = FaultInjector::new(&plan, 4);
        let seq_c: Vec<SendAction> = (0..64).map(|_| c.on_send(false)).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan {
            drop_prob: 0.25,
            ..FaultPlan::none(7)
        };
        let mut inj = FaultInjector::new(&plan, 0);
        let drops = (0..4000)
            .filter(|_| inj.on_send(false) == SendAction::Drop)
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((0.2..=0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn crash_fires_exactly_once_on_the_right_rank() {
        let plan = FaultPlan::none(1).with_crash(2, 5);
        let mut wrong = FaultInjector::new(&plan, 1);
        assert!(!wrong.should_crash(5));
        let mut right = FaultInjector::new(&plan, 2);
        assert!(!right.should_crash(4));
        assert!(right.should_crash(5));
        assert!(!right.should_crash(6), "crash must be one-shot");
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut p = FaultPlan::none(0);
        p.drop_prob = 1.5;
        assert!(p.validate().is_err());
        let mut q = FaultPlan::none(0);
        q.delay_prob = 0.1;
        assert!(q.validate().is_err(), "delay without max_delay_ms");
        q.max_delay_ms = 5;
        assert!(q.validate().is_ok());
    }

    #[test]
    fn zero_plan_is_inactive_and_injects_nothing() {
        let plan = FaultPlan::none(9);
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(&plan, 0);
        assert!((0..256).all(|_| inj.on_send(false) == SendAction::Deliver));
    }
}
