//! Work-stealing cooperative rank scheduler.
//!
//! The thread-per-rank [`runtime`](crate::runtime) tops out around a few
//! dozen ranks — beyond that, thousands of OS threads thrash the machine
//! and the measured makespan stops meaning anything. This module runs rank
//! bodies as **resumable tasks** multiplexed over a fixed worker pool:
//!
//! * each rank is a [`CoopTask`] state machine; one `step` runs to the next
//!   blocking point and returns [`Step::Done`], [`Step::Yield`] or
//!   [`Step::Blocked`];
//! * workers own per-worker run deques and **steal from the back** of a
//!   peer's deque when their own (and the shared injector) are empty —
//!   steals are counted and attested in [`CoopRunStats`];
//! * a task that blocks on a receive **parks**: it consumes no worker until
//!   a message lands in its mailbox (the sender re-queues it) or its wake
//!   timer fires. The parked/queued/running transitions keep a global
//!   runnable count exact, so the scheduler detects a true deadlock
//!   *structurally*: no task runnable, no timer pending, no aggregation
//!   buffer unflushed ⇒ nothing can ever wake — report every parked rank
//!   and its pending operation;
//! * **hierarchical aggregation** (node-level communicators): ranks are
//!   grouped into virtual nodes of `node_size`; user-tag messages between
//!   two distinct nodes are coalesced into one envelope per (source node,
//!   destination node) pair and flushed on a count threshold or when a
//!   worker goes idle. Logical vs physical message/byte counts are attested
//!   so the aggregation ratio is measured, not assumed.
//!
//! [`CoopResilient`] ports the full resilient protocol
//! ([`resilient`](crate::resilient): sequenced + checksummed envelopes,
//! ack/retry, checkpoint/restore-and-replay, message-based barrier) to
//! poll-based form so fault plans, crash recovery and deadlock detection
//! keep working under cooperative scheduling.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{BlockedRank, MpiSimError};
use crate::fault::{FaultInjector, FaultPlan, FaultStats, SendAction};
use crate::resilient::{checksum, ResilientConfig, ACK_TAG, BACKOFF_CAP, BARRIER_TAG};
use crate::runtime::{panic_payload_to_error, Message};

/// Modelled wire overhead of one point-to-point message (routing header).
const MSG_HEADER_BYTES: u64 = 24;

/// Messages parked in one inter-node aggregation buffer, each tagged
/// with its destination rank.
type AggBuffer = Vec<(usize, Message)>;
/// Modelled wire overhead of one aggregated inter-node envelope.
const ENVELOPE_HEADER_BYTES: u64 = 24;
/// Grace period before a globally-stalled communicator is declared
/// deadlocked by [`CoopCtx::deadlock_check`] (mirrors the thread runtime's
/// watchdog grace).
pub const DEADLOCK_GRACE: Duration = Duration::from_millis(250);

/// Outcome of one cooperative step.
pub enum Step<T> {
    /// The task finished with this result.
    Done(T),
    /// The task cannot progress until a message arrives (or its wake timer
    /// fires). Call [`CoopCtx::park`] before returning this so the
    /// scheduler knows the pending operation and the wake deadline.
    Blocked,
    /// The task made progress and has more work; re-queue it immediately
    /// (lets long compute phases interleave fairly on few workers).
    Yield,
}

/// A resumable rank body. `step` runs the task to its next blocking point;
/// the scheduler guarantees at most one `step` of a given task is running
/// at any time.
pub trait CoopTask: Send {
    /// The task's final result type.
    type Out: Send;
    /// Advance the task. Returning `Err` fails the whole run (poisons the
    /// communicator), like a rank panic under the thread runtime.
    fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result<Step<Self::Out>, MpiSimError>;
}

/// Tuning of the cooperative scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoopConfig {
    /// Worker threads; `0` uses the machine's available parallelism
    /// (capped at the task count).
    pub workers: usize,
    /// Ranks per virtual node for hierarchical message aggregation;
    /// `0` or `1` disables aggregation.
    pub node_size: usize,
    /// Flush an inter-node aggregation buffer once it holds this many
    /// messages; `0` defaults to `node_size` (one same-edge message per
    /// rank of the node).
    pub agg_flush_messages: usize,
}

/// Measured scheduler/transport counters of one cooperative run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoopRunStats {
    /// Worker threads actually used.
    pub workers: usize,
    /// Tasks popped from another worker's deque.
    pub steals: u64,
    /// Times a task parked on a blocking operation.
    pub parks: u64,
    /// User-tag (tag ≥ 0) messages sent by tasks.
    pub logical_messages: u64,
    /// Wire transfers those became: aggregated cross-node envelopes count
    /// once; intra-node deliveries (shared memory) count zero.
    pub physical_envelopes: u64,
    /// Payload bytes of user-tag messages.
    pub logical_bytes: u64,
    /// Wire bytes including per-message and per-envelope headers
    /// (cross-node traffic only once nodes group more than one rank).
    pub physical_bytes: u64,
}

impl CoopRunStats {
    /// Logical-to-physical message ratio of the aggregating transport
    /// (1.0 when aggregation is off or nothing was sent).
    pub fn aggregation_ratio(&self) -> f64 {
        if self.physical_envelopes == 0 {
            1.0
        } else {
            self.logical_messages as f64 / self.physical_envelopes as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Queued,
    Running,
    Parked,
    Done,
}

struct Ctl {
    status: Status,
    /// A wake arrived while the task was `Running`; re-queue instead of
    /// parking when its step returns `Blocked` (no lost wakeups).
    wake_pending: bool,
    block_op: String,
    parked_since: Instant,
}

struct Slot {
    ctl: Mutex<Ctl>,
    mailbox: Mutex<VecDeque<Message>>,
    /// Out-of-order arrivals set aside by a selective `try_recv`.
    stash: Mutex<VecDeque<Message>>,
}

struct Net {
    slots: Vec<Slot>,
    queues: Vec<Mutex<VecDeque<usize>>>,
    injector: Mutex<VecDeque<usize>>,
    timers: Mutex<BinaryHeap<Reverse<(Instant, usize)>>>,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Tasks in `Queued` or `Running` state. Increments happen before a
    /// task becomes counted and decrements after it stops being counted,
    /// so `runnable == 0` proves no task is queued or running.
    runnable: AtomicUsize,
    done: AtomicUsize,
    steals: AtomicU64,
    parks: AtomicU64,
    last_progress: Mutex<Instant>,
    poisoned: AtomicBool,
    errors: Mutex<Vec<MpiSimError>>,
    node_size: usize,
    agg_cap: usize,
    agg: Mutex<HashMap<(usize, usize), AggBuffer>>,
    logical_messages: AtomicU64,
    physical_envelopes: AtomicU64,
    logical_bytes: AtomicU64,
    physical_bytes: AtomicU64,
}

impl Net {
    fn new(size: usize, workers: usize, cfg: &CoopConfig) -> Self {
        let now = Instant::now();
        Self {
            slots: (0..size)
                .map(|_| Slot {
                    ctl: Mutex::new(Ctl {
                        status: Status::Queued,
                        wake_pending: false,
                        block_op: String::new(),
                        parked_since: now,
                    }),
                    mailbox: Mutex::new(VecDeque::new()),
                    stash: Mutex::new(VecDeque::new()),
                })
                .collect(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            timers: Mutex::new(BinaryHeap::new()),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            runnable: AtomicUsize::new(size),
            done: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            last_progress: Mutex::new(now),
            poisoned: AtomicBool::new(false),
            errors: Mutex::new(Vec::new()),
            node_size: cfg.node_size,
            agg_cap: if cfg.agg_flush_messages == 0 {
                cfg.node_size.max(1)
            } else {
                cfg.agg_flush_messages
            },
            agg: Mutex::new(HashMap::new()),
            logical_messages: AtomicU64::new(0),
            physical_envelopes: AtomicU64::new(0),
            logical_bytes: AtomicU64::new(0),
            physical_bytes: AtomicU64::new(0),
        }
    }

    fn size(&self) -> usize {
        self.slots.len()
    }

    fn bump_progress(&self) {
        *self.last_progress.lock() = Instant::now();
    }

    fn notify_idle(&self) {
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_all();
    }

    fn poison(&self, err: MpiSimError) {
        self.errors.lock().push(err);
        self.poisoned.store(true, Ordering::SeqCst);
        self.notify_idle();
    }

    fn node_of(&self, rank: usize) -> usize {
        if self.node_size <= 1 {
            rank
        } else {
            rank / self.node_size
        }
    }

    fn peer_done(&self, rank: usize) -> bool {
        self.slots[rank].ctl.lock().status == Status::Done
    }

    /// Push a message into `dest`'s mailbox and wake it.
    fn deliver(&self, wid: usize, dest: usize, msg: Message) {
        self.slots[dest].mailbox.lock().push_back(msg);
        self.bump_progress();
        self.wake(wid, dest);
    }

    /// Make a parked task runnable again (spurious wakes are harmless: the
    /// task re-checks its condition and re-parks). A wake racing a step in
    /// flight is latched in `wake_pending` so it is never lost.
    fn wake(&self, wid: usize, tid: usize) {
        let mut ctl = self.slots[tid].ctl.lock();
        match ctl.status {
            Status::Parked => {
                // Count the task runnable *before* it is visible as queued
                // (the deadlock check relies on `runnable` never
                // undercounting queued/running tasks).
                self.runnable.fetch_add(1, Ordering::SeqCst);
                ctl.status = Status::Queued;
                ctl.block_op.clear();
                drop(ctl);
                self.queues[wid].lock().push_back(tid);
                self.notify_idle();
            }
            Status::Running => ctl.wake_pending = true,
            Status::Queued | Status::Done => {}
        }
    }

    /// Route one message: direct to the mailbox, or into the inter-node
    /// aggregation buffer for user-tag traffic crossing a node boundary.
    /// Protocol tags (< 0) and retransmissions (`direct`) always bypass
    /// aggregation — they are latency-critical.
    fn send(&self, wid: usize, from: usize, dest: usize, tag: i64, data: Vec<f64>, direct: bool) {
        let bytes = (data.len() * 8) as u64;
        if tag >= 0 {
            self.logical_messages.fetch_add(1, Ordering::Relaxed);
            self.logical_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        let (sn, dn) = (self.node_of(from), self.node_of(dest));
        if !direct && tag >= 0 && self.node_size > 1 && sn != dn {
            let flush = {
                let mut agg = self.agg.lock();
                let buf = agg.entry((sn, dn)).or_default();
                buf.push((dest, Message { from, tag, data }));
                buf.len() >= self.agg_cap
            };
            if flush {
                self.flush_pair(wid, sn, dn);
            }
        } else {
            // Intra-node traffic (node_size > 1, same node) rides the
            // node's shared memory, not the fabric: it never serialises
            // into a wire envelope, so the physical counters skip it.
            if tag >= 0 && (self.node_size <= 1 || sn != dn) {
                self.physical_envelopes.fetch_add(1, Ordering::Relaxed);
                self.physical_bytes
                    .fetch_add(MSG_HEADER_BYTES + bytes, Ordering::Relaxed);
            }
            self.deliver(wid, dest, Message { from, tag, data });
        }
    }

    /// Flush one (source node, destination node) aggregation buffer as a
    /// single envelope.
    fn flush_pair(&self, wid: usize, sn: usize, dn: usize) {
        let buf = self.agg.lock().remove(&(sn, dn));
        let Some(buf) = buf else { return };
        if buf.is_empty() {
            return;
        }
        let payload: u64 = buf
            .iter()
            .map(|(_, m)| MSG_HEADER_BYTES + (m.data.len() * 8) as u64)
            .sum();
        self.physical_envelopes.fetch_add(1, Ordering::Relaxed);
        self.physical_bytes
            .fetch_add(ENVELOPE_HEADER_BYTES + payload, Ordering::Relaxed);
        for (dest, msg) in buf {
            self.deliver(wid, dest, msg);
        }
    }

    fn flush_all_agg(&self, wid: usize) {
        let keys: Vec<(usize, usize)> = self.agg.lock().keys().copied().collect();
        for (sn, dn) in keys {
            self.flush_pair(wid, sn, dn);
        }
    }

    fn agg_empty(&self) -> bool {
        self.agg.lock().is_empty()
    }

    /// Snapshot every parked rank's pending operation.
    fn blocked_ranks(&self) -> Vec<BlockedRank> {
        let mut out = Vec::new();
        for (rank, slot) in self.slots.iter().enumerate() {
            let ctl = slot.ctl.lock();
            if ctl.status == Status::Parked {
                out.push(BlockedRank {
                    rank,
                    op: if ctl.block_op.is_empty() {
                        "blocked".into()
                    } else {
                        ctl.block_op.clone()
                    },
                    blocked_ms: ctl.parked_since.elapsed().as_millis() as u64,
                });
            }
        }
        out
    }

    /// True when every non-done task is parked (no one queued or running).
    fn all_parked(&self) -> bool {
        self.slots.iter().all(|s| {
            let st = s.ctl.lock().status;
            st == Status::Parked || st == Status::Done
        })
    }
}

/// The per-step view a [`CoopTask`] gets of the communicator: its rank,
/// message send/receive, and park/wake-timer hints for the scheduler.
pub struct CoopCtx<'a> {
    net: &'a Net,
    wid: usize,
    rank: usize,
    block_op: Option<String>,
    wake_at: Option<Instant>,
}

impl CoopCtx<'_> {
    /// This task's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the run.
    pub fn size(&self) -> usize {
        self.net.size()
    }

    /// Send `data` to `dest` (possibly via the node-level aggregation
    /// buffer; per-(sender, destination, tag) order is preserved).
    pub fn send(&mut self, dest: usize, tag: i64, data: Vec<f64>) {
        self.net.send(self.wid, self.rank, dest, tag, data, false);
    }

    /// Send bypassing aggregation (retransmissions, latency-critical
    /// control traffic).
    pub fn send_direct(&mut self, dest: usize, tag: i64, data: Vec<f64>) {
        self.net.send(self.wid, self.rank, dest, tag, data, true);
    }

    /// Non-blocking selective receive with out-of-order stashing: returns
    /// the next message from `src` with `tag`, if one has arrived.
    pub fn try_recv(&mut self, src: usize, tag: i64) -> Option<Vec<f64>> {
        let slot = &self.net.slots[self.rank];
        let mut stash = slot.stash.lock();
        if let Some(pos) = stash.iter().position(|m| m.from == src && m.tag == tag) {
            return stash.remove(pos).map(|m| m.data);
        }
        let mut mb = slot.mailbox.lock();
        while let Some(m) = mb.pop_front() {
            if m.from == src && m.tag == tag {
                return Some(m.data);
            }
            stash.push_back(m);
        }
        None
    }

    /// Drain every arrived message (stash first, preserving arrival
    /// order) — the resilient layer does its own matching.
    pub fn drain_messages(&mut self) -> Vec<Message> {
        let slot = &self.net.slots[self.rank];
        let mut out: Vec<Message> = self.net.slots[self.rank].stash.lock().drain(..).collect();
        out.extend(slot.mailbox.lock().drain(..));
        out
    }

    /// True once `rank`'s task has completed (its result is committed; it
    /// will never ack or receive again).
    pub fn peer_done(&self, rank: usize) -> bool {
        self.net.peer_done(rank)
    }

    /// Record why this task is about to return [`Step::Blocked`] and when
    /// the scheduler should wake it even without a message (`None`: only a
    /// message wakes it).
    pub fn park(&mut self, op: impl Into<String>, wake_at: Option<Instant>) {
        self.block_op = Some(op.into());
        self.wake_at = wake_at;
    }

    /// Record protocol progress (delivery, ack) for the stall watchdog.
    pub fn progress(&self) {
        self.net.bump_progress();
    }

    /// Grace-based deadlock check for protocol layers whose parked tasks
    /// always hold wake timers (which mute the scheduler's structural
    /// check): reports a deadlock when nothing has progressed for `grace`
    /// and every other live task is parked. `my_op` names this task's
    /// pending operation in the report.
    pub fn deadlock_check(&self, grace: Duration, my_op: &str) -> Option<Vec<BlockedRank>> {
        if self.net.last_progress.lock().elapsed() < grace {
            return None;
        }
        // Only this task runs; everyone else must be parked (a queued or
        // running peer may still make progress).
        if self.net.runnable.load(Ordering::SeqCst) != 1 || !self.net.agg_empty() {
            return None;
        }
        if !self.net.slots.iter().enumerate().all(|(r, s)| {
            r == self.rank || matches!(s.ctl.lock().status, Status::Parked | Status::Done)
        }) {
            return None;
        }
        let mut blocked = self.net.blocked_ranks();
        blocked.push(BlockedRank {
            rank: self.rank,
            op: my_op.to_string(),
            blocked_ms: grace.as_millis() as u64,
        });
        blocked.sort_by_key(|b| b.rank);
        Some(blocked)
    }
}

fn effective_workers(cfg: &CoopConfig, size: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let w = if cfg.workers == 0 { auto } else { cfg.workers };
    w.clamp(1, size.max(1))
}

/// Run `size` rank tasks built by `factory` over the cooperative
/// scheduler, collecting each rank's result (in rank order) and the run's
/// scheduler/transport counters. Task errors and panics poison the run and
/// the root-cause failure is returned, exactly like
/// [`run_ranks`](crate::runtime::run_ranks).
pub fn run_tasks<K, F>(
    size: usize,
    cfg: CoopConfig,
    factory: F,
) -> Result<(Vec<K::Out>, CoopRunStats), MpiSimError>
where
    K: CoopTask,
    F: Fn(usize) -> K + Send + Sync,
{
    assert!(size > 0, "need at least one rank");
    let workers = effective_workers(&cfg, size);
    let net = Net::new(size, workers, &cfg);
    let tasks: Vec<Mutex<Option<K>>> = (0..size).map(|r| Mutex::new(Some(factory(r)))).collect();
    let results: Vec<Mutex<Option<K::Out>>> = (0..size).map(|_| Mutex::new(None)).collect();
    // Seed round-robin across the worker deques; imbalance (uneven rank
    // bodies, wake bursts landing on one worker) is what stealing levels.
    for r in 0..size {
        net.queues[r % workers].lock().push_back(r);
    }
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let net = &net;
            let tasks = &tasks;
            let results = &results;
            scope.spawn(move || worker_loop(wid, net, tasks, results));
        }
    });
    let stats = CoopRunStats {
        workers,
        steals: net.steals.load(Ordering::Relaxed),
        parks: net.parks.load(Ordering::Relaxed),
        logical_messages: net.logical_messages.load(Ordering::Relaxed),
        physical_envelopes: net.physical_envelopes.load(Ordering::Relaxed),
        logical_bytes: net.logical_bytes.load(Ordering::Relaxed),
        physical_bytes: net.physical_bytes.load(Ordering::Relaxed),
    };
    let errors = net.errors.into_inner();
    if let Some(root) = errors.into_iter().min_by_key(|e| e.root_cause_priority()) {
        return Err(root);
    }
    let outs = results
        .into_iter()
        .map(|m| m.into_inner().expect("all tasks completed"))
        .collect();
    Ok((outs, stats))
}

fn worker_loop<K: CoopTask>(
    wid: usize,
    net: &Net,
    tasks: &[Mutex<Option<K>>],
    results: &[Mutex<Option<K::Out>>],
) {
    loop {
        if net.poisoned.load(Ordering::SeqCst) || net.done.load(Ordering::SeqCst) >= net.size() {
            return;
        }
        match pop_task(net, wid) {
            Some(tid) => run_one(tid, wid, net, tasks, results),
            None => idle(net, wid),
        }
    }
}

fn pop_task(net: &Net, wid: usize) -> Option<usize> {
    if let Some(t) = net.queues[wid].lock().pop_front() {
        return Some(t);
    }
    if let Some(t) = net.injector.lock().pop_front() {
        return Some(t);
    }
    let workers = net.queues.len();
    for k in 1..workers {
        let victim = (wid + k) % workers;
        if let Some(t) = net.queues[victim].lock().pop_back() {
            net.steals.fetch_add(1, Ordering::Relaxed);
            return Some(t);
        }
    }
    None
}

fn run_one<K: CoopTask>(
    tid: usize,
    wid: usize,
    net: &Net,
    tasks: &[Mutex<Option<K>>],
    results: &[Mutex<Option<K::Out>>],
) {
    {
        let mut ctl = net.slots[tid].ctl.lock();
        debug_assert_eq!(ctl.status, Status::Queued, "popped task must be queued");
        ctl.status = Status::Running;
        ctl.wake_pending = false;
    }
    let mut task = tasks[tid].lock().take().expect("queued task present");
    let mut ctx = CoopCtx {
        net,
        wid,
        rank: tid,
        block_op: None,
        wake_at: None,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| task.step(&mut ctx)));
    match outcome {
        Ok(Ok(Step::Done(v))) => {
            *results[tid].lock() = Some(v);
            finish(net, tid);
            net.bump_progress();
        }
        Ok(Ok(Step::Yield)) => {
            *tasks[tid].lock() = Some(task);
            net.slots[tid].ctl.lock().status = Status::Queued;
            net.queues[wid].lock().push_back(tid);
        }
        Ok(Ok(Step::Blocked)) => {
            *tasks[tid].lock() = Some(task);
            let requeue = {
                let mut ctl = net.slots[tid].ctl.lock();
                if ctl.wake_pending {
                    ctl.wake_pending = false;
                    ctl.status = Status::Queued;
                    true
                } else {
                    ctl.status = Status::Parked;
                    ctl.block_op = ctx.block_op.take().unwrap_or_else(|| "blocked".into());
                    ctl.parked_since = Instant::now();
                    // Register the wake timer before dropping the runnable
                    // count so an idle worker can never observe "nothing
                    // runnable, no timer" while a timer registration is in
                    // flight.
                    if let Some(at) = ctx.wake_at {
                        net.timers.lock().push(Reverse((at, tid)));
                    }
                    net.runnable.fetch_sub(1, Ordering::SeqCst);
                    false
                }
            };
            if requeue {
                net.queues[wid].lock().push_back(tid);
            } else {
                net.parks.fetch_add(1, Ordering::Relaxed);
                // Idle workers re-evaluate: flush aggregation, arm timers,
                // or declare deadlock.
                net.notify_idle();
            }
        }
        Ok(Err(e)) => {
            finish(net, tid);
            net.poison(e);
        }
        Err(payload) => {
            let e = panic_payload_to_error(tid, payload);
            finish(net, tid);
            net.poison(e);
        }
    }
}

fn finish(net: &Net, tid: usize) {
    {
        let mut ctl = net.slots[tid].ctl.lock();
        ctl.status = Status::Done;
    }
    net.runnable.fetch_sub(1, Ordering::SeqCst);
    net.done.fetch_add(1, Ordering::SeqCst);
    net.notify_idle();
}

fn idle(net: &Net, wid: usize) {
    // Pending aggregation buffers are the cheapest latent progress: flush
    // them whenever a worker has nothing better to do.
    net.flush_all_agg(wid);
    let now = Instant::now();
    let mut woke = false;
    loop {
        let due = {
            let mut timers = net.timers.lock();
            match timers.peek() {
                Some(&Reverse((when, tid))) if when <= now => {
                    timers.pop();
                    Some(tid)
                }
                _ => None,
            }
        };
        match due {
            Some(tid) => {
                net.wake(wid, tid);
                woke = true;
            }
            None => break,
        }
    }
    if woke || net.runnable.load(Ordering::SeqCst) > 0 {
        return;
    }
    if net.done.load(Ordering::SeqCst) >= net.size() || net.poisoned.load(Ordering::SeqCst) {
        return;
    }
    let next_timer = net.timers.lock().peek().map(|&Reverse((when, _))| when);
    match next_timer {
        None => {
            // Structural deadlock candidate: nothing runnable, no timer,
            // aggregation flushed. Confirm by scanning every task — all
            // transitions happen under per-task locks and any wake source
            // would leave a queued/running task or a fresh timer behind.
            if net.runnable.load(Ordering::SeqCst) == 0
                && net.agg_empty()
                && net.timers.lock().is_empty()
                && net.all_parked()
                && net.runnable.load(Ordering::SeqCst) == 0
                && !net.poisoned.load(Ordering::SeqCst)
                && net.done.load(Ordering::SeqCst) < net.size()
            {
                let blocked = net.blocked_ranks();
                if !blocked.is_empty() {
                    net.poison(MpiSimError::Deadlock { blocked });
                }
            }
        }
        Some(when) => {
            let mut g = net.idle_lock.lock();
            if net.runnable.load(Ordering::SeqCst) == 0
                && !net.poisoned.load(Ordering::SeqCst)
                && net.done.load(Ordering::SeqCst) < net.size()
            {
                let dur = when
                    .saturating_duration_since(Instant::now())
                    .clamp(Duration::from_micros(50), Duration::from_millis(50));
                net.idle_cv.wait_for(&mut g, dur);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Resilient protocol, poll-based.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Pending {
    dest: usize,
    tag: i64,
    seq: u64,
    data: Vec<f64>,
    next_retry: Instant,
    retries: u32,
}

#[derive(Debug, Clone)]
struct Checkpoint {
    iter: usize,
    state: Vec<Vec<f64>>,
    next_seq: HashMap<(usize, i64), u64>,
    expected: HashMap<(usize, i64), u64>,
    barrier_epoch: u64,
    saved_at: Instant,
}

#[derive(Debug, Clone)]
enum BarrierPhase {
    /// Rank 0: gathering arrivals from ranks `1..size`; `next` is the next
    /// rank still awaited.
    Gather { next: usize },
    /// Non-root: notified rank 0, awaiting the release broadcast.
    AwaitRelease,
}

/// Poll-based port of [`ResilientCtx`](crate::resilient::ResilientCtx) for
/// cooperative tasks: identical wire protocol (sequenced + checksummed
/// envelopes, always-ack, bounded exponential retry, pessimistic receive
/// logging, checkpoint/restore-and-replay, message-based barrier), but
/// every blocking operation becomes a `*_poll` method that either
/// completes or records park hints on the [`CoopCtx`] and asks the caller
/// to return [`Step::Blocked`].
pub struct CoopResilient {
    rank: usize,
    size: usize,
    cfg: ResilientConfig,
    injector: FaultInjector,
    next_seq: HashMap<(usize, i64), u64>,
    expected: HashMap<(usize, i64), u64>,
    received: HashMap<(usize, i64), BTreeMap<u64, Vec<f64>>>,
    unacked: Vec<Pending>,
    delayed: Vec<(Instant, usize, i64, Vec<f64>)>,
    held: Vec<(Instant, usize, i64, Vec<f64>)>,
    checkpoint: Option<Checkpoint>,
    barrier_epoch: u64,
    barrier: Option<(u64, BarrierPhase)>,
    /// Deadline of the blocking operation currently in progress (armed on
    /// the first unsatisfied poll, cleared on completion).
    op_deadline: Option<Instant>,
    /// Injected-fault and recovery counters for this rank.
    pub stats: FaultStats,
}

impl CoopResilient {
    /// Protocol state for one cooperative rank under fault plan `plan`.
    pub fn new(rank: usize, size: usize, plan: &FaultPlan, cfg: ResilientConfig) -> Self {
        Self {
            rank,
            size,
            cfg,
            injector: FaultInjector::new(plan, rank),
            next_seq: HashMap::new(),
            expected: HashMap::new(),
            received: HashMap::new(),
            unacked: Vec::new(),
            delayed: Vec::new(),
            held: Vec::new(),
            checkpoint: None,
            barrier_epoch: 0,
            barrier: None,
            op_deadline: None,
            stats: FaultStats::default(),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Reliable send: sequence, remember until acked, hand to the (possibly
    /// faulty) network. Never blocks.
    pub fn send(&mut self, ctx: &mut CoopCtx<'_>, dest: usize, tag: i64, data: Vec<f64>) {
        assert!(
            tag >= 0,
            "user tags must be non-negative (negative tags are protocol-reserved)"
        );
        self.send_tagged(ctx, dest, tag, data);
    }

    fn send_tagged(&mut self, ctx: &mut CoopCtx<'_>, dest: usize, tag: i64, data: Vec<f64>) {
        let seq_slot = self.next_seq.entry((dest, tag)).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        let mut encoded = Vec::with_capacity(data.len() + 2);
        encoded.push(f64::from_bits(seq));
        encoded.push(f64::from_bits(checksum(self.rank, tag, seq, &data)));
        encoded.extend_from_slice(&data);
        self.stats.data_msgs += 1;
        self.unacked.push(Pending {
            dest,
            tag,
            seq,
            data: encoded.clone(),
            next_retry: Instant::now() + self.cfg.rto,
            retries: 0,
        });
        self.transmit(ctx, dest, tag, encoded, false);
    }

    fn transmit(
        &mut self,
        ctx: &mut CoopCtx<'_>,
        dest: usize,
        tag: i64,
        mut encoded: Vec<f64>,
        retransmit: bool,
    ) {
        let action = self.injector.on_send(retransmit);
        match action {
            SendAction::Drop => {
                self.stats.injected_drops += 1;
            }
            SendAction::Duplicate => {
                self.stats.injected_dups += 1;
                self.raw_send(ctx, dest, tag, encoded.clone(), retransmit);
                self.raw_send(ctx, dest, tag, encoded, retransmit);
            }
            SendAction::Corrupt => {
                self.stats.injected_corruptions += 1;
                if encoded.len() > 2 {
                    let w = 2 + self.injector.corrupt_word(encoded.len() - 2);
                    encoded[w] = f64::from_bits(encoded[w].to_bits() ^ 1);
                } else {
                    encoded[1] = f64::from_bits(encoded[1].to_bits() ^ 1);
                }
                self.raw_send(ctx, dest, tag, encoded, retransmit);
            }
            SendAction::Delay(d) => {
                self.stats.injected_delays += 1;
                self.delayed.push((Instant::now() + d, dest, tag, encoded));
            }
            SendAction::HoldUntilNext => {
                self.stats.injected_reorders += 1;
                self.held.push((Instant::now(), dest, tag, encoded));
            }
            SendAction::Deliver => {
                self.raw_send(ctx, dest, tag, encoded, retransmit);
            }
        }
        if !matches!(action, SendAction::HoldUntilNext) {
            self.release_held(ctx, Some(dest), Instant::now());
        }
    }

    fn raw_send(
        &mut self,
        ctx: &mut CoopCtx<'_>,
        dest: usize,
        tag: i64,
        data: Vec<f64>,
        direct: bool,
    ) {
        if ctx.peer_done(dest) {
            // The destination completed all of its receives: treat every
            // in-flight message to it as acknowledged (mirrors the thread
            // runtime's closed-channel handling).
            self.unacked.retain(|p| p.dest != dest);
            return;
        }
        if direct {
            ctx.send_direct(dest, tag, data);
        } else {
            ctx.send(dest, tag, data);
        }
    }

    fn send_ack(&mut self, ctx: &mut CoopCtx<'_>, dest: usize, orig_tag: i64, seq: u64) {
        self.stats.acks_sent += 1;
        let data = vec![f64::from_bits(orig_tag as u64), f64::from_bits(seq)];
        match self.injector.on_send(true) {
            SendAction::Drop => {
                self.stats.injected_drops += 1;
            }
            SendAction::Delay(d) => {
                self.stats.injected_delays += 1;
                self.delayed.push((Instant::now() + d, dest, ACK_TAG, data));
            }
            _ => self.raw_send(ctx, dest, ACK_TAG, data, true),
        }
    }

    fn handle(&mut self, ctx: &mut CoopCtx<'_>, msg: Message) {
        if msg.tag == ACK_TAG {
            if msg.data.len() != 2 {
                return;
            }
            let tag = msg.data[0].to_bits() as i64;
            let seq = msg.data[1].to_bits();
            let before = self.unacked.len();
            self.unacked
                .retain(|p| !(p.dest == msg.from && p.tag == tag && p.seq == seq));
            if self.unacked.len() != before {
                ctx.progress();
            }
            return;
        }
        if msg.data.len() < 2 {
            return;
        }
        let seq = msg.data[0].to_bits();
        let ck = msg.data[1].to_bits();
        let payload = &msg.data[2..];
        if checksum(msg.from, msg.tag, seq, payload) != ck {
            self.stats.corruptions_detected += 1;
            return;
        }
        let payload = payload.to_vec();
        self.send_ack(ctx, msg.from, msg.tag, seq);
        let key = (msg.from, msg.tag);
        let exp = *self.expected.get(&key).unwrap_or(&0);
        if seq < exp
            && !self
                .received
                .get(&key)
                .is_some_and(|m| m.contains_key(&seq))
        {
            self.stats.duplicates_dropped += 1;
            return;
        }
        let slot = self.received.entry(key).or_default();
        if let std::collections::btree_map::Entry::Vacant(e) = slot.entry(seq) {
            e.insert(payload);
            ctx.progress();
        } else {
            self.stats.duplicates_dropped += 1;
        }
    }

    fn release_held(&mut self, ctx: &mut CoopCtx<'_>, dest: Option<usize>, now: Instant) {
        let rto = self.cfg.rto;
        let mut due = Vec::new();
        self.held.retain(|(since, d, t, data)| {
            let release = dest == Some(*d) || now.duration_since(*since) >= rto;
            if release {
                due.push((*d, *t, data.clone()));
            }
            !release
        });
        for (d, t, data) in due {
            self.raw_send(ctx, d, t, data, true);
        }
    }

    fn release_delayed(&mut self, ctx: &mut CoopCtx<'_>, now: Instant) {
        let mut due = Vec::new();
        self.delayed.retain(|(when, d, t, data)| {
            if *when <= now {
                due.push((*d, *t, data.clone()));
                false
            } else {
                true
            }
        });
        for (d, t, data) in due {
            self.raw_send(ctx, d, t, data, true);
        }
    }

    fn retransmit_due(&mut self, ctx: &mut CoopCtx<'_>, now: Instant) -> Result<(), MpiSimError> {
        // A destination that completed will never ack: its messages are
        // done (mirrors the thread runtime's closed-channel handling).
        self.unacked.retain(|p| !ctx.peer_done(p.dest));
        let mut due = Vec::new();
        for p in &mut self.unacked {
            if now < p.next_retry {
                continue;
            }
            if p.retries + 1 >= self.cfg.max_retries {
                return Err(MpiSimError::RetriesExhausted {
                    rank: self.rank,
                    dest: p.dest,
                    tag: p.tag,
                    attempts: p.retries + 1,
                });
            }
            p.retries += 1;
            let backoff = self
                .cfg
                .rto
                .saturating_mul(1u32 << p.retries.min(5))
                .min(BACKOFF_CAP);
            p.next_retry = now + backoff;
            due.push((p.dest, p.tag, p.data.clone()));
        }
        for (dest, tag, data) in due {
            self.stats.retries += 1;
            self.transmit(ctx, dest, tag, data, true);
        }
        Ok(())
    }

    /// Drive the protocol once: deliver arrivals, release delayed/held
    /// messages, fire retry timers. Call at the top of every task step.
    pub fn poll(&mut self, ctx: &mut CoopCtx<'_>) -> Result<(), MpiSimError> {
        let now = Instant::now();
        self.release_delayed(ctx, now);
        self.release_held(ctx, None, now);
        for msg in ctx.drain_messages() {
            self.handle(ctx, msg);
        }
        self.retransmit_due(ctx, Instant::now())
    }

    /// Earliest instant at which the protocol has a timer duty
    /// (retransmit, delayed release, reorder release).
    pub fn next_timer(&self) -> Option<Instant> {
        let mut next: Option<Instant> = None;
        let mut fold = |t: Instant| next = Some(next.map_or(t, |n| n.min(t)));
        for p in &self.unacked {
            fold(p.next_retry);
        }
        for (when, ..) in &self.delayed {
            fold(*when);
        }
        let rto = self.cfg.rto;
        for (since, ..) in &self.held {
            fold(*since + rto);
        }
        next
    }

    fn try_deliver(&mut self, src: usize, tag: i64) -> Option<Vec<f64>> {
        let key = (src, tag);
        let exp = *self.expected.get(&key).unwrap_or(&0);
        let p = self.received.get(&key).and_then(|m| m.get(&exp))?.clone();
        self.expected.insert(key, exp + 1);
        Some(p)
    }

    /// Poll-based reliable receive: `Ok(Some(payload))` delivers the next
    /// in-sequence message of the `(src, tag)` stream; `Ok(None)` means the
    /// caller must return [`Step::Blocked`] (park hints are set). Fails
    /// with a structured error on deadline, detected deadlock, or retry
    /// exhaustion.
    pub fn recv_poll(
        &mut self,
        ctx: &mut CoopCtx<'_>,
        src: usize,
        tag: i64,
    ) -> Result<Option<Vec<f64>>, MpiSimError> {
        self.poll(ctx)?;
        if let Some(p) = self.try_deliver(src, tag) {
            self.op_deadline = None;
            return Ok(Some(p));
        }
        let now = Instant::now();
        let deadline = *self.op_deadline.get_or_insert(now + self.cfg.recv_deadline);
        let exp = *self.expected.get(&(src, tag)).unwrap_or(&0);
        let op = format!("coop recv(src={src}, tag={tag}, seq={exp})");
        if now >= deadline {
            self.op_deadline = None;
            return Err(MpiSimError::Timeout {
                rank: self.rank,
                op,
                waited_ms: self.cfg.recv_deadline.as_millis() as u64,
            });
        }
        if let Some(blocked) = ctx.deadlock_check(DEADLOCK_GRACE, &op) {
            self.op_deadline = None;
            return Err(MpiSimError::Deadlock { blocked });
        }
        // Wake for the earliest protocol duty, the op deadline, or the next
        // stall-watchdog check — whichever comes first.
        let mut wake = deadline.min(now + DEADLOCK_GRACE);
        if let Some(t) = self.next_timer() {
            wake = wake.min(t);
        }
        ctx.park(op, Some(wake));
        Ok(None)
    }

    /// Poll-based fault-tolerant barrier (all-to-rank-0 gather plus
    /// broadcast): `Ok(true)` once this rank has passed the barrier,
    /// `Ok(false)` to block (park hints set).
    pub fn barrier_poll(&mut self, ctx: &mut CoopCtx<'_>) -> Result<bool, MpiSimError> {
        if self.size == 1 {
            return Ok(true);
        }
        if self.barrier.is_none() {
            let epoch = self.barrier_epoch;
            self.barrier_epoch += 1;
            let phase = if self.rank == 0 {
                BarrierPhase::Gather { next: 1 }
            } else {
                self.send_tagged(ctx, 0, BARRIER_TAG, vec![epoch as f64]);
                BarrierPhase::AwaitRelease
            };
            self.barrier = Some((epoch, phase));
        }
        let (epoch, phase) = self.barrier.clone().expect("barrier in progress");
        match phase {
            BarrierPhase::Gather { mut next } => {
                while next < self.size {
                    match self.recv_poll(ctx, next, BARRIER_TAG)? {
                        Some(_) => next += 1,
                        None => {
                            self.barrier = Some((epoch, BarrierPhase::Gather { next }));
                            return Ok(false);
                        }
                    }
                }
                for r in 1..self.size {
                    self.send_tagged(ctx, r, BARRIER_TAG, vec![epoch as f64]);
                }
                self.barrier = None;
                Ok(true)
            }
            BarrierPhase::AwaitRelease => match self.recv_poll(ctx, 0, BARRIER_TAG)? {
                Some(_) => {
                    self.barrier = None;
                    Ok(true)
                }
                None => Ok(false),
            },
        }
    }

    /// Take a local checkpoint of `state` at iteration `iter` and
    /// garbage-collect the delivered prefix of the receive log.
    pub fn save_checkpoint(&mut self, iter: usize, state: &[Vec<f64>]) {
        self.stats.checkpoints += 1;
        for (key, slot) in self.received.iter_mut() {
            let exp = *self.expected.get(key).unwrap_or(&0);
            slot.retain(|s, _| *s >= exp);
        }
        self.checkpoint = Some(Checkpoint {
            iter,
            state: state.to_vec(),
            next_seq: self.next_seq.clone(),
            expected: self.expected.clone(),
            barrier_epoch: self.barrier_epoch,
            saved_at: Instant::now(),
        });
    }

    /// True exactly once when the fault plan crashes this rank at `iter`.
    pub fn crash_pending(&mut self, iter: usize) -> bool {
        self.injector.should_crash(iter)
    }

    /// Simulate the fail-stop crash and restart: discard volatile state,
    /// restore the last checkpoint, return `(iteration, state)` to resume
    /// from. Replay is deterministic: receives are served from the durable
    /// receive log and replayed sends reuse their original sequence
    /// numbers, so peers deduplicate them.
    pub fn crash_and_restore(
        &mut self,
        at_iter: usize,
    ) -> Result<(usize, Vec<Vec<f64>>), MpiSimError> {
        let cp = match &self.checkpoint {
            Some(cp) => cp.clone(),
            None => {
                return Err(MpiSimError::InvalidConfig(format!(
                    "rank {} crashed at iteration {at_iter} before any checkpoint",
                    self.rank
                )))
            }
        };
        self.stats.injected_crashes += 1;
        self.stats.restores += 1;
        self.stats.replayed_iterations += at_iter.saturating_sub(cp.iter) as u64;
        self.stats.wasted_seconds += cp.saved_at.elapsed().as_secs_f64();
        self.next_seq = cp.next_seq.clone();
        self.expected = cp.expected.clone();
        self.barrier_epoch = cp.barrier_epoch;
        // In-network state dies with the process; the sender-side message
        // log (`unacked`) and the receive log survive on stable storage.
        self.delayed.clear();
        self.held.clear();
        self.barrier = None;
        self.op_deadline = None;
        Ok((cp.iter, cp.state))
    }

    /// Poll-based end-of-body drain: give unacked messages a last chance to
    /// land without blocking shutdown on peers that already left.
    /// `Ok(true)` once drained (or the drain deadline passed), `Ok(false)`
    /// to block.
    pub fn drain_poll(&mut self, ctx: &mut CoopCtx<'_>) -> Result<bool, MpiSimError> {
        if self.unacked.is_empty() && self.delayed.is_empty() && self.held.is_empty() {
            self.op_deadline = None;
            return Ok(true);
        }
        let now = Instant::now();
        let deadline = *self.op_deadline.get_or_insert(now + self.cfg.recv_deadline);
        if now >= deadline {
            // Peers that needed the data would have kept acking.
            self.op_deadline = None;
            return Ok(true);
        }
        self.poll(ctx)?;
        if self.unacked.is_empty() && self.delayed.is_empty() && self.held.is_empty() {
            self.op_deadline = None;
            return Ok(true);
        }
        let mut wake = deadline;
        if let Some(t) = self.next_timer() {
            wake = wake.min(t);
        }
        ctx.park("coop drain", Some(wake));
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    /// Ring pass as an explicit state machine: rank r sends to (r+1)%size,
    /// receives from (r-1+size)%size, returns the received value.
    enum Ring {
        Start,
        Await,
    }

    impl CoopTask for Ring {
        type Out = f64;
        fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result<Step<f64>, MpiSimError> {
            let (rank, size) = (ctx.rank(), ctx.size());
            loop {
                match self {
                    Ring::Start => {
                        let next = (rank + 1) % size;
                        ctx.send(next, 7, vec![rank as f64]);
                        *self = Ring::Await;
                    }
                    Ring::Await => {
                        let prev = (rank + size - 1) % size;
                        return match ctx.try_recv(prev, 7) {
                            Some(data) => Ok(Step::Done(data[0])),
                            None => {
                                ctx.park(format!("recv(src={prev}, tag=7)"), None);
                                Ok(Step::Blocked)
                            }
                        };
                    }
                }
            }
        }
    }

    #[test]
    fn ring_passes_at_scale() {
        let (out, stats) = run_tasks(512, CoopConfig::default(), |_| Ring::Start).unwrap();
        for (r, v) in out.iter().enumerate() {
            assert_eq!(*v, ((r + 512 - 1) % 512) as f64);
        }
        assert!(stats.workers >= 1);
        assert_eq!(stats.logical_messages, 512);
    }

    #[test]
    fn two_workers_many_ranks_steal() {
        let cfg = CoopConfig {
            workers: 2,
            ..CoopConfig::default()
        };
        let (out, stats) = run_tasks(512, cfg, |_| Ring::Start).unwrap();
        assert_eq!(out.len(), 512);
        assert_eq!(stats.workers, 2);
        assert!(
            stats.steals > 0,
            "expected work stealing on 2 workers x 512 ranks, got {stats:?}"
        );
        assert!(stats.parks > 0);
    }

    /// Same-edge exchange between two rank groups: every rank of node 0
    /// sends one message to its counterpart in node 1 (the shape of a halo
    /// exchange along a decomposed dimension that crosses a node
    /// boundary).
    enum EdgeSwap {
        Start,
        Await,
    }

    impl CoopTask for EdgeSwap {
        type Out = ();
        fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result<Step<()>, MpiSimError> {
            let (rank, size) = (ctx.rank(), ctx.size());
            let half = size / 2;
            loop {
                match self {
                    EdgeSwap::Start => {
                        if rank < half {
                            ctx.send(rank + half, 3, vec![rank as f64]);
                            return Ok(Step::Done(()));
                        }
                        *self = EdgeSwap::Await;
                    }
                    EdgeSwap::Await => {
                        return match ctx.try_recv(rank - half, 3) {
                            Some(_) => Ok(Step::Done(())),
                            None => {
                                ctx.park(format!("recv(src={}, tag=3)", rank - half), None);
                                Ok(Step::Blocked)
                            }
                        };
                    }
                }
            }
        }
    }

    #[test]
    fn aggregation_coalesces_same_edge_messages() {
        let cfg = CoopConfig {
            node_size: 8,
            ..CoopConfig::default()
        };
        let (_, stats) = run_tasks(16, cfg, |_| EdgeSwap::Start).unwrap();
        // All 8 node-0 ranks message node 1: one (src node, dst node) pair,
        // so the count-threshold flush coalesces 8 logical messages into a
        // single physical envelope.
        assert_eq!(stats.logical_messages, 8, "{stats:?}");
        assert_eq!(stats.physical_envelopes, 1, "{stats:?}");
        assert!(stats.aggregation_ratio() >= 8.0, "{stats:?}");
        assert!(stats.physical_bytes > 0 && stats.logical_bytes == 8 * 8);
    }

    /// Every rank blocks on a receive that never comes.
    struct Stuck;

    impl CoopTask for Stuck {
        type Out = ();
        fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result<Step<()>, MpiSimError> {
            let peer = (ctx.rank() + 1) % ctx.size();
            match ctx.try_recv(peer, 99) {
                Some(_) => Ok(Step::Done(())),
                None => {
                    ctx.park(format!("recv(src={peer}, tag=99)"), None);
                    Ok(Step::Blocked)
                }
            }
        }
    }

    #[test]
    fn structural_deadlock_is_exact_and_names_ranks() {
        let start = Instant::now();
        let err = run_tasks(8, CoopConfig::default(), |_| Stuck).unwrap_err();
        match err {
            MpiSimError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 8, "all ranks stuck: {blocked:?}");
                assert!(blocked.iter().any(|b| b.op.contains("tag=99")));
            }
            other => panic!("expected deadlock, got {other}"),
        }
        // Structural detection fires as soon as the scheduler drains — no
        // multi-second watchdog grace needed.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadlock detection took {:?}",
            start.elapsed()
        );
    }

    struct Boom;

    impl CoopTask for Boom {
        type Out = ();
        fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result<Step<()>, MpiSimError> {
            if ctx.rank() == 3 {
                panic!("boom on rank 3");
            }
            match ctx.try_recv(3, 1) {
                Some(_) => Ok(Step::Done(())),
                None => {
                    ctx.park("recv(src=3, tag=1)", None);
                    Ok(Step::Blocked)
                }
            }
        }
    }

    #[test]
    fn task_panic_poisons_the_run_with_rank_attribution() {
        let err = run_tasks(8, CoopConfig::default(), |_| Boom).unwrap_err();
        match err {
            MpiSimError::RankPanicked { rank, message } => {
                assert_eq!(rank, 3);
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("expected rank panic, got {other}"),
        }
    }

    /// Resilient ping-pong iterations under a lossy fault plan, with
    /// checkpoints and a mid-run crash of rank 1.
    struct Pong {
        res: CoopResilient,
        iter: usize,
        iters: usize,
        value: f64,
        phase: PongPhase,
    }

    #[derive(Clone, Copy, PartialEq)]
    enum PongPhase {
        Send,
        Recv,
        Barrier,
        Drain,
    }

    impl Pong {
        fn new(rank: usize, size: usize, plan: &FaultPlan, iters: usize) -> Self {
            let cfg = ResilientConfig {
                checkpoint_interval: 2,
                ..ResilientConfig::default()
            };
            Self {
                res: CoopResilient::new(rank, size, plan, cfg),
                iter: 0,
                iters,
                value: rank as f64,
                phase: PongPhase::Send,
            }
        }
    }

    impl CoopTask for Pong {
        type Out = (f64, FaultStats);
        fn step(&mut self, ctx: &mut CoopCtx<'_>) -> Result<Step<Self::Out>, MpiSimError> {
            loop {
                match self.phase {
                    PongPhase::Send => {
                        if self.res.crash_pending(self.iter) {
                            let (iter, state) = self.res.crash_and_restore(self.iter)?;
                            self.iter = iter;
                            self.value = state[0][0];
                        }
                        if self.iter.is_multiple_of(2) {
                            self.res.save_checkpoint(self.iter, &[vec![self.value]]);
                        }
                        let peer = ctx.size() - 1 - ctx.rank();
                        if peer != ctx.rank() {
                            self.res.send(ctx, peer, 5, vec![self.value]);
                        }
                        self.phase = PongPhase::Recv;
                    }
                    PongPhase::Recv => {
                        let peer = ctx.size() - 1 - ctx.rank();
                        if peer != ctx.rank() {
                            match self.res.recv_poll(ctx, peer, 5)? {
                                Some(data) => self.value = data[0] + 1.0,
                                None => return Ok(Step::Blocked),
                            }
                        }
                        self.phase = PongPhase::Barrier;
                    }
                    PongPhase::Barrier => {
                        if !self.res.barrier_poll(ctx)? {
                            return Ok(Step::Blocked);
                        }
                        self.iter += 1;
                        self.phase = if self.iter == self.iters {
                            PongPhase::Drain
                        } else {
                            PongPhase::Send
                        };
                    }
                    PongPhase::Drain => {
                        if !self.res.drain_poll(ctx)? {
                            return Ok(Step::Blocked);
                        }
                        return Ok(Step::Done((self.value, self.res.stats)));
                    }
                }
            }
        }
    }

    fn pong_values(size: usize, plan: FaultPlan, iters: usize) -> (Vec<f64>, FaultStats) {
        let (out, _) = run_tasks(size, CoopConfig::default(), move |r| {
            Pong::new(r, size, &plan, iters)
        })
        .unwrap();
        let mut stats = FaultStats::default();
        let values = out
            .into_iter()
            .map(|(v, s)| {
                stats.merge(&s);
                v
            })
            .collect();
        (values, stats)
    }

    #[test]
    fn resilient_protocol_masks_faults_and_crash() {
        let clean = pong_values(4, FaultPlan::none(42), 6).0;
        let lossy_plan = FaultPlan {
            corrupt_prob: 0.05,
            delay_prob: 0.05,
            max_delay_ms: 5,
            ..FaultPlan::lossy(42, 0.1)
        }
        .with_crash(1, 3);
        let (lossy, stats) = pong_values(4, lossy_plan, 6);
        assert_eq!(clean, lossy, "faults must not change results");
        assert!(stats.injected() > 0, "plan must actually inject");
        assert_eq!(stats.injected_crashes, 1);
        assert_eq!(stats.restores, 1);
        assert!(stats.checkpoints > 0);
    }

    #[test]
    fn coop_matches_thread_runtime_ring() {
        // Same ring on both substrates, bit-identical results.
        let coop = run_tasks(16, CoopConfig::default(), |_| Ring::Start)
            .unwrap()
            .0;
        let threads = crate::runtime::run_ranks(16, |ctx| {
            let next = (ctx.rank + 1) % ctx.size;
            let prev = (ctx.rank + ctx.size - 1) % ctx.size;
            ctx.send(next, 7, vec![ctx.rank as f64]);
            ctx.recv(prev, 7)[0]
        })
        .unwrap();
        assert_eq!(coop, threads);
    }
}
