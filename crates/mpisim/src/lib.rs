//! # fsc-mpisim — a distributed-memory (MPI) simulation substrate
//!
//! The paper's Figure 6 runs on up to 8192 cores of ARCHER2 (Cray-EX,
//! Slingshot interconnect). This crate substitutes two pieces:
//!
//! * [`runtime`] — a **functional** rank runtime: every rank is a thread
//!   with point-to-point message channels, `send`/`recv`/`barrier`, used by
//!   the hand-MPI baseline and by tests to validate halo-exchange logic
//!   end-to-end at small scale;
//! * [`CostModel`] — a **Slingshot-like analytic model** charging latency +
//!   bandwidth for halo exchanges, with the per-node NIC shared by the 128
//!   ranks of a node. Figure 6's scaling curves come from real per-rank
//!   compute on scaled-down grids plus this model's communication time.

//! * [`fault`] / [`resilient`] — a **fault-injection and recovery layer**:
//!   deterministic seeded fault plans (drop / duplicate / corrupt / delay /
//!   reorder / rank crash) and a self-healing protocol (sequenced + acked
//!   envelopes, bounded retry, checkpoint/restore-and-replay) with every
//!   blocking wait deadline-protected and deadlock surfaced as a
//!   structured [`MpiSimError`].

pub mod coop;
mod error;
pub mod fault;
pub mod resilient;
pub mod runtime;

pub use error::{BlockedRank, MpiSimError};

/// Cartesian process-grid helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGrid {
    /// Ranks along each decomposed dimension.
    pub shape: Vec<i64>,
}

impl ProcessGrid {
    /// New grid; total ranks is the product of `shape`. Panics on an empty
    /// shape or a non-positive extent (a zero-rank dimension cannot index).
    pub fn new(shape: Vec<i64>) -> Self {
        assert!(!shape.is_empty(), "process grid shape must be non-empty");
        assert!(
            shape.iter().all(|&s| s > 0),
            "process grid extents must be positive, got {shape:?}"
        );
        Self { shape }
    }

    /// Total ranks.
    pub fn size(&self) -> i64 {
        self.shape.iter().product()
    }

    /// Rank → grid coordinates (first grid dim fastest).
    pub fn coords(&self, rank: i64) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.shape.len());
        let mut r = rank;
        for &s in &self.shape {
            out.push(r % s);
            r /= s;
        }
        out
    }

    /// Grid coordinates → rank.
    pub fn rank_of(&self, coords: &[i64]) -> i64 {
        let mut rank = 0;
        let mut mul = 1;
        for (c, s) in coords.iter().zip(&self.shape) {
            rank += c * mul;
            mul *= s;
        }
        rank
    }

    /// The neighbour of `rank` along grid dim `dim` in `direction` (±1);
    /// `None` at the domain boundary (non-periodic).
    pub fn neighbor(&self, rank: i64, dim: usize, direction: i64) -> Option<i64> {
        let mut coords = self.coords(rank);
        coords[dim] += direction;
        if coords[dim] < 0 || coords[dim] >= self.shape[dim] {
            None
        } else {
            Some(self.rank_of(&coords))
        }
    }

    /// Partition `[lb, ub)` into `parts` near-equal contiguous ranges and
    /// return the `index`-th. When `parts` exceeds the range length, the
    /// trailing sub-ranges are empty but the parts still cover `[lb, ub)`
    /// exactly. Panics on `parts <= 0` or an out-of-range `index`.
    pub fn partition(lb: i64, ub: i64, parts: i64, index: i64) -> (i64, i64) {
        assert!(parts > 0, "partition requires parts > 0, got {parts}");
        assert!(
            (0..parts).contains(&index),
            "partition index {index} outside [0, {parts})"
        );
        let total = (ub - lb).max(0);
        let base = total / parts;
        let extra = total % parts;
        let start = lb + index * base + index.min(extra);
        let len = base + i64::from(index < extra);
        (start, start + len)
    }
}

/// Slingshot-like interconnect + node parameters (ARCHER2 flavoured).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Point-to-point small-message latency (s).
    pub latency: f64,
    /// Per-NIC bandwidth, one direction (B/s). ARCHER2: 2×100 Gbps links.
    pub nic_bw: f64,
    /// NICs per node.
    pub nics_per_node: f64,
    /// Intra-node (shared-memory) bandwidth per rank pair (B/s).
    pub shm_bw: f64,
    /// MPI ranks per node (ARCHER2: 128).
    pub ranks_per_node: u32,
    /// Per-message software overhead (s).
    pub sw_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            latency: 1.8e-6,
            nic_bw: 12.5e9,
            nics_per_node: 2.0,
            shm_bw: 8e9,
            ranks_per_node: 128,
            sw_overhead: 0.4e-6,
        }
    }
}

impl CostModel {
    /// Time for one halo-exchange phase where every rank exchanges
    /// `msg_bytes` with each of `neighbors` neighbours, `offnode_fraction`
    /// of which live on another node. All ranks proceed concurrently; the
    /// phase ends when the slowest class of message completes.
    pub fn halo_exchange_time(
        &self,
        msg_bytes: u64,
        neighbors: usize,
        offnode_fraction: f64,
    ) -> f64 {
        if neighbors == 0 || msg_bytes == 0 {
            return 0.0;
        }
        let offnode_fraction = offnode_fraction.clamp(0.0, 1.0);
        // Off-node messages share the node's NICs: with R ranks each sending
        // f*n messages off node, per-rank effective bandwidth shrinks.
        let offnode_msgs_per_node =
            self.ranks_per_node as f64 * neighbors as f64 * offnode_fraction;
        let node_bw = self.nic_bw * self.nics_per_node;
        let per_msg_bw_off = if offnode_msgs_per_node > 0.0 {
            (node_bw / offnode_msgs_per_node).min(self.nic_bw)
        } else {
            f64::INFINITY
        };
        let t_off = if offnode_fraction > 0.0 {
            self.latency + self.sw_overhead + msg_bytes as f64 / per_msg_bw_off
        } else {
            0.0
        };
        let t_on = if offnode_fraction < 1.0 {
            self.latency / 4.0 + self.sw_overhead + msg_bytes as f64 / self.shm_bw
        } else {
            0.0
        };
        t_off.max(t_on)
    }

    /// Modeled time of the resilience protocol's extra traffic and
    /// recovery work, so fig6-style curves can show what fault tolerance
    /// costs: each ack is a latency-bound small message, each
    /// retransmission re-pays the full data-message cost, and crash
    /// recovery charges the checkpoint-to-crash compute that was thrown
    /// away (`wasted_seconds`) plus the replayed deliveries served from the
    /// local log (charged at shared-memory speed — they never cross the
    /// wire again).
    pub fn resilience_time(&self, stats: &fault::FaultStats, msg_bytes: u64) -> f64 {
        let ack = self.latency + self.sw_overhead;
        let data = self.latency + self.sw_overhead + msg_bytes as f64 / self.nic_bw;
        let replayed_local = msg_bytes as f64 / self.shm_bw + self.sw_overhead;
        stats.acks_sent as f64 * ack
            + stats.retries as f64 * data
            + stats.replayed_iterations as f64 * replayed_local
            + stats.wasted_seconds
    }

    /// Fraction of a rank's neighbours in a `grid` that are off-node, when
    /// ranks are packed onto nodes in rank order.
    pub fn offnode_fraction(&self, grid: &ProcessGrid) -> f64 {
        let total = grid.size();
        if total <= self.ranks_per_node as i64 {
            return 0.0;
        }
        // Neighbours along the first grid dimension are (mostly) rank±1 —
        // on-node; higher dimensions stride by shape[0].. — off-node once
        // the stride exceeds the node size.
        let mut off = 0usize;
        let mut all = 0usize;
        let mut stride = 1i64;
        for &s in &grid.shape {
            if s > 1 {
                all += 2;
                if stride >= self.ranks_per_node as i64 {
                    off += 2;
                }
            }
            stride *= s;
        }
        if all == 0 {
            0.0
        } else {
            off as f64 / all as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_coords_roundtrip() {
        let g = ProcessGrid::new(vec![4, 2]);
        assert_eq!(g.size(), 8);
        for r in 0..8 {
            assert_eq!(g.rank_of(&g.coords(r)), r);
        }
        assert_eq!(g.coords(5), vec![1, 1]);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = ProcessGrid::new(vec![4, 2]);
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 0, 1), Some(1));
        assert_eq!(g.neighbor(0, 1, 1), Some(4));
        assert_eq!(g.neighbor(7, 1, 1), None);
        assert_eq!(g.neighbor(5, 0, -1), Some(4));
    }

    #[test]
    fn partition_covers_range_exactly() {
        let mut covered = Vec::new();
        for i in 0..5 {
            let (lo, hi) = ProcessGrid::partition(1, 18, 5, i);
            covered.extend(lo..hi);
        }
        assert_eq!(covered, (1..18).collect::<Vec<_>>());
    }

    #[test]
    fn partition_with_more_parts_than_range_still_covers_exactly() {
        // 3-element range over 7 parts: four parts must be empty, and the
        // non-empty ones must cover [5, 8) exactly, in order.
        let mut covered = Vec::new();
        let mut empties = 0;
        for i in 0..7 {
            let (lo, hi) = ProcessGrid::partition(5, 8, 7, i);
            assert!(lo <= hi, "sub-range must not be inverted");
            assert!((5..=8).contains(&lo) && (5..=8).contains(&hi));
            if lo == hi {
                empties += 1;
            }
            covered.extend(lo..hi);
        }
        assert_eq!(covered, vec![5, 6, 7]);
        assert_eq!(empties, 4);
        // Degenerate empty range: every part is empty but well-formed.
        for i in 0..4 {
            let (lo, hi) = ProcessGrid::partition(9, 9, 4, i);
            assert_eq!(lo, hi);
        }
    }

    #[test]
    #[should_panic(expected = "parts > 0")]
    fn partition_rejects_zero_parts() {
        ProcessGrid::partition(0, 10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "parts > 0")]
    fn partition_rejects_negative_parts() {
        ProcessGrid::partition(0, 10, -3, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn partition_rejects_out_of_range_index() {
        ProcessGrid::partition(0, 10, 2, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn process_grid_rejects_zero_extent() {
        ProcessGrid::new(vec![4, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn process_grid_rejects_empty_shape() {
        ProcessGrid::new(vec![]);
    }

    #[test]
    fn partition_is_balanced() {
        for i in 0..7 {
            let (lo, hi) = ProcessGrid::partition(0, 100, 7, i);
            let len = hi - lo;
            assert!((14..=15).contains(&len), "len {len}");
        }
    }

    #[test]
    fn exchange_time_scales_with_bytes_and_latency_floor() {
        let m = CostModel::default();
        let small = m.halo_exchange_time(8, 2, 1.0);
        let big = m.halo_exchange_time(8_000_000, 2, 1.0);
        assert!(small >= m.latency);
        assert!(big > 100.0 * small);
        assert_eq!(m.halo_exchange_time(0, 2, 1.0), 0.0);
        assert_eq!(m.halo_exchange_time(8, 0, 1.0), 0.0);
    }

    #[test]
    fn offnode_messages_cost_more_than_shared_memory() {
        let m = CostModel::default();
        let on = m.halo_exchange_time(1_000_000, 2, 0.0);
        let off = m.halo_exchange_time(1_000_000, 2, 1.0);
        assert!(off > on, "off {off} vs on {on}");
    }

    #[test]
    fn offnode_fraction_grows_with_grid() {
        let m = CostModel::default();
        // 64 ranks fit in one node: all on-node.
        assert_eq!(m.offnode_fraction(&ProcessGrid::new(vec![8, 8])), 0.0);
        // Second-dim neighbours stride by 32 ranks — still inside a
        // 128-rank node.
        assert_eq!(m.offnode_fraction(&ProcessGrid::new(vec![32, 32])), 0.0);
        // Stride 256 crosses nodes: half of the neighbour links off-node.
        let f = m.offnode_fraction(&ProcessGrid::new(vec![256, 32]));
        assert!(f > 0.0 && f <= 1.0, "f = {f}");
    }
}
