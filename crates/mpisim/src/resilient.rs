//! Self-healing message transport over the rank runtime.
//!
//! [`ResilientCtx`] wraps a [`RankCtx`] with the protocol a production
//! stencil stack layers over an unreliable interconnect:
//!
//! * **sequence-numbered envelopes** per `(peer, tag)` stream, with an FNV
//!   checksum over the payload — duplicates are deduplicated, corruption is
//!   detected and discarded;
//! * **ack + bounded retry**: every data message is acknowledged; unacked
//!   messages retransmit with exponential backoff (capped below the
//!   deadlock-watchdog grace so a retry storm never looks like a hang) up
//!   to a bounded attempt count, after which the run fails with
//!   [`MpiSimError::RetriesExhausted`];
//! * **deadlines everywhere**: `recv` and the message-based `barrier` poll
//!   with deadlines and consult the shared watchdog, so a lost peer
//!   surfaces as a structured error naming the stuck ranks;
//! * **checkpoint / restore-and-replay**: ranks snapshot their state (and
//!   the protocol's stream counters) periodically; a fail-stop crash
//!   restores the snapshot and replays forward. Receives during replay are
//!   served from the durable receive log (pessimistic message logging) and
//!   replayed sends are deduplicated by their original sequence numbers at
//!   the receiver, so recovery is bit-identical to the fault-free run.
//!
//! Faults are injected on the *send* side by a deterministic seeded
//! [`FaultInjector`]; every injected fault and every recovery action is
//! counted in [`FaultStats`].

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use crossbeam::channel::RecvTimeoutError;

use crate::error::MpiSimError;
use crate::fault::{FaultInjector, FaultPlan, FaultStats, SendAction};
use crate::runtime::{run_ranks_cfg, Message, RankConfig, RankCtx};

/// Tag reserved for acknowledgements (never collides with user tags, which
/// must be non-negative).
pub(crate) const ACK_TAG: i64 = i64::MIN + 1;
/// Tag reserved for the message-based barrier.
pub(crate) const BARRIER_TAG: i64 = i64::MIN + 2;
/// Ceiling of the exponential retransmit backoff. Kept below the deadlock
/// watchdog's grace period so a pending retransmit never reads as a hang.
pub(crate) const BACKOFF_CAP: Duration = Duration::from_millis(120);

/// Tuning of the resilient protocol.
#[derive(Debug, Clone, Copy)]
pub struct ResilientConfig {
    /// Initial retransmit timeout (doubles per retry, capped).
    pub rto: Duration,
    /// Maximum send attempts (first transmission + retries) before the
    /// stream is declared dead.
    pub max_retries: u32,
    /// Deadline of one resilient `recv` / barrier phase.
    pub recv_deadline: Duration,
    /// Take a local checkpoint every this many iterations (used by the
    /// halo-exchange runners; `0` disables periodic checkpoints).
    pub checkpoint_interval: usize,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            rto: Duration::from_millis(30),
            max_retries: 12,
            recv_deadline: Duration::from_secs(10),
            checkpoint_interval: 4,
        }
    }
}

/// A message sent but not yet acknowledged (sender-side message log: kept
/// across a simulated crash, like a log on node-local stable storage).
#[derive(Debug, Clone)]
struct Pending {
    dest: usize,
    tag: i64,
    seq: u64,
    /// Fully encoded wire data (header + payload).
    data: Vec<f64>,
    next_retry: Instant,
    retries: u32,
}

/// A rank's checkpoint: user state plus the protocol counters needed for
/// deterministic replay.
#[derive(Debug, Clone)]
struct CheckpointState {
    iter: usize,
    state: Vec<Vec<f64>>,
    next_seq: HashMap<(usize, i64), u64>,
    expected: HashMap<(usize, i64), u64>,
    barrier_epoch: u64,
    saved_at: Instant,
}

/// Fault-tolerant communication context layered over [`RankCtx`].
pub struct ResilientCtx<'a> {
    raw: &'a mut RankCtx,
    cfg: ResilientConfig,
    injector: FaultInjector,
    /// Next outgoing sequence number per `(dest, tag)` stream.
    next_seq: HashMap<(usize, i64), u64>,
    /// Next sequence number to deliver per `(src, tag)` stream.
    expected: HashMap<(usize, i64), u64>,
    /// Durable receive log: checksummed, deduplicated payloads by stream
    /// and sequence. Entries are kept until garbage-collected at the next
    /// checkpoint, so restore-and-replay re-reads them without any
    /// re-communication.
    received: HashMap<(usize, i64), BTreeMap<u64, Vec<f64>>>,
    unacked: Vec<Pending>,
    /// Injector-delayed messages not yet in the network.
    delayed: Vec<(Instant, usize, i64, Vec<f64>)>,
    /// Reorder-held messages (released by the next send to the same
    /// destination, or by timeout).
    held: Vec<(Instant, usize, i64, Vec<f64>)>,
    checkpoint: Option<CheckpointState>,
    barrier_epoch: u64,
    /// Injected-fault and recovery counters for this rank.
    pub stats: FaultStats,
}

/// FNV-1a over the header fields and payload bits.
pub(crate) fn checksum(from: usize, tag: i64, seq: u64, payload: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(from as u64);
    mix(tag as u64);
    mix(seq);
    for &x in payload {
        mix(x.to_bits());
    }
    h
}

impl<'a> ResilientCtx<'a> {
    /// Wrap `raw` with the resilient protocol under `plan`.
    pub fn new(raw: &'a mut RankCtx, plan: &FaultPlan, cfg: ResilientConfig) -> Self {
        let injector = FaultInjector::new(plan, raw.rank);
        Self {
            raw,
            cfg,
            injector,
            next_seq: HashMap::new(),
            expected: HashMap::new(),
            received: HashMap::new(),
            unacked: Vec::new(),
            delayed: Vec::new(),
            held: Vec::new(),
            checkpoint: None,
            barrier_epoch: 0,
            stats: FaultStats::default(),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.raw.rank
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.raw.size
    }

    /// Reliable send: sequence the payload, remember it until acked, and
    /// hand it to the (possibly faulty) network.
    pub fn send(&mut self, dest: usize, tag: i64, data: Vec<f64>) {
        assert!(
            tag >= 0,
            "user tags must be non-negative (negative tags are protocol-reserved)"
        );
        self.send_tagged(dest, tag, data);
    }

    fn send_tagged(&mut self, dest: usize, tag: i64, data: Vec<f64>) {
        let seq_slot = self.next_seq.entry((dest, tag)).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        let mut encoded = Vec::with_capacity(data.len() + 2);
        encoded.push(f64::from_bits(seq));
        encoded.push(f64::from_bits(checksum(self.raw.rank, tag, seq, &data)));
        encoded.extend_from_slice(&data);
        self.stats.data_msgs += 1;
        self.unacked.push(Pending {
            dest,
            tag,
            seq,
            data: encoded.clone(),
            next_retry: Instant::now() + self.cfg.rto,
            retries: 0,
        });
        self.transmit(dest, tag, encoded, false);
    }

    /// Hand one encoded message to the network, applying the injector.
    fn transmit(&mut self, dest: usize, tag: i64, mut encoded: Vec<f64>, retransmit: bool) {
        let action = self.injector.on_send(retransmit);
        match action {
            SendAction::Drop => {
                self.stats.injected_drops += 1;
            }
            SendAction::Duplicate => {
                self.stats.injected_dups += 1;
                self.raw_send(dest, tag, encoded.clone());
                self.raw_send(dest, tag, encoded);
            }
            SendAction::Corrupt => {
                self.stats.injected_corruptions += 1;
                // Flip one payload bit; the receiver's checksum rejects the
                // message and the retry timer recovers it. A header-only
                // message gets its checksum word flipped instead.
                if encoded.len() > 2 {
                    let w = 2 + self.injector.corrupt_word(encoded.len() - 2);
                    encoded[w] = f64::from_bits(encoded[w].to_bits() ^ 1);
                } else {
                    encoded[1] = f64::from_bits(encoded[1].to_bits() ^ 1);
                }
                self.raw_send(dest, tag, encoded);
            }
            SendAction::Delay(d) => {
                self.stats.injected_delays += 1;
                self.delayed.push((Instant::now() + d, dest, tag, encoded));
            }
            SendAction::HoldUntilNext => {
                self.stats.injected_reorders += 1;
                self.held.push((Instant::now(), dest, tag, encoded));
            }
            SendAction::Deliver => {
                self.raw_send(dest, tag, encoded);
            }
        }
        // A physical send to `dest` flushes anything held back for it, so a
        // reorder is exactly an adjacent-pair swap.
        if !matches!(action, SendAction::HoldUntilNext) {
            self.release_held(Some(dest), Instant::now());
        }
    }

    fn raw_send(&mut self, dest: usize, tag: i64, data: Vec<f64>) {
        let msg = Message {
            from: self.raw.rank,
            tag,
            data,
        };
        if self.raw.senders[dest].send(msg).is_err() {
            // The destination finished and dropped its receiver: it has
            // completed all of its receives, so treat every in-flight
            // message to it as acknowledged instead of retrying forever.
            self.unacked.retain(|p| p.dest != dest);
        }
    }

    fn send_ack(&mut self, dest: usize, orig_tag: i64, seq: u64) {
        self.stats.acks_sent += 1;
        // Acks face drops and delays too (a dropped ack forces a
        // retransmission that the receiver dedups); duplication, corruption
        // and reordering are meaningless for an idempotent un-checksummed
        // ack, so those draws deliver normally.
        let data = vec![f64::from_bits(orig_tag as u64), f64::from_bits(seq)];
        match self.injector.on_send(true) {
            SendAction::Drop => {
                self.stats.injected_drops += 1;
            }
            SendAction::Delay(d) => {
                self.stats.injected_delays += 1;
                self.delayed.push((Instant::now() + d, dest, ACK_TAG, data));
            }
            _ => self.raw_send(dest, ACK_TAG, data),
        }
    }

    /// Process one arrived wire message.
    fn handle(&mut self, msg: Message) {
        if msg.tag == ACK_TAG {
            if msg.data.len() != 2 {
                return;
            }
            let tag = msg.data[0].to_bits() as i64;
            let seq = msg.data[1].to_bits();
            let before = self.unacked.len();
            self.unacked
                .retain(|p| !(p.dest == msg.from && p.tag == tag && p.seq == seq));
            if self.unacked.len() != before {
                self.raw.watch.bump();
            }
            return;
        }
        if msg.data.len() < 2 {
            return; // malformed; unreachable from our own sender
        }
        let seq = msg.data[0].to_bits();
        let ck = msg.data[1].to_bits();
        let payload = &msg.data[2..];
        if checksum(msg.from, msg.tag, seq, payload) != ck {
            // Corrupted in flight: discard without acking; the sender's
            // retry timer re-delivers a clean copy.
            self.stats.corruptions_detected += 1;
            return;
        }
        let payload = payload.to_vec();
        // Always ack — even a duplicate means the sender missed our first
        // ack and is still retrying.
        self.send_ack(msg.from, msg.tag, seq);
        let key = (msg.from, msg.tag);
        let exp = *self.expected.get(&key).unwrap_or(&0);
        if seq < exp
            && !self
                .received
                .get(&key)
                .is_some_and(|m| m.contains_key(&seq))
        {
            // Already delivered and garbage-collected.
            self.stats.duplicates_dropped += 1;
            return;
        }
        let slot = self.received.entry(key).or_default();
        if let std::collections::btree_map::Entry::Vacant(e) = slot.entry(seq) {
            e.insert(payload);
            self.raw.watch.bump();
        } else {
            self.stats.duplicates_dropped += 1;
        }
    }

    /// Release injector-delayed and reorder-held messages whose time has
    /// come. `dest` limits held-message release to one destination (the
    /// flush triggered by a newer send); timed release covers the rest.
    fn release_held(&mut self, dest: Option<usize>, now: Instant) {
        let rto = self.cfg.rto;
        let due: Vec<(usize, i64, Vec<f64>)> = {
            let mut due = Vec::new();
            self.held.retain(|(since, d, t, data)| {
                let release = dest == Some(*d) || now.duration_since(*since) >= rto;
                if release {
                    due.push((*d, *t, data.clone()));
                }
                !release
            });
            due
        };
        for (d, t, data) in due {
            self.raw_send(d, t, data);
        }
    }

    fn release_delayed(&mut self, now: Instant) {
        let due: Vec<(usize, i64, Vec<f64>)> = {
            let mut due = Vec::new();
            self.delayed.retain(|(when, d, t, data)| {
                if *when <= now {
                    due.push((*d, *t, data.clone()));
                    false
                } else {
                    true
                }
            });
            due
        };
        for (d, t, data) in due {
            self.raw_send(d, t, data);
        }
    }

    /// Retransmit every unacked message whose timer expired; error out of
    /// the run once a stream exceeds the retry bound.
    fn retransmit_due(&mut self, now: Instant) -> Result<(), MpiSimError> {
        let mut due = Vec::new();
        for p in &mut self.unacked {
            if now < p.next_retry {
                continue;
            }
            if p.retries + 1 >= self.cfg.max_retries {
                return Err(MpiSimError::RetriesExhausted {
                    rank: self.raw.rank,
                    dest: p.dest,
                    tag: p.tag,
                    attempts: p.retries + 1,
                });
            }
            p.retries += 1;
            let backoff = self
                .cfg
                .rto
                .saturating_mul(1u32 << p.retries.min(5))
                .min(BACKOFF_CAP);
            p.next_retry = now + backoff;
            due.push((p.dest, p.tag, p.data.clone()));
        }
        for (dest, tag, data) in due {
            self.stats.retries += 1;
            self.transmit(dest, tag, data, true);
        }
        Ok(())
    }

    /// Drive the protocol for up to `wait`: deliver arrivals, release
    /// delayed messages, and fire retry timers. Returns as soon as any
    /// message has been processed (the caller re-checks its own condition
    /// and pumps again if unsatisfied — returning early keeps delivery at
    /// channel speed instead of sleeping out the full quantum), on
    /// protocol failure, or once `wait` elapses with nothing arriving.
    fn pump(&mut self, wait: Duration) -> Result<(), MpiSimError> {
        let deadline = Instant::now() + wait;
        loop {
            let now = Instant::now();
            self.release_delayed(now);
            self.release_held(None, now);
            let mut handled = false;
            while let Ok(msg) = self.raw.receiver.try_recv() {
                self.handle(msg);
                handled = true;
            }
            self.retransmit_due(Instant::now())?;
            let now = Instant::now();
            if handled || now >= deadline {
                return Ok(());
            }
            // Sleep until the deadline, the next protocol timer, or the
            // next arrival — whichever comes first (bounded by the poll
            // interval so poison is noticed promptly).
            let mut until = deadline;
            for p in &self.unacked {
                until = until.min(p.next_retry);
            }
            for (when, ..) in &self.delayed {
                until = until.min(*when);
            }
            let dur = until
                .saturating_duration_since(now)
                .min(self.raw.cfg.poll)
                .max(Duration::from_micros(100));
            match self.raw.receiver.recv_timeout(dur) {
                Ok(msg) => {
                    self.handle(msg);
                    return Ok(());
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }

    /// Reliable receive: deliver the next in-sequence payload of the
    /// `(src, tag)` stream, pumping the protocol while waiting. Fails with
    /// a structured error on deadline, detected deadlock, retry
    /// exhaustion, or communicator poison.
    pub fn recv(&mut self, src: usize, tag: i64) -> Result<Vec<f64>, MpiSimError> {
        let key = (src, tag);
        let deadline = Instant::now() + self.cfg.recv_deadline;
        let mut registered = false;
        let result = loop {
            let exp = *self.expected.get(&key).unwrap_or(&0);
            if let Some(p) = self.received.get(&key).and_then(|m| m.get(&exp)) {
                let out = p.clone();
                self.expected.insert(key, exp + 1);
                break Ok(out);
            }
            if !registered {
                self.raw.watch.enter(
                    self.raw.rank,
                    format!("resilient recv(src={src}, tag={tag}, seq={exp})"),
                );
                registered = true;
            }
            if let Some(e) = self.raw.watch.poison_error() {
                break Err(e);
            }
            if let Some(blocked) = self.raw.watch.deadlock_check(self.raw.cfg.deadlock_grace) {
                let err = MpiSimError::Deadlock { blocked };
                self.raw.watch.poison(self.raw.rank, err.to_string());
                break Err(err);
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(MpiSimError::Timeout {
                    rank: self.raw.rank,
                    op: format!("resilient recv(src={src}, tag={tag}, seq={exp})"),
                    waited_ms: self.cfg.recv_deadline.as_millis() as u64,
                });
            }
            if let Err(e) = self.pump(self.raw.cfg.poll) {
                break Err(e);
            }
        };
        if registered {
            self.raw.watch.exit(self.raw.rank);
        }
        result
    }

    /// Fault-tolerant barrier: all-to-rank-0 gather plus broadcast, built
    /// on the resilient streams so dropped barrier messages retransmit and
    /// a crashed rank replays through it deterministically.
    pub fn barrier(&mut self) -> Result<(), MpiSimError> {
        let epoch = self.barrier_epoch;
        self.barrier_epoch += 1;
        let (rank, size) = (self.raw.rank, self.raw.size);
        if size == 1 {
            return Ok(());
        }
        if rank == 0 {
            for r in 1..size {
                self.recv(r, BARRIER_TAG)?;
            }
            for r in 1..size {
                self.send_tagged(r, BARRIER_TAG, vec![epoch as f64]);
            }
        } else {
            self.send_tagged(0, BARRIER_TAG, vec![epoch as f64]);
            self.recv(0, BARRIER_TAG)?;
        }
        Ok(())
    }

    /// Take a local checkpoint of the caller's `state` arrays at iteration
    /// `iter`, snapshotting the protocol's stream counters alongside, and
    /// garbage-collect the delivered prefix of the receive log.
    pub fn save_checkpoint(&mut self, iter: usize, state: &[Vec<f64>]) {
        self.stats.checkpoints += 1;
        for (key, slot) in self.received.iter_mut() {
            let exp = *self.expected.get(key).unwrap_or(&0);
            slot.retain(|s, _| *s >= exp);
        }
        self.checkpoint = Some(CheckpointState {
            iter,
            state: state.to_vec(),
            next_seq: self.next_seq.clone(),
            expected: self.expected.clone(),
            barrier_epoch: self.barrier_epoch,
            saved_at: Instant::now(),
        });
    }

    /// True exactly once when the fault plan crashes this rank at `iter`.
    pub fn crash_pending(&mut self, iter: usize) -> bool {
        self.injector.should_crash(iter)
    }

    /// Simulate the fail-stop crash and restart: discard volatile state,
    /// restore the last checkpoint (user state + protocol counters), and
    /// return `(iteration, state)` to resume from. Replayed receives are
    /// served from the durable receive log; replayed sends reuse their
    /// original sequence numbers, so peers deduplicate them.
    pub fn crash_and_restore(
        &mut self,
        at_iter: usize,
    ) -> Result<(usize, Vec<Vec<f64>>), MpiSimError> {
        let cp = match &self.checkpoint {
            Some(cp) => cp.clone(),
            None => {
                return Err(MpiSimError::InvalidConfig(format!(
                    "rank {} crashed at iteration {at_iter} before any checkpoint",
                    self.raw.rank
                )))
            }
        };
        self.stats.injected_crashes += 1;
        self.stats.restores += 1;
        self.stats.replayed_iterations += at_iter.saturating_sub(cp.iter) as u64;
        self.stats.wasted_seconds += cp.saved_at.elapsed().as_secs_f64();
        self.next_seq = cp.next_seq.clone();
        self.expected = cp.expected.clone();
        self.barrier_epoch = cp.barrier_epoch;
        // In-network state dies with the process; the sender-side message
        // log (`unacked`) and the receive log survive on stable storage.
        self.delayed.clear();
        self.held.clear();
        Ok((cp.iter, cp.state))
    }

    /// Flush protocol duties at the end of a rank body: give unacked
    /// messages a last chance to land (peers still running may depend on
    /// them) without blocking the shutdown on peers that already left.
    pub fn drain(&mut self) -> Result<(), MpiSimError> {
        let deadline = Instant::now() + self.cfg.recv_deadline;
        while !self.unacked.is_empty() || !self.delayed.is_empty() || !self.held.is_empty() {
            if Instant::now() >= deadline {
                break; // peers that needed the data would have kept acking
            }
            if self.raw.watch.poison_error().is_some() {
                break;
            }
            self.pump(self.raw.cfg.poll)?;
        }
        Ok(())
    }
}

/// Run `size` ranks under the resilient protocol with fault plan `plan`,
/// collecting each rank's result and fault counters. A rank body returns
/// `Result`; any failure is propagated with the communicator poisoned so
/// the group exits promptly.
pub fn run_resilient<T, F>(
    size: usize,
    plan: FaultPlan,
    cfg: ResilientConfig,
    body: F,
) -> Result<Vec<(T, FaultStats)>, MpiSimError>
where
    T: Send + 'static,
    F: Fn(&mut ResilientCtx) -> Result<T, MpiSimError> + Send + Sync + 'static,
{
    plan.validate()?;
    if let Some(c) = plan.crash {
        if c.rank >= size {
            return Err(MpiSimError::InvalidConfig(format!(
                "crash rank {} out of range for {size} ranks",
                c.rank
            )));
        }
    }
    let rank_cfg = RankConfig {
        // The raw layer's deadline backs up the resilient one.
        recv_deadline: cfg.recv_deadline + Duration::from_secs(5),
        ..RankConfig::default()
    };
    run_ranks_cfg(size, rank_cfg, move |raw| {
        let mut ctx = ResilientCtx::new(raw, &plan, cfg);
        match body(&mut ctx).and_then(|v| {
            ctx.drain()?;
            Ok(v)
        }) {
            Ok(v) => (v, ctx.stats),
            Err(e) => std::panic::panic_any(e),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilient_ring_no_faults() {
        let results = run_resilient(4, FaultPlan::none(1), ResilientConfig::default(), |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 0, vec![ctx.rank() as f64]);
            let got = ctx.recv(prev, 0)?;
            Ok(got[0])
        })
        .unwrap();
        let vals: Vec<f64> = results.iter().map(|(v, _)| *v).collect();
        assert_eq!(vals, vec![3.0, 0.0, 1.0, 2.0]);
        // Zero-fault plan must inject nothing.
        assert!(results.iter().all(|(_, s)| s.injected() == 0));
    }

    #[test]
    fn streams_deliver_in_sequence_order() {
        let results = run_resilient(2, FaultPlan::none(3), ResilientConfig::default(), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..16 {
                    ctx.send(1, 7, vec![i as f64]);
                }
                Ok(0.0)
            } else {
                let mut out = 0.0;
                for i in 0..16 {
                    let v = ctx.recv(0, 7)?;
                    assert_eq!(v[0], i as f64, "in-order delivery");
                    out = v[0];
                }
                Ok(out)
            }
        })
        .unwrap();
        assert_eq!(results[1].0, 15.0);
    }

    #[test]
    fn drops_and_dups_recover_transparently() {
        let plan = FaultPlan {
            drop_prob: 0.15,
            dup_prob: 0.1,
            reorder_prob: 0.1,
            ..FaultPlan::none(99)
        };
        let results = run_resilient(3, plan, ResilientConfig::default(), |ctx| {
            let mut acc = 0.0;
            for round in 0..8i64 {
                for peer in 0..ctx.size() {
                    if peer != ctx.rank() {
                        ctx.send(peer, round, vec![(ctx.rank() * 100) as f64 + round as f64]);
                    }
                }
                for peer in 0..ctx.size() {
                    if peer != ctx.rank() {
                        let v = ctx.recv(peer, round)?;
                        assert_eq!(v[0], (peer * 100) as f64 + round as f64);
                        acc += v[0];
                    }
                }
                ctx.barrier()?;
            }
            Ok(acc)
        })
        .unwrap();
        let total_injected: u64 = results.iter().map(|(_, s)| s.injected()).sum();
        let total_retries: u64 = results.iter().map(|(_, s)| s.retries).sum();
        assert!(total_injected > 0, "plan must have injected faults");
        assert!(total_retries > 0, "drops must have forced retries");
    }

    #[test]
    fn corruption_is_detected_and_recovered() {
        let plan = FaultPlan {
            corrupt_prob: 0.3,
            ..FaultPlan::none(5)
        };
        let results = run_resilient(2, plan, ResilientConfig::default(), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..12 {
                    ctx.send(1, 0, vec![i as f64, (i * i) as f64]);
                }
                Ok(0u64)
            } else {
                for i in 0..12 {
                    let v = ctx.recv(0, 0)?;
                    assert_eq!(v, vec![i as f64, (i * i) as f64], "payload intact");
                }
                Ok(ctx.stats.corruptions_detected)
            }
        })
        .unwrap();
        let (detected_by_receiver, injected): (u64, u64) = (
            results[1].1.corruptions_detected,
            results[0].1.injected_corruptions,
        );
        assert!(injected > 0, "plan must have corrupted something");
        assert!(detected_by_receiver > 0, "checksum must have caught it");
    }

    #[test]
    fn retries_exhaust_against_a_black_hole() {
        // 100% drop: nothing ever arrives, acks never come back, and the
        // bounded retry must fail the run with a structured diagnosis.
        let plan = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::none(2)
        };
        let cfg = ResilientConfig {
            rto: Duration::from_millis(5),
            max_retries: 4,
            recv_deadline: Duration::from_secs(5),
            checkpoint_interval: 0,
        };
        let err = run_resilient(2, plan, cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![1.0]);
                // Pumping happens inside recv; wait on an ack that cannot
                // come.
                ctx.recv(1, 1).map(|v| v[0])
            } else {
                ctx.recv(0, 0).map(|v| v[0])
            }
        })
        .unwrap_err();
        match err {
            MpiSimError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 4),
            MpiSimError::Deadlock { .. } => {} // watchdog may win the race
            other => panic!("expected RetriesExhausted or Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_restore_replays_to_identical_state() {
        // Two ranks exchange running sums; rank 1 crashes at iteration 5
        // and must recover to the same final value as the fault-free run.
        let body = |ctx: &mut ResilientCtx| -> Result<f64, MpiSimError> {
            let me = ctx.rank();
            let peer = 1 - me;
            let mut x = vec![(me + 1) as f64];
            let mut it = 0usize;
            while it < 8 {
                if it.is_multiple_of(2) {
                    ctx.save_checkpoint(it, std::slice::from_ref(&x));
                }
                if ctx.crash_pending(it) {
                    let (restored_it, state) = ctx.crash_and_restore(it)?;
                    it = restored_it;
                    x = state.into_iter().next().unwrap();
                    continue;
                }
                ctx.send(peer, 0, x.clone());
                let got = ctx.recv(peer, 0)?;
                x[0] = x[0] * 0.5 + got[0] * 0.5 + (it as f64);
                it += 1;
            }
            Ok(x[0])
        };
        let clean =
            run_resilient(2, FaultPlan::none(11), ResilientConfig::default(), body).unwrap();
        let crashed = run_resilient(
            2,
            FaultPlan::none(11).with_crash(1, 5),
            ResilientConfig::default(),
            body,
        )
        .unwrap();
        assert_eq!(
            clean[0].0.to_bits(),
            crashed[0].0.to_bits(),
            "bit-identical after recovery"
        );
        assert_eq!(clean[1].0.to_bits(), crashed[1].0.to_bits());
        assert_eq!(crashed[1].1.restores, 1);
        assert!(crashed[1].1.replayed_iterations >= 1);
        assert_eq!(clean[1].1.restores, 0);
    }

    #[test]
    fn crash_before_checkpoint_is_a_structured_error() {
        let err = run_resilient(
            2,
            FaultPlan::none(4).with_crash(0, 0),
            ResilientConfig::default(),
            |ctx| {
                if ctx.crash_pending(0) {
                    ctx.crash_and_restore(0)?;
                }
                Ok(0.0)
            },
        )
        .unwrap_err();
        assert!(matches!(err, MpiSimError::InvalidConfig(_)), "{err:?}");
    }
}
