//! Integration tests for the fault-injected resilient transport: seeded
//! fault plans must never change the computed answer, crashes must restore
//! and replay deterministically, and no configuration may hang forever.

use std::time::Duration;

use fsc_mpisim::fault::FaultPlan;
use fsc_mpisim::resilient::{run_resilient, ResilientConfig, ResilientCtx};
use fsc_mpisim::MpiSimError;
use proptest::prelude::*;

/// A small halo-exchange workload: each rank holds `elems` values and
/// repeatedly averages against both neighbours — the same communication
/// shape as a distributed stencil sweep, tiny enough to run many seeds.
fn halo_body(
    ctx: &mut ResilientCtx,
    elems: usize,
    iters: usize,
    ckpt: usize,
) -> Result<Vec<f64>, MpiSimError> {
    let (rank, size) = (ctx.rank(), ctx.size());
    let mut field: Vec<f64> = (0..elems)
        .map(|i| (rank * elems + i) as f64 * 0.25 + 1.0)
        .collect();
    let mut it = 0usize;
    while it < iters {
        if ckpt > 0 && it.is_multiple_of(ckpt) {
            ctx.save_checkpoint(it, std::slice::from_ref(&field));
        }
        if ctx.crash_pending(it) {
            let (restored, state) = ctx.crash_and_restore(it)?;
            it = restored;
            field = state.into_iter().next().expect("checkpointed field");
            continue;
        }
        if rank > 0 {
            ctx.send(rank - 1, 0, field.clone());
        }
        if rank + 1 < size {
            ctx.send(rank + 1, 1, field.clone());
        }
        if rank > 0 {
            let left = ctx.recv(rank - 1, 1)?;
            for (a, b) in field.iter_mut().zip(&left) {
                *a = 0.5 * (*a + *b);
            }
        }
        if rank + 1 < size {
            let right = ctx.recv(rank + 1, 0)?;
            for (a, b) in field.iter_mut().zip(&right) {
                *a = 0.5 * (*a + *b);
            }
        }
        ctx.barrier()?;
        it += 1;
    }
    Ok(field)
}

fn run_plan(
    ranks: usize,
    iters: usize,
    plan: FaultPlan,
    cfg: ResilientConfig,
) -> Vec<(Vec<f64>, fsc_mpisim::fault::FaultStats)> {
    run_resilient(ranks, plan, cfg, move |ctx| {
        halo_body(ctx, 16, iters, cfg.checkpoint_interval)
    })
    .expect("resilient run must complete")
}

fn bits(fields: &[(Vec<f64>, fsc_mpisim::fault::FaultStats)]) -> Vec<Vec<u64>> {
    fields
        .iter()
        .map(|(f, _)| f.iter().map(|x| x.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded lossy plan (drops, duplicates, delays, reorders — no
    /// crash) converges bit-identically to the fault-free run.
    #[test]
    fn lossy_plans_converge_bit_identically(
        seed in 0u64..1_000_000,
        drop_pm in 0u64..120,
        dup_pm in 0u64..80,
        delay_pm in 0u64..80,
        reorder_pm in 0u64..80,
        ranks in 2usize..5,
        iters in 2usize..6,
    ) {
        let mut plan = FaultPlan::none(seed);
        plan.drop_prob = drop_pm as f64 / 1000.0;
        plan.dup_prob = dup_pm as f64 / 1000.0;
        plan.delay_prob = delay_pm as f64 / 1000.0;
        plan.max_delay_ms = 2;
        plan.reorder_prob = reorder_pm as f64 / 1000.0;
        let cfg = ResilientConfig::default();
        let faulty = run_plan(ranks, iters, plan, cfg);
        let clean = run_plan(ranks, iters, FaultPlan::none(seed), cfg);
        prop_assert_eq!(bits(&faulty), bits(&clean));
        // A dropped *data* message must be retransmitted for its receiver
        // to progress; only a final ack lost at shutdown can go unretried
        // (the closed channel acknowledges it), so sustained drop rates
        // must show retry traffic.
        let total: u64 = faulty.iter().map(|(_, s)| s.injected_drops).sum();
        let retried: u64 = faulty.iter().map(|(_, s)| s.retries).sum();
        if total > ranks as u64 {
            prop_assert!(retried > 0, "{total} drops with no retransmits");
        }
    }
}

/// A deterministic crash at iteration k restores from the latest
/// checkpoint, replays the gap, and finishes bit-identical to a
/// fault-free run — with the recovery attested in the stats.
#[test]
fn crash_at_k_restores_and_replays_deterministically() {
    let cfg = ResilientConfig {
        checkpoint_interval: 2,
        ..Default::default()
    };
    let plan = FaultPlan::lossy(77, 0.05).with_crash(1, 5);
    let faulty = run_plan(3, 8, plan, cfg);
    let clean = run_plan(3, 8, FaultPlan::none(77), cfg);
    assert_eq!(bits(&faulty), bits(&clean), "recovery must be bit-exact");
    let victim = &faulty[1].1;
    assert_eq!(victim.injected_crashes, 1);
    assert_eq!(victim.restores, 1);
    // Crash at 5 with checkpoints at 0/2/4 replays exactly iteration 4.
    assert_eq!(victim.replayed_iterations, 1);
    assert!(victim.checkpoints >= 3);
    // Repeating the identical plan reproduces the identical answer with
    // the identical recovery shape (retry counts may differ — timers race
    // real scheduling — but the injected faults and replay do not).
    let again = run_plan(3, 8, FaultPlan::lossy(77, 0.05).with_crash(1, 5), cfg);
    assert_eq!(bits(&again), bits(&faulty));
    assert_eq!(again[1].1.injected_crashes, 1);
    assert_eq!(again[1].1.replayed_iterations, 1);
}

/// Mismatched tags on the resilient transport surface as a structured
/// deadlock/timeout naming the stuck ranks — never an infinite hang.
#[test]
fn mismatched_resilient_tags_cannot_hang() {
    let cfg = ResilientConfig {
        recv_deadline: Duration::from_secs(2),
        ..ResilientConfig::default()
    };
    let err = run_resilient(2, FaultPlan::none(0), cfg, move |ctx| {
        let peer = 1 - ctx.rank();
        ctx.send(peer, 3, vec![1.0]);
        // Both ranks wait on a tag nobody sends.
        ctx.recv(peer, 4).map(|_| ())
    })
    .expect_err("mismatched tags must fail, not hang");
    match err {
        MpiSimError::Deadlock { ref blocked } => {
            assert!(!blocked.is_empty(), "deadlock must name stuck ranks")
        }
        MpiSimError::Timeout { .. } | MpiSimError::Poisoned { .. } => {}
        other => panic!("unexpected error: {other}"),
    }
}

/// A rank that crashes with no checkpoint configured is a structured
/// config error, not a hang or a wrong answer.
#[test]
fn crash_without_checkpoints_is_rejected() {
    let cfg = ResilientConfig {
        checkpoint_interval: 0,
        ..Default::default()
    };
    let err = run_resilient(2, FaultPlan::none(0).with_crash(0, 1), cfg, move |ctx| {
        halo_body(ctx, 4, 3, 0)
    })
    .expect_err("crash without checkpoints must be rejected");
    assert!(
        matches!(
            err,
            MpiSimError::InvalidConfig(_) | MpiSimError::Poisoned { .. }
        ),
        "got: {err}"
    );
}
