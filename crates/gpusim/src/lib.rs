//! # fsc-gpusim — an analytic Nvidia V100 performance model
//!
//! The paper's GPU experiments (Figure 5) ran on Cirrus V100-SXM2-16GB
//! cards; no GPU exists in this reproduction environment, so kernels execute
//! on the CPU for *correctness* while this crate charges *modeled* time.
//! The substitution preserves what Figure 5 actually measures, because that
//! figure's story is entirely about **data movement strategy**:
//!
//! * `gpu.host_register` (the paper's initial approach) demand-pages every
//!   registered buffer across PCIe on every kernel launch — "allocating
//!   data on the host and moving it across on demand, without effective
//!   caching" (§4.3);
//! * the bespoke explicit-management pass keeps buffers resident on the
//!   device, paying one transfer per buffer generation;
//! * hand-written OpenACC with unified memory sits in between: resident
//!   data, but "numerous data access stalls" from the page-fault-driven
//!   migration engine.
//!
//! The kernel execution model is a roofline: time = max(compute, memory)
//! with a thread-block occupancy factor, so the Listing-4 tile-size
//! sensitivity is reproducible (the `ablation_tiling` bench sweeps it).

use std::collections::HashMap;

/// Static V100-SXM2-16GB machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct V100Model {
    /// Peak FP64 throughput (FLOP/s).
    pub fp64_flops: f64,
    /// Device memory bandwidth (B/s), de-rated to achievable STREAM level.
    pub mem_bw: f64,
    /// Host↔device PCIe bandwidth (B/s), effective.
    pub pcie_bw: f64,
    /// Fixed kernel launch overhead (s).
    pub launch_overhead: f64,
    /// Page size used by the unified-memory migration engine (bytes).
    pub page_size: u64,
    /// Cost of one demand page fault + migration setup (s).
    pub page_fault_cost: f64,
    /// Number of page faults the migration engine overlaps.
    pub fault_concurrency: f64,
    /// Fraction of pages that stall an access in unified-memory mode once
    /// data is resident (re-validation traffic).
    pub unified_stall_fraction: f64,
}

impl Default for V100Model {
    fn default() -> Self {
        Self {
            fp64_flops: 7.0e12,
            mem_bw: 790e9,
            pcie_bw: 11e9,
            launch_overhead: 6e-6,
            page_size: 64 * 1024,
            page_fault_cost: 25e-6,
            fault_concurrency: 8.0,
            unified_stall_fraction: 0.04,
        }
    }
}

/// Work of one kernel invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelLoad {
    /// Grid cells processed.
    pub cells: u64,
    /// FP operations.
    pub flops: u64,
    /// Bytes read from device memory.
    pub bytes_read: u64,
    /// Bytes written to device memory.
    pub bytes_written: u64,
}

/// Data-movement strategy being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// `gpu.host_register` demand paging (the paper's initial approach).
    HostRegister,
    /// Explicit device residency (the paper's optimised pass).
    Explicit,
    /// CUDA unified/managed memory (the OpenACC baseline).
    UnifiedManaged,
}

/// How a launch touches one buffer.
#[derive(Debug, Clone, Copy)]
pub struct BufferUse {
    /// Caller-chosen stable id.
    pub id: u64,
    /// Buffer size in bytes.
    pub bytes: u64,
    /// Read by the kernel.
    pub read: bool,
    /// Written by the kernel.
    pub written: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct BufState {
    resident: bool,
    /// Device copy is newer than the host's.
    device_dirty: bool,
    /// Host copy is newer than the device's.
    host_dirty: bool,
}

/// Transfer/time accounting for one modeled GPU run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuCounters {
    /// Kernel launches.
    pub launches: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Page faults serviced.
    pub page_faults: u64,
    /// Seconds spent in kernels.
    pub kernel_seconds: f64,
    /// Seconds spent moving data.
    pub transfer_seconds: f64,
}

/// A modeled GPU execution session: owns the residency ledger and the
/// accumulated timeline.
#[derive(Debug)]
pub struct GpuSession {
    /// Machine parameters.
    pub model: V100Model,
    ledger: HashMap<u64, BufState>,
    /// Accounting.
    pub counters: GpuCounters,
}

impl GpuSession {
    /// New session with the given machine model.
    pub fn new(model: V100Model) -> Self {
        Self {
            model,
            ledger: HashMap::new(),
            counters: GpuCounters::default(),
        }
    }

    /// Total modeled seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.counters.kernel_seconds + self.counters.transfer_seconds
    }

    /// Occupancy factor of a thread-block shape: blocks need enough warps
    /// to hide latency; tiny blocks crater throughput (the Listing 4 tile
    /// sensitivity).
    pub fn block_efficiency(&self, block: [i64; 3]) -> f64 {
        let threads = (block[0] * block[1] * block[2]).max(1) as f64;
        // 128 threads (4 warps) per block reaches full throughput; below
        // that, throughput degrades proportionally to issued warps, with a
        // floor for fully serial launches. Above 1024 is invalid on V100.
        if threads > 1024.0 {
            return 0.0;
        }
        (threads / 128.0).clamp(1.0 / 128.0, 1.0)
    }

    /// Pure kernel execution time (roofline + launch overhead).
    pub fn kernel_time(&self, load: KernelLoad, block: [i64; 3]) -> f64 {
        let eff = self.block_efficiency(block);
        let t_compute = load.flops as f64 / (self.model.fp64_flops * eff);
        let t_mem = (load.bytes_read + load.bytes_written) as f64 / (self.model.mem_bw * eff);
        t_compute.max(t_mem) + self.model.launch_overhead
    }

    /// Model one kernel launch under `strategy`, charging transfers
    /// according to the residency ledger. Returns seconds charged for this
    /// launch (also accumulated in the session).
    pub fn launch(
        &mut self,
        load: KernelLoad,
        block: [i64; 3],
        strategy: Strategy,
        buffers: &[BufferUse],
    ) -> f64 {
        if self.block_efficiency(block) == 0.0 {
            // The paper notes some tile sizes "can result in runtime
            // failures on the GPU" — block > 1024 threads is one of them.
            // Model it as an effectively unusable configuration.
            return f64::INFINITY;
        }
        let mut transfer = 0.0f64;
        for b in buffers {
            let state = self.ledger.entry(b.id).or_default();
            match strategy {
                Strategy::HostRegister => {
                    // No caching: every launch re-migrates what it touches,
                    // page by page, and writes fault back eagerly.
                    let mut moved = 0u64;
                    if b.read {
                        moved += b.bytes;
                        self.counters.h2d_bytes += b.bytes;
                    }
                    if b.written {
                        moved += b.bytes;
                        self.counters.d2h_bytes += b.bytes;
                    }
                    let pages = moved.div_ceil(self.model.page_size);
                    self.counters.page_faults += pages;
                    transfer += moved as f64 / self.model.pcie_bw
                        + pages as f64 * self.model.page_fault_cost / self.model.fault_concurrency;
                }
                Strategy::Explicit => {
                    // Ensure-valid: pay PCIe only when the host copy is
                    // newer or the buffer was never uploaded.
                    if b.read && (!state.resident || state.host_dirty) {
                        transfer += b.bytes as f64 / self.model.pcie_bw;
                        self.counters.h2d_bytes += b.bytes;
                    }
                    if b.read || b.written {
                        state.resident = true;
                        state.host_dirty = false;
                    }
                    if b.written {
                        state.device_dirty = true;
                    }
                }
                Strategy::UnifiedManaged => {
                    // First touch migrates; afterwards a small fraction of
                    // pages stall per launch (driver re-validation).
                    let pages = b.bytes.div_ceil(self.model.page_size);
                    if !state.resident {
                        transfer += b.bytes as f64 / self.model.pcie_bw
                            + pages as f64 * self.model.page_fault_cost
                                / self.model.fault_concurrency;
                        self.counters.h2d_bytes += b.bytes;
                        self.counters.page_faults += pages;
                        state.resident = true;
                    } else {
                        let stalled = (pages as f64 * self.model.unified_stall_fraction).ceil();
                        self.counters.page_faults += stalled as u64;
                        transfer +=
                            stalled * self.model.page_fault_cost / self.model.fault_concurrency;
                    }
                    if b.written {
                        state.device_dirty = true;
                    }
                }
            }
        }
        let kt = self.kernel_time(load, block);
        self.counters.launches += 1;
        self.counters.kernel_seconds += kt;
        self.counters.transfer_seconds += transfer;
        kt + transfer
    }

    /// The host touches a buffer (verification read / program end): charge
    /// the lazy device→host migration if the device copy is newer.
    pub fn host_access(&mut self, id: u64, bytes: u64) -> f64 {
        let state = self.ledger.entry(id).or_default();
        if state.device_dirty {
            state.device_dirty = false;
            state.host_dirty = false;
            let t = bytes as f64 / self.model.pcie_bw;
            self.counters.d2h_bytes += bytes;
            self.counters.transfer_seconds += t;
            t
        } else {
            0.0
        }
    }

    /// The host writes a buffer: device copy becomes stale.
    pub fn host_write(&mut self, id: u64) {
        let state = self.ledger.entry(id).or_default();
        state.host_dirty = true;
        state.device_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_1m() -> KernelLoad {
        KernelLoad {
            cells: 1_000_000,
            flops: 6_000_000,
            bytes_read: 48_000_000,
            bytes_written: 8_000_000,
        }
    }

    fn buf(id: u64, read: bool, written: bool) -> BufferUse {
        BufferUse {
            id,
            bytes: 8_000_000,
            read,
            written,
        }
    }

    #[test]
    fn kernel_time_is_roofline() {
        let s = GpuSession::new(V100Model::default());
        let t = s.kernel_time(load_1m(), [32, 32, 1]);
        // Memory bound: 56 MB / 790 GB/s ≈ 71 µs (plus launch overhead).
        assert!(t > 60e-6 && t < 120e-6, "t = {t}");
    }

    #[test]
    fn tiny_blocks_are_slow_and_huge_blocks_fail() {
        let mut s = GpuSession::new(V100Model::default());
        let t_good = s.kernel_time(load_1m(), [32, 32, 1]);
        let t_tiny = s.kernel_time(load_1m(), [1, 1, 1]);
        assert!(t_tiny > 20.0 * t_good, "tiny {t_tiny} vs good {t_good}");
        let t_bad = s.launch(load_1m(), [64, 32, 1], Strategy::Explicit, &[]);
        assert!(t_bad.is_infinite(), "2048-thread blocks cannot launch");
    }

    #[test]
    fn explicit_strategy_amortises_transfers() {
        let mut s = GpuSession::new(V100Model::default());
        let buffers = [buf(1, true, false), buf(2, false, true)];
        let t_first = s.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        let t_second = s.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        assert!(t_first > t_second, "first launch pays the upload");
        // Steady-state: no transfer at all.
        let t_third = s.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        assert!((t_second - t_third).abs() < 1e-12);
        assert_eq!(s.counters.h2d_bytes, 8_000_000);
    }

    #[test]
    fn host_register_pays_every_launch() {
        let mut s = GpuSession::new(V100Model::default());
        let buffers = [buf(1, true, false), buf(2, false, true)];
        let t1 = s.launch(load_1m(), [32, 32, 1], Strategy::HostRegister, &buffers);
        let t2 = s.launch(load_1m(), [32, 32, 1], Strategy::HostRegister, &buffers);
        assert!((t1 - t2).abs() < 1e-12, "no caching: identical cost");
        assert_eq!(s.counters.h2d_bytes, 16_000_000);
        assert_eq!(s.counters.d2h_bytes, 16_000_000);
        // And it is far slower than explicit steady state.
        let mut e = GpuSession::new(V100Model::default());
        e.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        let t_explicit = e.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        assert!(t1 > 5.0 * t_explicit, "{t1} vs {t_explicit}");
    }

    #[test]
    fn unified_sits_between_host_register_and_explicit() {
        let buffers = [buf(1, true, false), buf(2, false, true)];
        let steady = |strategy: Strategy| {
            let mut s = GpuSession::new(V100Model::default());
            s.launch(load_1m(), [32, 32, 1], strategy, &buffers);
            s.launch(load_1m(), [32, 32, 1], strategy, &buffers)
        };
        let hr = steady(Strategy::HostRegister);
        let um = steady(Strategy::UnifiedManaged);
        let ex = steady(Strategy::Explicit);
        assert!(hr > um, "host_register {hr} should exceed unified {um}");
        assert!(um > ex, "unified {um} should exceed explicit {ex}");
    }

    #[test]
    fn lazy_d2h_charged_once_on_host_access() {
        let mut s = GpuSession::new(V100Model::default());
        let buffers = [buf(7, false, true)];
        s.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        let t1 = s.host_access(7, 8_000_000);
        assert!(t1 > 0.0);
        let t2 = s.host_access(7, 8_000_000);
        assert_eq!(t2, 0.0, "clean copy: no second transfer");
    }

    #[test]
    fn host_write_invalidates_device() {
        let mut s = GpuSession::new(V100Model::default());
        let buffers = [buf(3, true, false)];
        s.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        s.host_write(3);
        let t = s.launch(load_1m(), [32, 32, 1], Strategy::Explicit, &buffers);
        // Upload paid again.
        assert!(t > s.kernel_time(load_1m(), [32, 32, 1]));
        assert_eq!(s.counters.h2d_bytes, 16_000_000);
    }
}
