//! # fsc-serve — compile-server mode
//!
//! A persistent daemon that amortises compilation across many clients:
//! instead of paying frontend + pass-pipeline + kernel-compile +
//! autotune-calibration cost per invocation, a long-lived server keeps
//!
//! * a **singleflight compile service** (`fsc_core::session`) — identical
//!   concurrent requests compile once; finished artifacts are shared from
//!   a bounded cache;
//! * a **shared plan cache** (`fsc_exec::sharded`) — autotuned execution
//!   plans discovered by any session serve every later one, in process
//!   via RCU-style snapshot reads and across restarts via the
//!   merge-on-save JSON cache;
//! * a **bounded work queue with admission control** — overload is
//!   answered with a coded `E0801` rejection, not latency collapse;
//! * an explicit **failure model** (DESIGN.md §11) — per-request
//!   deadlines (`E0803`), crash-only workers with supervisor respawn
//!   (`E0804`), brownout degradation under queue pressure, bounded
//!   request frames, and a hard-bounded graceful drain. Every admitted
//!   request is answered exactly once, success or coded error;
//! * a **seeded chaos layer** ([`chaos`]) — worker panics, slow compiles,
//!   truncated response frames and cache corruption, injected
//!   deterministically so `loadgen --chaos` soaks are reproducible.
//!
//! The wire protocol is line-delimited JSON over a Unix domain socket
//! ([`proto`]); [`server`] hosts the daemon, [`client`] carries the
//! blocking [`client::Client`] and the retrying
//! [`client::ResilientClient`], and [`metrics`] the lock-free counters
//! behind `/stats`. The `fsc-serve` binary wraps [`server::Server`]; the
//! `loadgen` binary drives a server (self-hosted or external) with
//! thousands of mixed requests and reports throughput and latency
//! quantiles — or, with `--chaos`, runs the fault-injection soak.

pub mod chaos;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use chaos::{ChaosInjector, ChaosPlan, ChaosStats};
pub use client::{Client, ResilientClient, RetryPolicy};
pub use metrics::{LatencyHistogram, ServerMetrics};
pub use proto::{parse_target, CompileSpec, Op, Request};
pub use server::{BrownoutLevel, Server, ServerConfig};

use fsc_core::Execution;

/// Order- and name-sensitive FNV-1a-64 checksum over the *bit patterns*
/// of the named arrays' final contents. The e2e suite compares a server
/// run's checksum against a direct in-process library run — equality
/// means bit-identical results, independent of JSON float formatting.
pub fn checksum_arrays(execution: &Execution, names: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for name in names {
        eat(name.as_bytes());
        match execution.array(name) {
            Some(data) => {
                for v in data {
                    eat(&v.to_bits().to_le_bytes());
                }
            }
            None => eat(b"<absent>"),
        }
    }
    h
}
