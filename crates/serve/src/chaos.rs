//! Seeded chaos injection for the compile server.
//!
//! Modeled on the MPI substrate's `FaultPlan` (DESIGN.md §6): a
//! [`ChaosPlan`] says *what* may go wrong and how often, a
//! [`ChaosInjector`] turns it into per-site deterministic decision
//! streams (xorshift64\*, seeded from `plan.seed ^ site`), and
//! [`ChaosStats`] counts what was actually injected so a soak can assert
//! the chaos fired at all (a fault test that injects nothing is vacuous).
//!
//! Injection sites, mapped to the failure modes of DESIGN.md §11:
//!
//! | site              | what happens                                     |
//! |-------------------|--------------------------------------------------|
//! | worker panic      | `panic!` in the worker loop, outside any
//! |                   | `catch_unwind` — the thread dies, the supervisor
//! |                   | must answer `E0804` and respawn                  |
//! | slow compile      | a sleep inside the singleflight leader's critical
//! |                   | section (via the service pre-compile hook) — the
//! |                   | watchdog must answer `E0803` and reclaim the slot|
//! | frame truncation  | a response line is cut mid-frame and the socket
//! |                   | shut down — the client sees a transport error and
//! |                   | must retry idempotently                          |
//! | cache corruption  | garbage appended to the on-disk plan cache — the
//! |                   | next merge-on-save load must degrade `E0702`,
//! |                   | never fail a request                             |
//! | artifact purge    | the in-memory artifact cache is dropped — every
//! |                   | fingerprint recompiles; results must stay
//! |                   | bit-identical                                    |
//!
//! Decisions are drawn from per-site sequence streams, so a fixed seed
//! pins the decision sequence at each site; which *request* lands on a
//! given decision depends on thread interleaving, but the injected fault
//! density is reproducible. [`ChaosInjector::disarm`] turns every site
//! off at once — the post-chaos verification phase runs on the same
//! (scarred) server with injection disabled.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What the chaos layer may do to a running server, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// RNG seed; the same plan draws the same decision streams.
    pub seed: u64,
    /// Probability a picked-up job kills its worker thread with a raw
    /// panic (outside any `catch_unwind`).
    pub worker_panic_prob: f64,
    /// Probability a compile is artificially slowed by
    /// [`Self::slow_compile_ms`] inside the singleflight leader section.
    /// Sampled per *actual compile* (not per request): the artifact cache
    /// makes compiles rare by design, so this rate runs much higher than
    /// the per-request sites to land a comparable fault count.
    pub slow_compile_prob: f64,
    /// Injected compile slowdown, in milliseconds. Set it beyond the
    /// server deadline to exercise watchdog kills; the sleep is bounded,
    /// so a slowed worker always returns (and its late result is
    /// discarded via the answered flag).
    pub slow_compile_ms: u64,
    /// Probability a response line is truncated mid-frame and the
    /// connection shut down.
    pub truncate_prob: f64,
    /// Probability a job pick-up appends garbage to the on-disk plan
    /// cache file.
    pub corrupt_cache_prob: f64,
    /// Probability a job pick-up purges the in-memory artifact cache.
    pub purge_artifacts_prob: f64,
    /// Probability a job's *first* memory-reservation attempt is forced to
    /// fail as if the server ledger were exhausted — the admission path
    /// must squeeze (shed autotune scratch / reduce the rung) or answer a
    /// coded `E0806`, never abort. Makes memory-pressure handling
    /// non-vacuous even when the configured budget is never organically
    /// hit.
    pub mem_pressure_prob: f64,
}

impl ChaosPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            worker_panic_prob: 0.0,
            slow_compile_prob: 0.0,
            slow_compile_ms: 0,
            truncate_prob: 0.0,
            corrupt_cache_prob: 0.0,
            purge_artifacts_prob: 0.0,
            mem_pressure_prob: 0.0,
        }
    }

    /// The standard soak configuration: every failure mode armed at a
    /// few percent, slow compiles long enough to trip a `deadline_ms`
    /// budget of ~250 ms.
    pub fn soak(seed: u64) -> Self {
        Self {
            seed,
            worker_panic_prob: 0.04,
            slow_compile_prob: 0.30,
            slow_compile_ms: 600,
            truncate_prob: 0.03,
            corrupt_cache_prob: 0.02,
            purge_artifacts_prob: 0.02,
            mem_pressure_prob: 0.05,
        }
    }
}

/// Counters of injected faults (monotonic; surfaced in `stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Worker panics injected.
    pub panics: u64,
    /// Slow compiles injected.
    pub slow_compiles: u64,
    /// Response frames truncated.
    pub truncations: u64,
    /// Plan-cache corruptions injected.
    pub cache_corruptions: u64,
    /// Artifact-cache purges injected.
    pub artifact_purges: u64,
    /// Forced memory-reservation failures injected.
    pub mem_pressures: u64,
}

impl ChaosStats {
    /// Total faults injected across every site.
    pub fn total(&self) -> u64 {
        self.panics
            + self.slow_compiles
            + self.truncations
            + self.cache_corruptions
            + self.artifact_purges
            + self.mem_pressures
    }
}

/// One deterministic per-site decision stream.
struct Site {
    state: AtomicU64,
    hits: AtomicU64,
}

impl Site {
    fn new(seed: u64, tag: u64) -> Self {
        // Never seed xorshift with 0; fold the tag in with a splitmix step.
        let mut z = seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            state: AtomicU64::new((z ^ (z >> 31)) | 1),
            hits: AtomicU64::new(0),
        }
    }

    /// Draw the next decision: true with probability `prob`.
    fn decide(&self, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        // xorshift64* advanced with a CAS loop so concurrent workers share
        // one stream without locking.
        let mut cur = self.state.load(Ordering::Relaxed);
        let next = loop {
            let mut x = cur;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match self
                .state
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break x,
                Err(seen) => cur = seen,
            }
        };
        let draw = (next.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        let hit = draw < prob;
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

/// The armed chaos layer: one decision stream per site, plus a global
/// arm/disarm switch.
pub struct ChaosInjector {
    plan: ChaosPlan,
    armed: AtomicBool,
    worker_panic: Site,
    slow_compile: Site,
    truncate: Site,
    corrupt_cache: Site,
    purge_artifacts: Site,
    mem_pressure: Site,
}

impl ChaosInjector {
    /// Build an armed injector for `plan`.
    pub fn new(plan: ChaosPlan) -> Self {
        let seed = plan.seed;
        Self {
            armed: AtomicBool::new(true),
            worker_panic: Site::new(seed, 1),
            slow_compile: Site::new(seed, 2),
            truncate: Site::new(seed, 3),
            corrupt_cache: Site::new(seed, 4),
            purge_artifacts: Site::new(seed, 5),
            mem_pressure: Site::new(seed, 6),
            plan,
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Turn every site off (idempotent). Used between a soak's storm and
    /// its verification phase.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// True while injection is active.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    fn on(&self, site: &Site, prob: f64) -> bool {
        self.armed() && site.decide(prob)
    }

    /// Should this job pick-up kill its worker?
    pub fn worker_panic(&self) -> bool {
        self.on(&self.worker_panic, self.plan.worker_panic_prob)
    }

    /// Should this compile be slowed? Returns the sleep to inject.
    pub fn slow_compile(&self) -> Option<std::time::Duration> {
        if self.on(&self.slow_compile, self.plan.slow_compile_prob) {
            Some(std::time::Duration::from_millis(self.plan.slow_compile_ms))
        } else {
            None
        }
    }

    /// Should this response frame be truncated mid-write?
    pub fn truncate_frame(&self) -> bool {
        self.on(&self.truncate, self.plan.truncate_prob)
    }

    /// Should the on-disk plan cache be corrupted now?
    pub fn corrupt_cache(&self) -> bool {
        self.on(&self.corrupt_cache, self.plan.corrupt_cache_prob)
    }

    /// Should the artifact cache be purged now?
    pub fn purge_artifacts(&self) -> bool {
        self.on(&self.purge_artifacts, self.plan.purge_artifacts_prob)
    }

    /// Should this job's first memory reservation be forced to fail?
    pub fn mem_pressure(&self) -> bool {
        self.on(&self.mem_pressure, self.plan.mem_pressure_prob)
    }

    /// Snapshot of what has been injected so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            panics: self.worker_panic.hits.load(Ordering::Relaxed),
            slow_compiles: self.slow_compile.hits.load(Ordering::Relaxed),
            truncations: self.truncate.hits.load(Ordering::Relaxed),
            cache_corruptions: self.corrupt_cache.hits.load(Ordering::Relaxed),
            artifact_purges: self.purge_artifacts.hits.load(Ordering::Relaxed),
            mem_pressures: self.mem_pressure.hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_streams_are_seed_deterministic() {
        let a = ChaosInjector::new(ChaosPlan::soak(42));
        let b = ChaosInjector::new(ChaosPlan::soak(42));
        let draws_a: Vec<bool> = (0..256).map(|_| a.worker_panic()).collect();
        let draws_b: Vec<bool> = (0..256).map(|_| b.worker_panic()).collect();
        assert_eq!(draws_a, draws_b, "same seed must draw the same stream");
        let c = ChaosInjector::new(ChaosPlan::soak(43));
        let draws_c: Vec<bool> = (0..256).map(|_| c.worker_panic()).collect();
        assert_ne!(draws_a, draws_c, "different seeds must differ");
    }

    #[test]
    fn hit_rates_track_probabilities() {
        let inj = ChaosInjector::new(ChaosPlan {
            worker_panic_prob: 0.25,
            ..ChaosPlan::soak(7)
        });
        let n = 10_000;
        let hits = (0..n).filter(|_| inj.worker_panic()).count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - 0.25).abs() < 0.03,
            "rate {rate} too far from 0.25 over {n} draws"
        );
        assert_eq!(inj.stats().panics, hits as u64);
    }

    #[test]
    fn disarm_silences_every_site() {
        let inj = ChaosInjector::new(ChaosPlan {
            worker_panic_prob: 1.0,
            slow_compile_prob: 1.0,
            truncate_prob: 1.0,
            corrupt_cache_prob: 1.0,
            purge_artifacts_prob: 1.0,
            mem_pressure_prob: 1.0,
            ..ChaosPlan::soak(1)
        });
        assert!(inj.worker_panic());
        inj.disarm();
        assert!(!inj.worker_panic());
        assert!(inj.slow_compile().is_none());
        assert!(!inj.truncate_frame());
        assert!(!inj.corrupt_cache());
        assert!(!inj.purge_artifacts());
        assert!(!inj.mem_pressure());
        assert_eq!(inj.stats().total(), 1, "disarmed sites must not count");
    }

    #[test]
    fn zero_probability_never_fires() {
        let inj = ChaosInjector::new(ChaosPlan::none(9));
        assert!((0..1000).all(|_| !inj.worker_panic()));
        assert_eq!(inj.stats().total(), 0);
    }
}
