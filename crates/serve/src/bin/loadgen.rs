//! `loadgen` — drive a compile server with a mixed request storm and
//! report throughput, latency quantiles and cache effectiveness.
//!
//! ```text
//! loadgen [--requests N] [--clients N] [--socket PATH] [--smoke]
//! ```
//!
//! Without `--socket` the generator self-hosts a server inside this
//! process (on a private socket with a private plan cache) so one command
//! produces a full closed-loop measurement. `--smoke` is the CI gate:
//! a small storm that must finish with **zero failed requests**, a
//! **non-zero artifact reuse rate**, and **singleflight holding**
//! (server-side compiles == distinct request shapes issued).
//!
//! Busy rejections (`E0801`) are part of the admission-control contract,
//! not failures: the generator retries them with linear backoff and
//! reports how often it had to.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fsc_ir::json::Json;
use fsc_serve::{Client, Server, ServerConfig};

/// One request shape in the mix.
#[derive(Clone)]
struct Shape {
    label: &'static str,
    source: String,
    target: &'static str,
    autotune: bool,
}

/// The mixed workload: distinct programs × targets, some autotuned —
/// deliberately heavy on duplicates so reuse and singleflight matter.
fn shapes() -> Vec<Shape> {
    let gs4 = fsc_workloads::gauss_seidel::fortran_source(4, 2);
    let gs6 = fsc_workloads::gauss_seidel::fortran_source(6, 2);
    let gs8 = fsc_workloads::gauss_seidel::fortran_source(8, 2);
    let pw6 = fsc_workloads::pw_advection::fortran_source(6);
    vec![
        Shape {
            label: "gs4/cpu",
            source: gs4.clone(),
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "gs6/cpu",
            source: gs6.clone(),
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "gs8/cpu",
            source: gs8.clone(),
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "pw6/cpu",
            source: pw6,
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "gs4/omp2",
            source: gs4,
            target: "omp:2",
            autotune: false,
        },
        Shape {
            label: "gs6/omp2",
            source: gs6,
            target: "omp:2",
            autotune: false,
        },
        Shape {
            label: "gs8/cpu+tune",
            source: gs8,
            target: "cpu",
            autotune: true,
        },
    ]
}

struct Outcome {
    ok: u64,
    failed: u64,
    busy_retries: u64,
    latencies_us: Vec<u64>,
}

fn drive_client(
    socket: &std::path::Path,
    indices: Vec<usize>,
    shapes: &[Shape],
    counters: &(AtomicU64, AtomicU64, AtomicU64),
) -> Outcome {
    let mut client = match Client::connect(socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: connect failed: {e}");
            return Outcome {
                ok: 0,
                failed: indices.len() as u64,
                busy_retries: 0,
                latencies_us: vec![],
            };
        }
    };
    let mut out = Outcome {
        ok: 0,
        failed: 0,
        busy_retries: 0,
        latencies_us: Vec::with_capacity(indices.len()),
    };
    for i in indices {
        let shape = &shapes[i % shapes.len()];
        let t0 = Instant::now();
        let mut attempt = 0u64;
        let response = loop {
            match client.run(&shape.source, shape.target, shape.autotune, &[]) {
                Ok(v) => {
                    let busy = v.get("code").and_then(Json::as_str) == Some("E0801");
                    if busy && attempt < 200 {
                        attempt += 1;
                        out.busy_retries += 1;
                        std::thread::sleep(Duration::from_millis(attempt.min(20)));
                        continue;
                    }
                    break Ok(v);
                }
                Err(e) => break Err(e),
            }
        };
        out.latencies_us.push(t0.elapsed().as_micros() as u64);
        match response {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => out.ok += 1,
            Ok(v) => {
                out.failed += 1;
                eprintln!(
                    "loadgen: request {} ({}) failed: {}",
                    i,
                    shape.label,
                    v.render()
                );
            }
            Err(e) => {
                out.failed += 1;
                eprintln!(
                    "loadgen: request {} ({}) transport error: {e}",
                    i, shape.label
                );
            }
        }
    }
    counters.0.fetch_add(out.ok, Ordering::Relaxed);
    counters.1.fetch_add(out.failed, Ordering::Relaxed);
    counters.2.fetch_add(out.busy_retries, Ordering::Relaxed);
    out
}

fn quantile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((q * (sorted_us.len() - 1) as f64).round() as usize).min(sorted_us.len() - 1);
    sorted_us[idx] as f64 / 1000.0
}

fn main() {
    let mut requests = 2000usize;
    let mut clients = 16usize;
    let mut socket: Option<PathBuf> = None;
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(requests),
            "--clients" => clients = args.next().and_then(|v| v.parse().ok()).unwrap_or(clients),
            "--socket" => socket = args.next().map(PathBuf::from),
            "--smoke" => {
                smoke = true;
                requests = 200;
                clients = 8;
            }
            "--help" | "-h" => {
                eprintln!("usage: loadgen [--requests N] [--clients N] [--socket PATH] [--smoke]");
                std::process::exit(2);
            }
            other => {
                eprintln!("loadgen: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let clients = clients.max(1);

    // Self-host unless pointed at an external server. The hosted server
    // gets a private plan cache so measurements never touch (or benefit
    // from) ambient state.
    let scratch = std::env::temp_dir().join(format!("fsc-loadgen-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let mut hosted: Option<Server> = None;
    let socket_path = match &socket {
        Some(p) => p.clone(),
        None => {
            let path = scratch.join("serve.sock");
            let config = ServerConfig {
                queue_depth: 64,
                plan_cache: Some(scratch.join("plans.json")),
                ..ServerConfig::default()
            };
            let server = Server::start(&path, config).unwrap_or_else(|e| {
                eprintln!("loadgen: could not self-host server: {e}");
                std::process::exit(1);
            });
            hosted = Some(server);
            path
        }
    };

    let shapes = Arc::new(shapes());
    let counters = Arc::new((AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            // Interleave the global request index space across clients so
            // every client sees the full mix.
            let indices: Vec<usize> = (0..requests).skip(c).step_by(clients).collect();
            let (shapes, counters, socket_path) =
                (shapes.clone(), counters.clone(), socket_path.clone());
            std::thread::spawn(move || drive_client(&socket_path, indices, &shapes, &counters))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    for h in handles {
        if let Ok(outcome) = h.join() {
            latencies.extend(outcome.latencies_us);
        }
    }
    let wall = t0.elapsed();
    latencies.sort_unstable();

    let (ok, failed, busy_retries) = (
        counters.0.load(Ordering::Relaxed),
        counters.1.load(Ordering::Relaxed),
        counters.2.load(Ordering::Relaxed),
    );

    let stats = Client::connect(&socket_path)
        .ok()
        .and_then(|mut c| c.stats().ok());
    let stat = |key: &str| -> f64 {
        stats
            .as_ref()
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let unique_shapes = shapes.len() as f64;
    let compiles = stat("compiles");
    let reuse = stat("artifact_hits") + stat("dedup_waits");

    println!(
        "loadgen: {requests} requests, {clients} clients, {}",
        match &socket {
            Some(p) => format!("external server at {}", p.display()),
            None => "self-hosted server".to_string(),
        }
    );
    println!("  ok {ok}  failed {failed}  busy-retries {busy_retries}");
    println!(
        "  wall {:.2} s  throughput {:.1} req/s",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!(
        "  client latency p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.90),
        quantile(&latencies, 0.99),
        quantile(&latencies, 1.0),
    );
    println!(
        "  server: compiles {:.0} (request shapes {unique_shapes:.0}), dedup_waits {:.0}, artifact_hits {:.0}, reuse {:.1}%",
        compiles,
        stat("dedup_waits"),
        stat("artifact_hits"),
        stat("reuse_rate") * 100.0,
    );
    println!(
        "  server latency p50 {:.2} ms  p99 {:.2} ms  queue-wait p99 {:.2} ms  rejected {:.0}",
        stat("p50_ms"),
        stat("p99_ms"),
        stat("queue_wait_p99_ms"),
        stat("rejected"),
    );
    println!(
        "  plan cache: {:.0} hits / {:.0} misses",
        stat("plan_hits"),
        stat("plan_misses")
    );
    let singleflight_ok = stats.is_some() && compiles <= unique_shapes && compiles > 0.0;
    println!(
        "  singleflight: {}",
        if singleflight_ok {
            "OK (compiles <= distinct request shapes)"
        } else {
            "VIOLATED"
        }
    );

    if let Some(mut server) = hosted.take() {
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&scratch);

    if failed > 0 {
        eprintln!("loadgen: FAILED — {failed} requests did not complete ok");
        std::process::exit(1);
    }
    if smoke {
        if reuse <= 0.0 {
            eprintln!("loadgen: FAILED — no artifact reuse under a duplicate-heavy mix");
            std::process::exit(1);
        }
        if !singleflight_ok {
            eprintln!("loadgen: FAILED — singleflight violated (compiles {compiles} > shapes {unique_shapes})");
            std::process::exit(1);
        }
    }
}
