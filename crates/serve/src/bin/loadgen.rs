//! `loadgen` — drive a compile server with a mixed request storm and
//! report throughput, latency quantiles and cache effectiveness.
//!
//! ```text
//! loadgen [--requests N] [--clients N] [--socket PATH] [--smoke]
//!         [--chaos] [--mem] [--seed N]
//! ```
//!
//! Without `--socket` the generator self-hosts a server inside this
//! process (on a private socket with a private plan cache) so one command
//! produces a full closed-loop measurement. `--smoke` is the CI gate:
//! a small storm that must finish with **zero failed requests**, a
//! **non-zero artifact reuse rate**, and **singleflight holding**
//! (server-side compiles == distinct request shapes issued).
//!
//! Busy rejections (`E0801`) are part of the admission-control contract,
//! not failures: the generator retries them with linear backoff and
//! reports how often it had to.
//!
//! ## `--chaos`: the fault-injection soak
//!
//! Self-hosts a server with a seeded [`ChaosPlan`] armed (worker panics,
//! slow compiles past the request deadline, truncated response frames,
//! plan-cache corruption, artifact-cache purges) and drives it through
//! [`ResilientClient`]s. The soak asserts the failure-model contract of
//! DESIGN.md §11:
//!
//! 1. **every** request ends in a success after bounded retries — coded
//!    rejections (`E0801`/`E0803`/`E0804`) and transport breakage are
//!    recoverable by construction, and nothing is silently lost;
//! 2. every successful response's checksum is **bit-identical** to a
//!    direct in-process library run — chaos (purges, brownout rungs,
//!    crash-recompiles) may cost time, never answers;
//! 3. each chaos site actually **fired** (a fault test that injects
//!    nothing is vacuous);
//! 4. the scarred server **drains clean** (queue and in-flight reach
//!    zero), serves every shape bit-identically after `disarm()` + an
//!    artifact purge, and stops within its hard timeout.
//!
//! A fixed `--seed` pins each site's decision stream, so fault density is
//! reproducible run-to-run.
//!
//! ## `--mem`: the memory-governance soak
//!
//! Self-hosts a server with a hard `--mem-budget` and mixes over-budget
//! *giants* (a program whose attested estimate is more than double the
//! budget) into normal traffic. Asserts the DESIGN.md §12 contract:
//! every giant is answered **exactly once** with the coded `E0806`
//! rejection, every normal request completes bit-identically with its
//! attested `est_bytes` bounding its measured `peak_bytes`, the server's
//! reservation ledger drains back to zero, and no worker dies. CI runs
//! this under `ulimit -v`, so an accounting hole becomes a hard
//! allocator failure rather than a missed assertion.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fsc_core::{CompileOptions, Compiler};
use fsc_ir::json::Json;
use fsc_serve::{
    checksum_arrays, ChaosPlan, Client, ResilientClient, RetryPolicy, Server, ServerConfig,
};

/// One request shape in the mix.
#[derive(Clone)]
struct Shape {
    label: &'static str,
    source: String,
    target: &'static str,
    autotune: bool,
}

/// The mixed workload: distinct programs × targets, some autotuned —
/// deliberately heavy on duplicates so reuse and singleflight matter.
fn shapes() -> Vec<Shape> {
    let gs4 = fsc_workloads::gauss_seidel::fortran_source(4, 2);
    let gs6 = fsc_workloads::gauss_seidel::fortran_source(6, 2);
    let gs8 = fsc_workloads::gauss_seidel::fortran_source(8, 2);
    let pw6 = fsc_workloads::pw_advection::fortran_source(6);
    vec![
        Shape {
            label: "gs4/cpu",
            source: gs4.clone(),
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "gs6/cpu",
            source: gs6.clone(),
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "gs8/cpu",
            source: gs8.clone(),
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "pw6/cpu",
            source: pw6,
            target: "cpu",
            autotune: false,
        },
        Shape {
            label: "gs4/omp2",
            source: gs4,
            target: "omp:2",
            autotune: false,
        },
        Shape {
            label: "gs6/omp2",
            source: gs6,
            target: "omp:2",
            autotune: false,
        },
        Shape {
            label: "gs8/cpu+tune",
            source: gs8,
            target: "cpu",
            autotune: true,
        },
    ]
}

/// Ground truth per shape: direct in-process library runs, no server
/// involved. Both soaks compare server checksums against these.
fn reference_checksums(shapes: &[Shape]) -> Vec<u64> {
    shapes
        .iter()
        .map(|s| {
            let target = fsc_serve::parse_target(s.target).expect("loadgen target grammar");
            let exec = Compiler::run(&s.source, &CompileOptions::for_target(target))
                .expect("reference run must succeed");
            checksum_arrays(&exec, &["u".to_string()])
        })
        .collect()
}

struct Outcome {
    ok: u64,
    failed: u64,
    busy_retries: u64,
    latencies_us: Vec<u64>,
}

fn drive_client(
    socket: &std::path::Path,
    indices: Vec<usize>,
    shapes: &[Shape],
    counters: &(AtomicU64, AtomicU64, AtomicU64),
) -> Outcome {
    let mut client = match Client::connect(socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: connect failed: {e}");
            return Outcome {
                ok: 0,
                failed: indices.len() as u64,
                busy_retries: 0,
                latencies_us: vec![],
            };
        }
    };
    let mut out = Outcome {
        ok: 0,
        failed: 0,
        busy_retries: 0,
        latencies_us: Vec::with_capacity(indices.len()),
    };
    for i in indices {
        let shape = &shapes[i % shapes.len()];
        let t0 = Instant::now();
        let mut attempt = 0u64;
        let response = loop {
            match client.run(&shape.source, shape.target, shape.autotune, &[]) {
                Ok(v) => {
                    let busy = v.get("code").and_then(Json::as_str) == Some("E0801");
                    if busy && attempt < 200 {
                        attempt += 1;
                        out.busy_retries += 1;
                        std::thread::sleep(Duration::from_millis(attempt.min(20)));
                        continue;
                    }
                    break Ok(v);
                }
                Err(e) => break Err(e),
            }
        };
        out.latencies_us.push(t0.elapsed().as_micros() as u64);
        match response {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => out.ok += 1,
            Ok(v) => {
                out.failed += 1;
                eprintln!(
                    "loadgen: request {} ({}) failed: {}",
                    i,
                    shape.label,
                    v.render()
                );
            }
            Err(e) => {
                out.failed += 1;
                eprintln!(
                    "loadgen: request {} ({}) transport error: {e}",
                    i, shape.label
                );
            }
        }
    }
    counters.0.fetch_add(out.ok, Ordering::Relaxed);
    counters.1.fetch_add(out.failed, Ordering::Relaxed);
    counters.2.fetch_add(out.busy_retries, Ordering::Relaxed);
    out
}

fn quantile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((q * (sorted_us.len() - 1) as f64).round() as usize).min(sorted_us.len() - 1);
    sorted_us[idx] as f64 / 1000.0
}

/// Per-request budget in the chaos soak: below the injected 600 ms slow
/// compile, so every slow-compile draw trips the watchdog, but generous
/// against the honest few-ms compiles of the mix.
const CHAOS_DEADLINE_MS: u64 = 400;

struct ChaosCounts {
    ok: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    mismatches: AtomicU64,
    e0702_warnings: AtomicU64,
}

fn drive_chaos_client(
    socket: &Path,
    indices: Vec<usize>,
    shapes: &[Shape],
    reference: &[u64],
    seed: u64,
    counts: &ChaosCounts,
) {
    let mut client = ResilientClient::new(
        socket,
        RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            seed,
        },
    );
    for i in indices {
        let slot = i % shapes.len();
        let shape = &shapes[slot];
        match client.run(
            &shape.source,
            shape.target,
            shape.autotune,
            &["u"],
            Some(CHAOS_DEADLINE_MS),
        ) {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                let checksum = v.get("checksum").and_then(Json::as_str).unwrap_or("");
                if checksum != format!("{:016x}", reference[slot]) {
                    counts.mismatches.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "chaos: request {i} ({}) checksum {checksum} != reference {:016x}",
                        shape.label, reference[slot]
                    );
                } else {
                    counts.ok.fetch_add(1, Ordering::Relaxed);
                }
                let degraded_cache = v
                    .get("warnings")
                    .and_then(Json::as_array)
                    .map(|w| w.iter().filter_map(Json::as_str).any(|c| c == "E0702"))
                    .unwrap_or(false);
                if degraded_cache {
                    counts.e0702_warnings.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(v) => {
                counts.failed.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "chaos: request {i} ({}) definitive failure: {}",
                    shape.label,
                    v.render()
                );
            }
            Err(e) => {
                counts.failed.fetch_add(1, Ordering::Relaxed);
                eprintln!("chaos: request {i} ({}) gave up: {e}", shape.label);
            }
        }
    }
    counts
        .retries
        .fetch_add(client.retries(), Ordering::Relaxed);
    counts
        .reconnects
        .fetch_add(client.reconnects(), Ordering::Relaxed);
}

/// The chaos soak. Returns the process exit code.
fn chaos_soak(requests: usize, clients: usize, seed: u64) -> i32 {
    // Injected worker panics are the point of the exercise; keep their
    // backtraces out of the report. Real panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("chaos: injected"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let scratch = std::env::temp_dir().join(format!("fsc-chaos-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let socket_path = scratch.join("serve.sock");
    let shapes = Arc::new(shapes());
    let reference = Arc::new(reference_checksums(&shapes));

    let config = ServerConfig {
        queue_depth: 16,
        default_deadline: Duration::from_secs(2),
        plan_cache: Some(scratch.join("plans.json")),
        chaos: Some(ChaosPlan::soak(seed)),
        ..ServerConfig::default()
    };
    let mut server = Server::start(&socket_path, config).unwrap_or_else(|e| {
        eprintln!("chaos: could not self-host server: {e}");
        std::process::exit(1);
    });

    println!("chaos: seed {seed}, {requests} requests, {clients} clients, deadline {CHAOS_DEADLINE_MS} ms");
    let counts = Arc::new(ChaosCounts {
        ok: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        reconnects: AtomicU64::new(0),
        mismatches: AtomicU64::new(0),
        e0702_warnings: AtomicU64::new(0),
    });
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let indices: Vec<usize> = (0..requests).skip(c).step_by(clients).collect();
            let (shapes, reference, counts, socket_path) = (
                shapes.clone(),
                reference.clone(),
                counts.clone(),
                socket_path.clone(),
            );
            let client_seed = seed ^ (c as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            std::thread::spawn(move || {
                drive_chaos_client(
                    &socket_path,
                    indices,
                    &shapes,
                    &reference,
                    client_seed,
                    &counts,
                )
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let storm_wall = t0.elapsed();

    let (ok, failed, mismatches) = (
        counts.ok.load(Ordering::Relaxed),
        counts.failed.load(Ordering::Relaxed),
        counts.mismatches.load(Ordering::Relaxed),
    );
    println!(
        "chaos: storm done in {:.2} s — ok {ok}  failed {failed}  mismatches {mismatches}  \
         retries {}  reconnects {}  E0702-degraded {}",
        storm_wall.as_secs_f64(),
        counts.retries.load(Ordering::Relaxed),
        counts.reconnects.load(Ordering::Relaxed),
        counts.e0702_warnings.load(Ordering::Relaxed),
    );

    // Clean drain: queue and in-flight slots must reach zero.
    let mut drained = false;
    let drain_t0 = Instant::now();
    while drain_t0.elapsed() < Duration::from_secs(15) {
        let stats = Client::connect(&socket_path)
            .ok()
            .and_then(|mut c| c.stats().ok());
        if let Some(s) = stats {
            let depth = s.get("queue_depth").and_then(Json::as_f64).unwrap_or(-1.0);
            let inflight = s.get("inflight").and_then(Json::as_f64).unwrap_or(-1.0);
            if depth == 0.0 && inflight == 0.0 {
                drained = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Disarm, scar-check: purge artifacts so every shape recompiles on
    // the surviving (corrupted-then-degraded) caches, and demand
    // bit-identity against the library ground truth.
    let injected = server.chaos().expect("chaos armed").stats();
    server.chaos().expect("chaos armed").disarm();
    server.service().purge_artifacts();
    let mut post_ok = true;
    match Client::connect(&socket_path) {
        Ok(mut c) => {
            for (slot, shape) in shapes.iter().enumerate() {
                match c.run(&shape.source, shape.target, shape.autotune, &["u"]) {
                    Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                        let checksum = v.get("checksum").and_then(Json::as_str).unwrap_or("");
                        if checksum != format!("{:016x}", reference[slot]) {
                            eprintln!(
                                "chaos: post-chaos {} checksum {checksum} != {:016x}",
                                shape.label, reference[slot]
                            );
                            post_ok = false;
                        }
                    }
                    other => {
                        eprintln!("chaos: post-chaos {} failed: {other:?}", shape.label);
                        post_ok = false;
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("chaos: post-chaos connect failed: {e}");
            post_ok = false;
        }
    }

    let stats = Client::connect(&socket_path)
        .ok()
        .and_then(|mut c| c.stats().ok());
    let stat = |key: &str| -> f64 {
        stats
            .as_ref()
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "chaos: injected — panics {}  slow {}  truncations {}  cache-corruptions {}  purges {}  \
         mem-pressures {}",
        injected.panics,
        injected.slow_compiles,
        injected.truncations,
        injected.cache_corruptions,
        injected.artifact_purges,
        injected.mem_pressures,
    );
    println!(
        "chaos: server — crashes {:.0}  deadline-kills {:.0}  late-completions {:.0}  \
         session-timeouts {:.0}  abandoned-slots {:.0}  stale-publishes {:.0}  rejected {:.0}",
        stat("worker_crashes"),
        stat("deadline_kills"),
        stat("late_completions"),
        stat("deadline_timeouts"),
        stat("abandoned_slots"),
        stat("stale_publishes"),
        stat("rejected"),
    );
    println!(
        "chaos: brownout — no-autotune {:.0}  reduced-rung {:.0}",
        stat("brownout_no_autotune"),
        stat("brownout_reduced_rung"),
    );

    let stop_t0 = Instant::now();
    server.stop();
    let stop_wall = stop_t0.elapsed();
    println!("chaos: stop() joined in {:.2} s", stop_wall.as_secs_f64());
    let _ = std::fs::remove_dir_all(&scratch);

    let mut verdict = 0;
    let mut fail = |msg: &str| {
        eprintln!("chaos: FAILED — {msg}");
        verdict = 1;
    };
    if failed > 0 {
        fail(&format!("{failed} requests never reached a success"));
    }
    if mismatches > 0 {
        fail(&format!("{mismatches} checksum mismatches under chaos"));
    }
    if ok + failed + mismatches != requests as u64 {
        fail("response accounting does not add up to the request count");
    }
    if !drained {
        fail("queue/in-flight did not drain to zero after the storm");
    }
    if !post_ok {
        fail("post-chaos verification was not bit-identical");
    }
    for (name, count) in [
        ("worker-panic", injected.panics),
        ("slow-compile", injected.slow_compiles),
        ("frame-truncation", injected.truncations),
        ("cache-corruption", injected.cache_corruptions),
        ("artifact-purge", injected.artifact_purges),
        ("mem-pressure", injected.mem_pressures),
    ] {
        if count == 0 {
            fail(&format!("chaos site '{name}' never fired — vacuous soak"));
        }
    }
    if stop_wall > Duration::from_secs(30) {
        fail("stop() exceeded its hard bound");
    }
    if verdict == 0 {
        println!(
            "chaos: OK — {requests} requests, every one answered exactly once with a \
             bit-identical result, clean drain, bounded stop"
        );
    }
    verdict
}

/// Server budget for the memory soak: small enough that the giant shape
/// can never fit, large enough that the whole normal mix runs untouched.
const MEM_SOAK_BUDGET: u64 = 256 << 20;

/// Per-request budget for giants: long enough to observe the bounded
/// park, short enough that rejected giants do not dominate wall-clock.
const MEM_GIANT_DEADLINE_MS: u64 = 400;

/// Every tenth-ish request is a giant (request index mod 10 == 3).
fn is_giant(i: usize) -> bool {
    i % 10 == 3
}

struct MemCounts {
    ok: AtomicU64,
    failed: AtomicU64,
    mismatches: AtomicU64,
    peak_violations: AtomicU64,
    giant_rejected: AtomicU64,
    giant_bad: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
}

#[allow(clippy::too_many_arguments)]
fn drive_mem_client(
    socket: &Path,
    indices: Vec<usize>,
    shapes: &[Shape],
    reference: &[u64],
    giant_source: &str,
    seed: u64,
    counts: &MemCounts,
) {
    let mut client = ResilientClient::new(
        socket,
        RetryPolicy {
            max_attempts: 12,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            seed,
        },
    );
    for i in indices {
        if is_giant(i) {
            // A giant must be answered exactly once with the coded
            // memory rejection — never served, never silently dropped.
            match client.run(giant_source, "cpu", false, &[], Some(MEM_GIANT_DEADLINE_MS)) {
                Ok(v) => {
                    let ok = v.get("ok").and_then(Json::as_bool) == Some(true);
                    let code = v.get("code").and_then(Json::as_str);
                    if !ok && code == Some("E0806") {
                        counts.giant_rejected.fetch_add(1, Ordering::Relaxed);
                    } else {
                        counts.giant_bad.fetch_add(1, Ordering::Relaxed);
                        eprintln!("mem: giant {i} answered wrongly: {}", v.render());
                    }
                }
                Err(e) => {
                    counts.giant_bad.fetch_add(1, Ordering::Relaxed);
                    eprintln!("mem: giant {i} gave up: {e}");
                }
            }
            continue;
        }
        let slot = i % shapes.len();
        let shape = &shapes[slot];
        match client.run(&shape.source, shape.target, shape.autotune, &["u"], None) {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                let checksum = v.get("checksum").and_then(Json::as_str).unwrap_or("");
                if checksum != format!("{:016x}", reference[slot]) {
                    counts.mismatches.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "mem: request {i} ({}) checksum {checksum} != reference {:016x}",
                        shape.label, reference[slot]
                    );
                } else {
                    counts.ok.fetch_add(1, Ordering::Relaxed);
                }
                // The attestation contract: the static estimate bounds
                // the measured high-water mark for every admitted run.
                let est = v.get("est_bytes").and_then(Json::as_f64);
                let peak = v.get("peak_bytes").and_then(Json::as_f64);
                match (est, peak) {
                    (Some(e), Some(p)) if p <= e && e > 0.0 => {}
                    _ => {
                        counts.peak_violations.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "mem: request {i} ({}) attestation violated: est {est:?} peak {peak:?}",
                            shape.label
                        );
                    }
                }
            }
            Ok(v) => {
                counts.failed.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "mem: request {i} ({}) definitive failure: {}",
                    shape.label,
                    v.render()
                );
            }
            Err(e) => {
                counts.failed.fetch_add(1, Ordering::Relaxed);
                eprintln!("mem: request {i} ({}) gave up: {e}", shape.label);
            }
        }
    }
    counts
        .retries
        .fetch_add(client.retries(), Ordering::Relaxed);
    counts
        .reconnects
        .fetch_add(client.reconnects(), Ordering::Relaxed);
}

/// The memory-governance soak. Self-hosts a server under a hard
/// `--mem-budget` and mixes over-budget giants into normal traffic,
/// asserting the §12 contract: every giant gets exactly one coded
/// `E0806`, every normal request completes bit-identically with its
/// attested estimate bounding its measured peak, the reservation ledger
/// drains to zero, and no worker dies. Run under `ulimit -v` in CI so an
/// accounting hole would surface as a real allocator failure, not just a
/// failed assertion. Returns the process exit code.
fn mem_soak(requests: usize, clients: usize, seed: u64) -> i32 {
    let scratch = std::env::temp_dir().join(format!("fsc-memsoak-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let socket_path = scratch.join("serve.sock");
    let shapes = Arc::new(shapes());
    let reference = Arc::new(reference_checksums(&shapes));
    // The giant: two (n+2)³ double-precision arrays ≈ 534 MB estimated,
    // more than double the 256 MiB server budget, so no squeeze rung can
    // make it fit and admission must answer E0806.
    let giant_source = Arc::new(fsc_workloads::gauss_seidel::fortran_source(320, 1));

    let config = ServerConfig {
        queue_depth: 32,
        default_deadline: Duration::from_secs(5),
        plan_cache: Some(scratch.join("plans.json")),
        mem_budget: Some(MEM_SOAK_BUDGET),
        ..ServerConfig::default()
    };
    let mut server = Server::start(&socket_path, config).unwrap_or_else(|e| {
        eprintln!("mem: could not self-host server: {e}");
        std::process::exit(1);
    });

    let giants_issued = (0..requests).filter(|&i| is_giant(i)).count() as u64;
    let normals_issued = requests as u64 - giants_issued;
    println!(
        "mem: seed {seed}, {requests} requests ({giants_issued} giants), {clients} clients, \
         budget {} MiB",
        MEM_SOAK_BUDGET >> 20
    );
    let counts = Arc::new(MemCounts {
        ok: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        mismatches: AtomicU64::new(0),
        peak_violations: AtomicU64::new(0),
        giant_rejected: AtomicU64::new(0),
        giant_bad: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        reconnects: AtomicU64::new(0),
    });
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let indices: Vec<usize> = (0..requests).skip(c).step_by(clients).collect();
            let (shapes, reference, giant_source, counts, socket_path) = (
                shapes.clone(),
                reference.clone(),
                giant_source.clone(),
                counts.clone(),
                socket_path.clone(),
            );
            let client_seed = seed ^ (c as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            std::thread::spawn(move || {
                drive_mem_client(
                    &socket_path,
                    indices,
                    &shapes,
                    &reference,
                    &giant_source,
                    client_seed,
                    &counts,
                )
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let storm_wall = t0.elapsed();

    let (ok, failed, mismatches, peak_violations, giant_rejected, giant_bad) = (
        counts.ok.load(Ordering::Relaxed),
        counts.failed.load(Ordering::Relaxed),
        counts.mismatches.load(Ordering::Relaxed),
        counts.peak_violations.load(Ordering::Relaxed),
        counts.giant_rejected.load(Ordering::Relaxed),
        counts.giant_bad.load(Ordering::Relaxed),
    );
    println!(
        "mem: storm done in {:.2} s — ok {ok}  failed {failed}  mismatches {mismatches}  \
         peak-violations {peak_violations}  giants rejected {giant_rejected} / bad {giant_bad}  \
         retries {}  reconnects {}",
        storm_wall.as_secs_f64(),
        counts.retries.load(Ordering::Relaxed),
        counts.reconnects.load(Ordering::Relaxed),
    );

    // Clean drain: queue, in-flight, and the reservation ledger must all
    // reach zero — a leaked reservation would show up here forever.
    let mut drained = false;
    let mut ledger_drained = false;
    let drain_t0 = Instant::now();
    while drain_t0.elapsed() < Duration::from_secs(15) {
        let stats = Client::connect(&socket_path)
            .ok()
            .and_then(|mut c| c.stats().ok());
        if let Some(s) = stats {
            let depth = s.get("queue_depth").and_then(Json::as_f64).unwrap_or(-1.0);
            let inflight = s.get("inflight").and_then(Json::as_f64).unwrap_or(-1.0);
            let reserved = s
                .get("mem_reserved_bytes")
                .and_then(Json::as_f64)
                .unwrap_or(-1.0);
            if depth == 0.0 && inflight == 0.0 {
                drained = true;
                ledger_drained = reserved == 0.0;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Post-storm: every normal shape must still serve bit-identically.
    let mut post_ok = true;
    match Client::connect(&socket_path) {
        Ok(mut c) => {
            for (slot, shape) in shapes.iter().enumerate() {
                match c.run(&shape.source, shape.target, shape.autotune, &["u"]) {
                    Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                        let checksum = v.get("checksum").and_then(Json::as_str).unwrap_or("");
                        if checksum != format!("{:016x}", reference[slot]) {
                            eprintln!(
                                "mem: post-soak {} checksum {checksum} != {:016x}",
                                shape.label, reference[slot]
                            );
                            post_ok = false;
                        }
                    }
                    other => {
                        eprintln!("mem: post-soak {} failed: {other:?}", shape.label);
                        post_ok = false;
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("mem: post-soak connect failed: {e}");
            post_ok = false;
        }
    }

    let stats = Client::connect(&socket_path)
        .ok()
        .and_then(|mut c| c.stats().ok());
    let stat = |key: &str| -> f64 {
        stats
            .as_ref()
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "mem: server — rejected(E0806) {:.0}  parked {:.0}  squeezes {:.0}  \
         ledger peak {:.1} MiB  crashes {:.0}  deadline-kills {:.0}",
        stat("mem_rejected"),
        stat("mem_parked"),
        stat("mem_squeezes"),
        stat("mem_peak_bytes") / (1024.0 * 1024.0),
        stat("worker_crashes"),
        stat("deadline_kills"),
    );

    let stop_t0 = Instant::now();
    server.stop();
    let stop_wall = stop_t0.elapsed();
    println!("mem: stop() joined in {:.2} s", stop_wall.as_secs_f64());
    let _ = std::fs::remove_dir_all(&scratch);

    let mut verdict = 0;
    let mut fail = |msg: &str| {
        eprintln!("mem: FAILED — {msg}");
        verdict = 1;
    };
    if failed > 0 {
        fail(&format!("{failed} normal requests never reached a success"));
    }
    if mismatches > 0 {
        fail(&format!(
            "{mismatches} checksum mismatches under memory pressure"
        ));
    }
    if peak_violations > 0 {
        fail(&format!(
            "{peak_violations} admitted runs exceeded (or lacked) their attested estimate"
        ));
    }
    if giant_bad > 0 {
        fail(&format!(
            "{giant_bad} giants were not answered with the coded E0806 rejection"
        ));
    }
    if ok + failed + mismatches != normals_issued {
        fail("normal-request accounting does not add up");
    }
    if giant_rejected + giant_bad != giants_issued {
        fail("giant-request accounting does not add up");
    }
    if giants_issued > 0 && stat("mem_rejected") == 0.0 {
        fail("server never rejected on memory — vacuous soak");
    }
    if giants_issued > 0 && stat("mem_parked") == 0.0 {
        fail("no request ever parked for memory — vacuous soak");
    }
    if stat("worker_crashes") > 0.0 {
        fail("a worker died under memory pressure");
    }
    if !drained {
        fail("queue/in-flight did not drain to zero after the storm");
    }
    if !ledger_drained {
        fail("the memory ledger did not drain to zero after the storm");
    }
    if !post_ok {
        fail("post-soak verification was not bit-identical");
    }
    if stop_wall > Duration::from_secs(30) {
        fail("stop() exceeded its hard bound");
    }
    if verdict == 0 {
        println!(
            "mem: OK — {requests} requests under a {} MiB budget: every giant coded E0806, \
             every admitted run bit-identical within its attested estimate, ledger drained",
            MEM_SOAK_BUDGET >> 20
        );
    }
    verdict
}

fn main() {
    let mut requests: Option<usize> = None;
    let mut clients = 16usize;
    let mut socket: Option<PathBuf> = None;
    let mut smoke = false;
    let mut chaos = false;
    let mut mem = false;
    let mut seed = 0x5eed_cafe_u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => requests = args.next().and_then(|v| v.parse().ok()).or(requests),
            "--clients" => clients = args.next().and_then(|v| v.parse().ok()).unwrap_or(clients),
            "--socket" => socket = args.next().map(PathBuf::from),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--chaos" => chaos = true,
            "--mem" => mem = true,
            "--smoke" => {
                smoke = true;
                clients = 8;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--requests N] [--clients N] [--socket PATH] [--smoke] \
                     [--chaos] [--mem] [--seed N]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("loadgen: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let clients = clients.max(1);

    if chaos {
        // The soak minimum (500) is part of the acceptance contract: the
        // fault probabilities are a few percent, so a short storm risks a
        // vacuous site.
        let requests = requests.unwrap_or(if smoke { 500 } else { 1000 }).max(500);
        std::process::exit(chaos_soak(requests, clients, seed));
    }
    if mem {
        // Same ≥500 floor: with one giant per ten requests, a short storm
        // would under-sample the reject/park/squeeze admission paths.
        let requests = requests.unwrap_or(if smoke { 500 } else { 1000 }).max(500);
        std::process::exit(mem_soak(requests, clients, seed));
    }
    let requests = requests.unwrap_or(if smoke { 200 } else { 2000 });

    // Self-host unless pointed at an external server. The hosted server
    // gets a private plan cache so measurements never touch (or benefit
    // from) ambient state.
    let scratch = std::env::temp_dir().join(format!("fsc-loadgen-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let mut hosted: Option<Server> = None;
    let socket_path = match &socket {
        Some(p) => p.clone(),
        None => {
            let path = scratch.join("serve.sock");
            let config = ServerConfig {
                queue_depth: 64,
                plan_cache: Some(scratch.join("plans.json")),
                ..ServerConfig::default()
            };
            let server = Server::start(&path, config).unwrap_or_else(|e| {
                eprintln!("loadgen: could not self-host server: {e}");
                std::process::exit(1);
            });
            hosted = Some(server);
            path
        }
    };

    let shapes = Arc::new(shapes());
    let counters = Arc::new((AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            // Interleave the global request index space across clients so
            // every client sees the full mix.
            let indices: Vec<usize> = (0..requests).skip(c).step_by(clients).collect();
            let (shapes, counters, socket_path) =
                (shapes.clone(), counters.clone(), socket_path.clone());
            std::thread::spawn(move || drive_client(&socket_path, indices, &shapes, &counters))
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    for h in handles {
        if let Ok(outcome) = h.join() {
            latencies.extend(outcome.latencies_us);
        }
    }
    let wall = t0.elapsed();
    latencies.sort_unstable();

    let (ok, failed, busy_retries) = (
        counters.0.load(Ordering::Relaxed),
        counters.1.load(Ordering::Relaxed),
        counters.2.load(Ordering::Relaxed),
    );

    let stats = Client::connect(&socket_path)
        .ok()
        .and_then(|mut c| c.stats().ok());
    let stat = |key: &str| -> f64 {
        stats
            .as_ref()
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let unique_shapes = shapes.len() as f64;
    let compiles = stat("compiles");
    let reuse = stat("artifact_hits") + stat("dedup_waits");

    println!(
        "loadgen: {requests} requests, {clients} clients, {}",
        match &socket {
            Some(p) => format!("external server at {}", p.display()),
            None => "self-hosted server".to_string(),
        }
    );
    println!("  ok {ok}  failed {failed}  busy-retries {busy_retries}");
    println!(
        "  wall {:.2} s  throughput {:.1} req/s",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!(
        "  client latency p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.90),
        quantile(&latencies, 0.99),
        quantile(&latencies, 1.0),
    );
    println!(
        "  server: compiles {:.0} (request shapes {unique_shapes:.0}), dedup_waits {:.0}, artifact_hits {:.0}, reuse {:.1}%",
        compiles,
        stat("dedup_waits"),
        stat("artifact_hits"),
        stat("reuse_rate") * 100.0,
    );
    println!(
        "  server latency p50 {:.2} ms  p99 {:.2} ms  queue-wait p99 {:.2} ms  rejected {:.0}",
        stat("p50_ms"),
        stat("p99_ms"),
        stat("queue_wait_p99_ms"),
        stat("rejected"),
    );
    println!(
        "  plan cache: {:.0} hits / {:.0} misses",
        stat("plan_hits"),
        stat("plan_misses")
    );
    let singleflight_ok = stats.is_some() && compiles <= unique_shapes && compiles > 0.0;
    println!(
        "  singleflight: {}",
        if singleflight_ok {
            "OK (compiles <= distinct request shapes)"
        } else {
            "VIOLATED"
        }
    );

    if let Some(mut server) = hosted.take() {
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&scratch);

    if failed > 0 {
        eprintln!("loadgen: FAILED — {failed} requests did not complete ok");
        std::process::exit(1);
    }
    if smoke {
        if reuse <= 0.0 {
            eprintln!("loadgen: FAILED — no artifact reuse under a duplicate-heavy mix");
            std::process::exit(1);
        }
        if !singleflight_ok {
            eprintln!("loadgen: FAILED — singleflight violated (compiles {compiles} > shapes {unique_shapes})");
            std::process::exit(1);
        }
    }
}
