//! `fsc-serve` — the persistent compile daemon.
//!
//! ```text
//! fsc-serve --socket /tmp/fsc.sock [--workers N] [--queue N] [--plan-cache FILE]
//!           [--deadline-ms N] [--brownout L1,L2] [--mem-budget BYTES[K|M|G]]
//! ```
//!
//! This binary is the *only* place on the server side that consults the
//! `FSC_PLAN_CACHE` environment variable (when `--plan-cache` is absent);
//! everything below `main` takes explicit paths, so library behaviour
//! never depends on ambient process state.

use std::path::PathBuf;
use std::time::Duration;

use fsc_serve::{Server, ServerConfig};

/// Parse a byte count with an optional K/M/G suffix (powers of 1024).
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 10),
        'm' | 'M' => (&s[..s.len() - 1], 20),
        'g' | 'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(1u64 << shift))
        .filter(|&b| b > 0)
}

fn usage() -> ! {
    eprintln!(
        "usage: fsc-serve [--socket PATH] [--workers N] [--queue N] [--plan-cache FILE]\n\
         \x20                [--deadline-ms N] [--brownout L1,L2] [--mem-budget BYTES[K|M|G]]\n\
         \n\
         Starts the compile server on a Unix socket (default: fsc-serve.sock\n\
         in the system temp directory) and serves line-delimited JSON\n\
         requests until a client sends {{\"op\":\"shutdown\"}}.\n\
         \n\
         --deadline-ms  default compile/run budget for requests without\n\
         \x20              their own deadline_ms (E0803 on overrun)\n\
         --brownout     queue-occupancy fractions (e.g. 0.5,0.8) at which\n\
         \x20              degradation levels 1 (no autotune) and 2 (reduced\n\
         \x20              rung) engage\n\
         --mem-budget   server-wide run-memory budget (e.g. 256M); every\n\
         \x20              run request reserves its attested estimate or is\n\
         \x20              answered E0806 after squeeze + bounded park"
    );
    std::process::exit(2);
}

fn main() {
    let mut socket: Option<PathBuf> = None;
    let mut config = ServerConfig::default();
    let mut plan_cache_flag: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_depth = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--plan-cache" => plan_cache_flag = Some(PathBuf::from(value("--plan-cache"))),
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms").parse().unwrap_or_else(|_| usage());
                config.default_deadline = Duration::from_millis(ms.max(1));
            }
            "--mem-budget" => {
                let spec = value("--mem-budget");
                config.mem_budget = Some(parse_bytes(&spec).unwrap_or_else(|| {
                    eprintln!("error: bad --mem-budget '{spec}' (expected BYTES[K|M|G])");
                    usage()
                }));
            }
            "--brownout" => {
                let spec = value("--brownout");
                let mut parts = spec.split(',').map(str::parse::<f64>);
                match (parts.next(), parts.next()) {
                    (Some(Ok(l1)), Some(Ok(l2))) if l1 <= l2 => {
                        config.brownout_l1 = l1;
                        config.brownout_l2 = l2;
                    }
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument '{other}'");
                usage();
            }
        }
    }

    // The env → config boundary: flag beats env beats the library default.
    config.plan_cache = plan_cache_flag.or_else(fsc_exec::env_cache_path);
    let socket = socket.unwrap_or_else(|| std::env::temp_dir().join("fsc-serve.sock"));

    let mut server = match Server::start(&socket, config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", socket.display());
            std::process::exit(1);
        }
    };
    println!(
        "fsc-serve listening on {} ({} workers, queue depth {})",
        server.socket_path().display(),
        config.workers,
        config.queue_depth
    );

    while server.running() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.stop();
    println!("fsc-serve: drained and stopped");
}
