//! A small blocking client for the compile-server protocol.
//!
//! Strictly sequential: each call writes one request line and blocks for
//! the matching response line (ids are still checked, so a protocol
//! violation surfaces as an error rather than silent misattribution).
//! The loadgen and the CLI both drive the server through this type; tests
//! use it as the reference protocol implementation.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use fsc_ir::json::{Json, ObjBuilder};

/// A connected, synchronous protocol client.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: i64,
}

impl Client {
    /// Connect to a server socket.
    pub fn connect(socket_path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket_path)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Send a pre-built request body (the client assigns and checks the
    /// id) and return the parsed response.
    pub fn call(&mut self, body: ObjBuilder) -> Result<Json, String> {
        let id = self.next_id;
        self.next_id += 1;
        let line = body.num("id", id as f64).build().render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        let v = Json::parse(response.trim())?;
        match v.get("id").and_then(Json::as_i64) {
            Some(got) if got == id => Ok(v),
            got => Err(format!("response id {got:?} does not match request {id}")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Json, String> {
        self.call(ObjBuilder::new().str("op", "ping"))
    }

    /// Metrics snapshot (`stats` object of the response).
    pub fn stats(&mut self) -> Result<Json, String> {
        let v = self.call(ObjBuilder::new().str("op", "stats"))?;
        v.get("stats").cloned().ok_or("missing stats".into())
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.call(ObjBuilder::new().str("op", "shutdown"))
    }

    /// Compile only.
    pub fn compile(&mut self, source: &str, target: &str, autotune: bool) -> Result<Json, String> {
        self.call(
            ObjBuilder::new()
                .str("op", "compile")
                .str("source", source)
                .str("target", target)
                .bool("autotune", autotune),
        )
    }

    /// Compile and run, returning the named arrays' final contents.
    pub fn run(
        &mut self,
        source: &str,
        target: &str,
        autotune: bool,
        arrays: &[&str],
    ) -> Result<Json, String> {
        self.call(
            ObjBuilder::new()
                .str("op", "run")
                .str("source", source)
                .str("target", target)
                .bool("autotune", autotune)
                .set(
                    "arrays",
                    Json::Arr(arrays.iter().map(|a| Json::Str(a.to_string())).collect()),
                ),
        )
    }
}
