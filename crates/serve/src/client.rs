//! Blocking clients for the compile-server protocol.
//!
//! [`Client`] is the minimal, strictly sequential transport: each call
//! writes one request line and blocks for the matching response line (ids
//! are still checked, so a protocol violation surfaces as an error rather
//! than silent misattribution). Tests use it as the reference protocol
//! implementation.
//!
//! [`ResilientClient`] wraps it with the retry discipline a chaotic
//! server demands: reconnect on transport errors (closed sockets,
//! truncated frames, id mismatches) and bounded exponential backoff with
//! seeded jitter on the retryable coded rejections (`E0801` busy, `E0803`
//! deadline, `E0804` worker crash).
//!
//! ## Why blind retry is safe (idempotency)
//!
//! A compile/run request is a *pure function* of `(source, options)`: the
//! server's only side effects are caches keyed by the request fingerprint
//! (artifact cache, plan cache), and writing the same key twice converges
//! to the same state. The retryable error codes additionally attest that
//! the server already cleaned up: `E0803` means the singleflight slot was
//! reclaimed, `E0804` means the dead worker was respawned. A retry
//! therefore re-contends from a clean slate — at worst it costs a
//! duplicate compile that the singleflight layer collapses anyway. There
//! is no request in the protocol whose double-delivery changes observable
//! results (even `shutdown` is idempotent), which is what makes
//! fingerprint-keyed blind retry correct rather than merely convenient.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use fsc_ir::json::{Json, ObjBuilder};

/// A connected, synchronous protocol client.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    next_id: i64,
}

impl Client {
    /// Connect to a server socket.
    pub fn connect(socket_path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket_path)?;
        // Anti-hang backstop, far beyond any server deadline: the server
        // answers every admitted request within its budget (+ grace), so
        // this only ever fires if the response was truly lost — which
        // must surface as an error, never a wedged client.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Send a pre-built request body (the client assigns and checks the
    /// id) and return the parsed response.
    pub fn call(&mut self, body: ObjBuilder) -> Result<Json, String> {
        let id = self.next_id;
        self.next_id += 1;
        let line = body.num("id", id as f64).build().render();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        let v = Json::parse(response.trim())?;
        match v.get("id").and_then(Json::as_i64) {
            Some(got) if got == id => Ok(v),
            got => Err(format!("response id {got:?} does not match request {id}")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Json, String> {
        self.call(ObjBuilder::new().str("op", "ping"))
    }

    /// Metrics snapshot (`stats` object of the response).
    pub fn stats(&mut self) -> Result<Json, String> {
        let v = self.call(ObjBuilder::new().str("op", "stats"))?;
        v.get("stats").cloned().ok_or("missing stats".into())
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.call(ObjBuilder::new().str("op", "shutdown"))
    }

    /// Compile only.
    pub fn compile(&mut self, source: &str, target: &str, autotune: bool) -> Result<Json, String> {
        self.call(compile_body(source, target, autotune, None))
    }

    /// Compile and run, returning the named arrays' final contents.
    pub fn run(
        &mut self,
        source: &str,
        target: &str,
        autotune: bool,
        arrays: &[&str],
    ) -> Result<Json, String> {
        self.call(run_body(source, target, autotune, arrays, None))
    }
}

fn compile_body(
    source: &str,
    target: &str,
    autotune: bool,
    deadline_ms: Option<u64>,
) -> ObjBuilder {
    let mut b = ObjBuilder::new()
        .str("op", "compile")
        .str("source", source)
        .str("target", target)
        .bool("autotune", autotune);
    if let Some(ms) = deadline_ms {
        b = b.num("deadline_ms", ms as f64);
    }
    b
}

fn run_body(
    source: &str,
    target: &str,
    autotune: bool,
    arrays: &[&str],
    deadline_ms: Option<u64>,
) -> ObjBuilder {
    let mut b = ObjBuilder::new()
        .str("op", "run")
        .str("source", source)
        .str("target", target)
        .bool("autotune", autotune)
        .set(
            "arrays",
            Json::Arr(arrays.iter().map(|a| Json::Str(a.to_string())).collect()),
        );
    if let Some(ms) = deadline_ms {
        b = b.num("deadline_ms", ms as f64);
    }
    b
}

/// How hard a [`ResilientClient`] tries before giving up.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Cap on a single backoff (before jitter).
    pub max_backoff: Duration,
    /// Jitter seed: the same seed sleeps the same schedule, keeping soak
    /// runs reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(400),
            seed: 0x5eed,
        }
    }
}

/// The retryable coded rejections: busy (shed), deadline (slot already
/// reclaimed), worker crash (worker already respawned). Everything else
/// coded is a *definitive* answer (e.g. a semantic compile error) and is
/// returned to the caller as-is.
fn retryable_code(code: Option<&str>) -> bool {
    matches!(code, Some("E0801" | "E0803" | "E0804"))
}

/// A client that survives a chaotic server: transport failures reconnect,
/// retryable coded rejections back off (exponential, jittered, bounded)
/// and resend. See the module docs for why blind resend is idempotent.
pub struct ResilientClient {
    socket_path: PathBuf,
    policy: RetryPolicy,
    conn: Option<Client>,
    rng: u64,
    retries: u64,
    reconnects: u64,
}

impl ResilientClient {
    /// Build a client for `socket_path`; connects lazily on first call.
    pub fn new(socket_path: &Path, policy: RetryPolicy) -> Self {
        let rng = policy.seed | 1;
        Self {
            socket_path: socket_path.to_path_buf(),
            policy,
            conn: None,
            rng,
            retries: 0,
            reconnects: 0,
        }
    }

    /// Retries performed so far (attempts beyond each call's first).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed after a transport failure.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Exponential backoff for retry number `retry` (0-based), capped,
    /// with ±50% deterministic jitter so synchronized clients desynchronize.
    fn backoff(&mut self, retry: u32) -> Duration {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.policy.max_backoff);
        let jitter_frac = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + jitter_frac)
    }

    /// Send `make()`'s request until a definitive response arrives or the
    /// attempt budget runs out. `Ok` responses with `ok:false` and a
    /// non-retryable code are definitive and returned to the caller.
    pub fn call_with_retry(&mut self, make: impl Fn() -> ObjBuilder) -> Result<Json, String> {
        let mut last = String::from("no attempt made");
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.retries += 1;
                let nap = self.backoff(attempt - 1);
                std::thread::sleep(nap);
            }
            if self.conn.is_none() {
                match Client::connect(&self.socket_path) {
                    Ok(c) => {
                        if attempt > 0 {
                            self.reconnects += 1;
                        }
                        self.conn = Some(c);
                    }
                    Err(e) => {
                        last = format!("connect failed: {e}");
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection present");
            match conn.call(make()) {
                Ok(v) => {
                    if v.get("ok").and_then(Json::as_bool) == Some(true) {
                        return Ok(v);
                    }
                    let code = v.get("code").and_then(Json::as_str);
                    if retryable_code(code) {
                        last = format!(
                            "retryable rejection {}: {}",
                            code.unwrap_or("?"),
                            v.get("error").and_then(Json::as_str).unwrap_or("")
                        );
                        continue;
                    }
                    // Definitive coded failure (semantic error): not ours
                    // to mask.
                    return Ok(v);
                }
                Err(e) => {
                    // Transport breakage (closed/truncated/mismatched):
                    // the connection state is unknown — drop and redial.
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(format!(
            "gave up after {} attempts; last error: {last}",
            self.policy.max_attempts
        ))
    }

    /// Compile only, with retries; `deadline_ms` rides on every attempt.
    pub fn compile(
        &mut self,
        source: &str,
        target: &str,
        autotune: bool,
        deadline_ms: Option<u64>,
    ) -> Result<Json, String> {
        self.call_with_retry(|| compile_body(source, target, autotune, deadline_ms))
    }

    /// Compile and run with retries, returning named arrays.
    pub fn run(
        &mut self,
        source: &str,
        target: &str,
        autotune: bool,
        arrays: &[&str],
        deadline_ms: Option<u64>,
    ) -> Result<Json, String> {
        self.call_with_retry(|| run_body(source, target, autotune, arrays, deadline_ms))
    }

    /// Metrics snapshot with retries.
    pub fn stats(&mut self) -> Result<Json, String> {
        let v = self.call_with_retry(|| ObjBuilder::new().str("op", "stats"))?;
        v.get("stats").cloned().ok_or("missing stats".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            seed: 7,
        };
        let mut a = ResilientClient::new(Path::new("/nonexistent"), policy.clone());
        let mut b = ResilientClient::new(Path::new("/nonexistent"), policy);
        let sched_a: Vec<Duration> = (0..6).map(|r| a.backoff(r)).collect();
        let sched_b: Vec<Duration> = (0..6).map(|r| b.backoff(r)).collect();
        assert_eq!(sched_a, sched_b, "same seed, same schedule");
        // Jitter spans [0.5x, 1.5x] of the capped exponential.
        for (r, d) in sched_a.iter().enumerate() {
            let exp = (10u64 << r).min(100) as f64;
            assert!(d.as_secs_f64() * 1000.0 >= exp * 0.5 - 1e-9);
            assert!(d.as_secs_f64() * 1000.0 <= exp * 1.5 + 1e-9);
        }
    }

    #[test]
    fn retryable_codes_are_exactly_the_transient_ones() {
        assert!(retryable_code(Some("E0801")));
        assert!(retryable_code(Some("E0803")));
        assert!(retryable_code(Some("E0804")));
        assert!(!retryable_code(Some("E0802"))); // a malformed request stays malformed
        assert!(!retryable_code(Some("E0101"))); // semantic errors are definitive
        assert!(!retryable_code(None));
    }

    #[test]
    fn unreachable_socket_exhausts_the_attempt_budget() {
        let mut c = ResilientClient::new(
            Path::new("/nonexistent/fsc.sock"),
            RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                seed: 1,
            },
        );
        let err = c.ping_err();
        assert!(err.contains("3 attempts"), "got: {err}");
        assert_eq!(c.retries(), 2);
    }

    impl ResilientClient {
        fn ping_err(&mut self) -> String {
            self.call_with_retry(|| ObjBuilder::new().str("op", "ping"))
                .unwrap_err()
        }
    }
}
