//! Lock-free server metrics: counters, a queue-depth gauge, and a
//! log₂-bucketed latency histogram good enough for p50/p99 without
//! recording individual samples.
//!
//! Everything is relaxed atomics — metrics must never contend with the
//! request path they are measuring. Quantiles are read as the upper bound
//! of the bucket containing the target rank, i.e. conservative to within
//! a factor of two, which is the right fidelity for a load-shedding
//! daemon's `/stats` endpoint (the loadgen additionally reports exact
//! client-side quantiles from its own samples).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bucket count: bucket *i* holds samples in `[2^i, 2^(i+1))` microseconds,
/// covering ~1µs to ~2.3 hours.
const BUCKETS: usize = 43;

/// A log₂ histogram of durations (microsecond resolution).
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let micros = (d.as_micros() as u64).max(1);
        let idx = (micros.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
    }

    /// The `q`-quantile (0.0–1.0) in milliseconds: the upper bound of the
    /// bucket containing the target rank. 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return (1u64 << (i + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << BUCKETS) as f64 / 1000.0
    }
}

/// The server's request-path counters. All monotonic except the
/// `queue_depth` gauge.
#[derive(Default)]
pub struct ServerMetrics {
    /// Requests admitted to the work queue.
    pub accepted: AtomicU64,
    /// Requests rejected by admission control (`E0801`).
    pub rejected: AtomicU64,
    /// Requests answered `ok:true`.
    pub completed: AtomicU64,
    /// Requests answered `ok:false` (compile/run errors — not rejections).
    pub failed: AtomicU64,
    /// Protocol errors answered `E0802`.
    pub protocol_errors: AtomicU64,
    /// Current work-queue depth (gauge).
    pub queue_depth: AtomicU64,
    /// Requests answered `E0803` by the watchdog (budget overrun), by a
    /// worker that found the job already expired at pick-up, or by the
    /// session layer for an expired parked follower.
    pub deadline_kills: AtomicU64,
    /// Worker threads that died by panic and were respawned (`E0804` went
    /// to the in-flight client, when there was one).
    pub worker_crashes: AtomicU64,
    /// Jobs whose worker finished after the watchdog or supervisor had
    /// already answered the client (the late response is discarded — the
    /// exactly-once guarantee).
    pub late_completions: AtomicU64,
    /// Request lines rejected for exceeding the frame cap (`E0802`).
    pub oversized_frames: AtomicU64,
    /// Connections closed for holding a partial frame past the idle
    /// deadline (slow-loris containment).
    pub idle_closes: AtomicU64,
    /// Response frames deliberately truncated by the chaos layer.
    pub truncated_writes: AtomicU64,
    /// Requests served under brownout level 1 (autotune shed).
    pub brownout_no_autotune: AtomicU64,
    /// Requests served under brownout level 2 (reduced rung).
    pub brownout_reduced_rung: AtomicU64,
    /// Current brownout level (gauge: 0 = normal, 1 = no-autotune,
    /// 2 = reduced-rung; level 3 — reject — shows up in `rejected`).
    pub brownout_level: AtomicU64,
    /// Worker threads detached (not joined) because `stop()` hit its hard
    /// timeout with a compile still in flight.
    pub detached_workers: AtomicU64,
    /// Queued jobs answered with a coded rejection during shutdown drain
    /// because no worker remained to run them.
    pub drain_flushed: AtomicU64,
    /// Requests rejected `E0806`: their memory estimate could not be
    /// reserved against the server budget even after squeeze + park.
    pub mem_rejected: AtomicU64,
    /// Requests that parked waiting for memory reservations to free up
    /// (whether or not they were eventually admitted).
    pub mem_parked: AtomicU64,
    /// Requests recompiled in their lean form (no autotune, reduced rung)
    /// because their full-service estimate was denied reservation.
    pub mem_squeezes: AtomicU64,
    /// Runs that dispatched rank bodies on a distributed target.
    pub dist_runs: AtomicU64,
    /// Rank scheduler of the most recent distributed run (gauge:
    /// 0 = none yet, 1 = thread-per-rank, 2 = work-stealing coop).
    pub dist_scheduler: AtomicU64,
    /// Work-stealing events across all distributed runs.
    pub dist_steals: AtomicU64,
    /// Task parks (blocking halo recvs) across all distributed runs.
    pub dist_parks: AtomicU64,
    /// Logical halo messages rank bodies sent across all distributed runs.
    pub dist_logical_messages: AtomicU64,
    /// Wire envelopes those became after node-level aggregation (the
    /// `dist_aggregation_ratio` gauge is logical/physical).
    pub dist_physical_messages: AtomicU64,
    /// Deepest ghost band (`halo_depth`) any distributed run carried.
    pub dist_halo_depth: AtomicU64,
    /// Runs in which at least one nest executed on the native specialized
    /// tier (per-tier execution counts; a run touches every tier its
    /// nests attested).
    pub exec_specialized: AtomicU64,
    /// Runs attesting the stitched jit tier.
    pub exec_jit: AtomicU64,
    /// Runs attesting the superinstruction-fused VM tier.
    pub exec_fused_vm: AtomicU64,
    /// Runs attesting the generic bytecode VM tier.
    pub exec_generic_vm: AtomicU64,
    /// Time from admission to response written.
    pub latency: LatencyHistogram,
    /// Time a request sat queued before a worker picked it up.
    pub queue_wait: LatencyHistogram,
}

impl ServerMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_buckets_conservatively() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(50)); // bucket [32768, 65536)
        assert_eq!(h.count(), 100);
        // p50 lands in the 100µs bucket: upper bound 128µs = 0.128ms.
        assert_eq!(h.quantile_ms(0.5), 0.128);
        // p99 still in the fast bucket; p100 reaches the slow sample.
        assert_eq!(h.quantile_ms(0.99), 0.128);
        assert_eq!(h.quantile_ms(1.0), 65.536);
        assert!(h.mean_ms() > 0.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn sub_microsecond_and_huge_samples_clamp() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(10));
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) > 0.0);
    }
}
