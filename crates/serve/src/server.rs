//! The compile server: a Unix-socket daemon multiplexing many concurrent
//! compile+run sessions onto one shared [`CompileService`].
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!             ┌───────────┐   accept   ┌──────────────┐  parse + admit
//!  clients ──▶│  accept   │───────────▶│ connection  │────────┐
//!             │  thread   │  (per conn)│ reader      │        ▼
//!             └───────────┘            └──────────────┘  bounded queue
//!                                            │            (reject E0801
//!                                     inline │ ping/stats  beyond depth)
//!                                            ▼                 │
//!                                       response line          ▼
//!                                            ▲           ┌──────────┐
//!                                            └───────────│ worker   │×N
//!                                                        │ pool     │
//!                                                        └──────────┘
//! ```
//!
//! * **Admission control**: the work queue is bounded; a request arriving
//!   when it is full is answered `E0801` immediately by the connection
//!   thread — backpressure is explicit and cheap, never a hang or a
//!   dropped connection.
//! * **Sharing**: every worker holds the same `Arc<CompileService>`
//!   (singleflight + bounded artifact cache, see `fsc_core::session`) and
//!   the same on-disk plan cache path, so autotuned plans discovered by
//!   one session serve every later one.
//! * **Attestation**: each response reports how its artifact was obtained
//!   (fresh/deduped/cached), the degradation rung that ran, the plan
//!   provenances, and queue/compile/run wall times.
//!
//! The env → configuration boundary lives in the *binary* (`fsc-serve`
//! reads `FSC_PLAN_CACHE` once at startup); this module and everything
//! below it take explicit paths only.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fsc_core::{CompileOutcome, CompileRequest, CompileService, Execution};
use fsc_exec::autotune;
use fsc_exec::plancache::resolve_cache_path;
use fsc_exec::TuneConfig;
use fsc_ir::diag::codes;
use fsc_ir::json::{Json, ObjBuilder};

use crate::checksum_arrays;
use crate::metrics::ServerMetrics;
use crate::proto::{busy_response, error_response, CompileSpec, Op, Request};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing compile/run jobs (0 = admit but never
    /// process, used by the admission-control tests).
    pub workers: usize,
    /// Work-queue bound: requests beyond this depth are rejected `E0801`.
    pub queue_depth: usize,
    /// Compiled artifacts retained by the shared service.
    pub artifact_capacity: usize,
    /// Plan-cache file shared by every autotuning request (`None` resolves
    /// the default temp-dir path; the `FSC_PLAN_CACHE` env lookup happens
    /// only in the `fsc-serve` binary).
    pub plan_cache: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().clamp(2, 8))
                .unwrap_or(4),
            queue_depth: 64,
            artifact_capacity: fsc_core::session::DEFAULT_ARTIFACT_CAPACITY,
            plan_cache: None,
        }
    }
}

/// One admitted unit of work.
struct Job {
    id: i64,
    op: Op,
    reply: Arc<Mutex<UnixStream>>,
    admitted: Instant,
}

struct ServerInner {
    config: ServerConfig,
    plan_cache_path: PathBuf,
    service: Arc<CompileService>,
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
}

/// A running compile server. Dropping it (or calling [`Server::stop`])
/// stops accepting, drains queued work, and joins the worker pool.
pub struct Server {
    socket_path: PathBuf,
    inner: Arc<ServerInner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `socket_path` (replacing any stale socket file) and start the
    /// accept loop plus the worker pool.
    pub fn start(socket_path: &Path, config: ServerConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(socket_path);
        if let Some(parent) = socket_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let listener = UnixListener::bind(socket_path)?;
        let inner = Arc::new(ServerInner {
            plan_cache_path: resolve_cache_path(config.plan_cache.as_deref()),
            service: Arc::new(CompileService::new(config.artifact_capacity)),
            config,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
        });

        let workers = (0..inner.config.workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("fsc-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("fsc-accept".into())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn acceptor")
        };

        Ok(Server {
            socket_path: socket_path.to_path_buf(),
            inner,
            accept: Some(accept),
            workers,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// The shared compile service (tests inspect its metrics directly).
    pub fn service(&self) -> &Arc<CompileService> {
        &self.inner.service
    }

    /// True until a shutdown request (or [`Server::stop`]) lands.
    pub fn running(&self) -> bool {
        !self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain queued jobs, join every thread. Idempotent.
    pub fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.socket_path);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &UnixListener, inner: &Arc<ServerInner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = inner.clone();
        // Connection readers are detached: they hold only an Arc and exit
        // within one read-timeout tick of shutdown (or on client EOF).
        let _ = std::thread::Builder::new()
            .name("fsc-conn".into())
            .spawn(move || connection_loop(stream, &inner));
    }
}

fn connection_loop(stream: UnixStream, inner: &Arc<ServerInner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let reply = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                handle_line(trimmed, &reply, inner);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn write_line(reply: &Arc<Mutex<UnixStream>>, line: &str) {
    let mut w = reply.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// Parse, then either answer inline (ping/stats/shutdown/protocol error/
/// admission rejection) or enqueue for the worker pool.
fn handle_line(line: &str, reply: &Arc<Mutex<UnixStream>>, inner: &Arc<ServerInner>) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            inner
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            write_line(
                reply,
                &error_response(Request::recover_id(line), codes::SERVER_PROTOCOL, &e),
            );
            return;
        }
    };
    match request.op {
        Op::Ping => write_line(
            reply,
            &ObjBuilder::new()
                .num("id", request.id as f64)
                .bool("ok", true)
                .bool("pong", true)
                .build()
                .render(),
        ),
        Op::Stats => write_line(
            reply,
            &ObjBuilder::new()
                .num("id", request.id as f64)
                .bool("ok", true)
                .set("stats", stats_snapshot(inner))
                .build()
                .render(),
        ),
        Op::Shutdown => {
            write_line(
                reply,
                &ObjBuilder::new()
                    .num("id", request.id as f64)
                    .bool("ok", true)
                    .bool("stopping", true)
                    .build()
                    .render(),
            );
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.work_ready.notify_all();
        }
        op @ (Op::Compile(_) | Op::Run(..)) => {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= inner.config.queue_depth {
                drop(queue);
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                write_line(reply, &busy_response(request.id, inner.config.queue_depth));
                return;
            }
            queue.push_back(Job {
                id: request.id,
                op,
                reply: reply.clone(),
                admitted: Instant::now(),
            });
            inner
                .metrics
                .queue_depth
                .store(queue.len() as u64, Ordering::Relaxed);
            drop(queue);
            inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            inner.work_ready.notify_one();
        }
    }
}

fn worker_loop(inner: &Arc<ServerInner>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    inner
                        .metrics
                        .queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        inner.metrics.queue_wait.record(job.admitted.elapsed());
        let response = process_job(&job, inner);
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        if ok {
            inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
        inner.metrics.latency.record(job.admitted.elapsed());
        write_line(&job.reply, &response.render());
    }
}

/// Compile (and run) one admitted job, producing the response value.
fn process_job(job: &Job, inner: &Arc<ServerInner>) -> Json {
    let (spec, arrays) = match &job.op {
        Op::Compile(spec) => (spec, None),
        Op::Run(spec, arrays) => (spec, Some(arrays.as_slice())),
        _ => unreachable!("only compile/run jobs are queued"),
    };
    let request = to_compile_request(spec, inner);
    let outcome = match inner.service.compile(&request) {
        Ok(o) => o,
        Err(e) => return error_json(job.id, &e),
    };
    let mut b = attest(job.id, &outcome);
    if let Some(arrays) = arrays {
        let t0 = Instant::now();
        let execution = match outcome.compiled.run() {
            Ok(x) => x,
            Err(e) => return error_json(job.id, &e),
        };
        b = b
            .num("run_ms", t0.elapsed().as_secs_f64() * 1000.0)
            .str(
                "checksum",
                &format!("{:016x}", checksum_arrays(&execution, arrays)),
            )
            .str("rung_ran", execution.report.degradation.ran.describe());
        b = b.set("arrays", render_arrays(&execution, arrays));
    }
    b.build()
}

fn to_compile_request(spec: &CompileSpec, inner: &Arc<ServerInner>) -> CompileRequest {
    let mut options = spec.options();
    if spec.autotune {
        options.autotune = Some(TuneConfig {
            cache_path: Some(inner.plan_cache_path.clone()),
            no_persist: false,
            reps: 1,
        });
    }
    CompileRequest::with_options(spec.source.clone(), options)
}

/// The per-request attestation: artifact provenance, degradation rung,
/// plan provenances, wall times.
fn attest(id: i64, outcome: &CompileOutcome) -> ObjBuilder {
    let compiled = &outcome.compiled;
    let plans: Vec<Json> = {
        let mut provenances: Vec<String> = compiled
            .kernels
            .values()
            .flat_map(|k| k.nests.iter())
            .map(|n| format!("{:?}", n.plan.provenance).to_lowercase())
            .collect();
        provenances.sort();
        provenances.dedup();
        provenances.into_iter().map(Json::Str).collect()
    };
    ObjBuilder::new()
        .num("id", id as f64)
        .bool("ok", true)
        .str("artifact", outcome.source.describe())
        .str("fingerprint", &format!("{:016x}", outcome.fingerprint))
        .str("rung", compiled.degradation.ran.describe())
        .bool("degraded", compiled.degradation.degraded())
        .set("plans", Json::Arr(plans))
        .num("compile_ms", outcome.wall.as_secs_f64() * 1000.0)
        .num(
            "tuned_kernels",
            compiled
                .tuning
                .as_ref()
                .map(|t| t.entries.len() as f64)
                .unwrap_or(0.0),
        )
}

fn render_arrays(execution: &Execution, names: &[String]) -> Json {
    let mut b = ObjBuilder::new();
    for name in names {
        let value = match execution.array(name) {
            Some(data) => Json::Arr(data.iter().copied().map(Json::Num).collect()),
            None => Json::Null,
        };
        b = b.set(name, value);
    }
    b.build()
}

fn error_json(id: i64, error: &fsc_ir::IrError) -> Json {
    let code = error.primary().map(|d| d.code).unwrap_or(codes::EXEC);
    Json::parse(&error_response(id, code, &error.message)).expect("error responses are valid JSON")
}

fn stats_snapshot(inner: &Arc<ServerInner>) -> Json {
    let m = &inner.metrics;
    let s = inner.service.metrics();
    let (plan_hits, plan_misses) = autotune::shared_cache(&inner.plan_cache_path).0.stats();
    ObjBuilder::new()
        .num("workers", inner.config.workers as f64)
        .num("queue_capacity", inner.config.queue_depth as f64)
        .num("queue_depth", m.queue_depth.load(Ordering::Relaxed) as f64)
        .num("accepted", m.accepted.load(Ordering::Relaxed) as f64)
        .num("rejected", m.rejected.load(Ordering::Relaxed) as f64)
        .num("completed", m.completed.load(Ordering::Relaxed) as f64)
        .num("failed", m.failed.load(Ordering::Relaxed) as f64)
        .num(
            "protocol_errors",
            m.protocol_errors.load(Ordering::Relaxed) as f64,
        )
        .num("compiles", s.compiles as f64)
        .num("dedup_waits", s.dedup_waits as f64)
        .num("artifact_hits", s.artifact_hits as f64)
        .num("compile_errors", s.errors as f64)
        .num("reuse_rate", s.reuse_rate())
        .num("plan_hits", plan_hits as f64)
        .num("plan_misses", plan_misses as f64)
        .num("p50_ms", m.latency.quantile_ms(0.5))
        .num("p99_ms", m.latency.quantile_ms(0.99))
        .num("mean_ms", m.latency.mean_ms())
        .num("queue_wait_p99_ms", m.queue_wait.quantile_ms(0.99))
        .build()
}
