//! The compile server: a Unix-socket daemon multiplexing many concurrent
//! compile+run sessions onto one shared [`CompileService`].
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//!             ┌───────────┐   accept   ┌──────────────┐  parse + admit
//!  clients ──▶│  accept   │───────────▶│ connection  │────────┐
//!             │  thread   │  (per conn)│ reader      │        ▼
//!             └───────────┘            └──────────────┘  bounded queue
//!                                            │            (reject E0801
//!                                     inline │ ping/stats  beyond depth,
//!                                            ▼             brownout below)
//!                                       response line          │
//!                                            ▲                 ▼
//!                                            │           ┌──────────┐
//!                                            ├───────────│ worker   │×N
//!                                            │           │ pool     │
//!                                            │           └──────────┘
//!                                            │                 ▲ respawn
//!                                            │           ┌──────────┐
//!                                            └───────────│supervisor│
//!                                         E0803/E0804    │+watchdog │
//!                                                        └──────────┘
//! ```
//!
//! * **Admission control**: the work queue is bounded; a request arriving
//!   when it is full is answered `E0801` immediately by the connection
//!   thread — backpressure is explicit and cheap, never a hang or a
//!   dropped connection.
//! * **Deadlines**: every admitted job carries a compile/run budget
//!   (request `deadline_ms` or the server default). The supervisor's
//!   watchdog answers overdue jobs `E0803` and reclaims the singleflight
//!   slot (`CompileService::abandon_stale`) so parked duplicates are
//!   promoted instead of wedged. The worker's own late result is
//!   discarded through a per-job `answered` flag — every request is
//!   answered **exactly once**.
//! * **Crash-only workers**: the worker loop runs with no top-level
//!   `catch_unwind`; a panic kills the thread. The supervisor detects the
//!   death, answers the in-flight request `E0804`, releases the slot, and
//!   respawns the worker. A worker stuck past `deadline + hang_grace` is
//!   retired in place and a replacement spawned so pool capacity
//!   recovers.
//! * **Brownout**: under queue pressure the server sheds *cost* before
//!   shedding requests — occupancy ≥ `brownout_l1` strips autotune
//!   (default/cached plans only), ≥ `brownout_l2` also forces the
//!   cheaper-to-compile scf rung (bit-identical results, see DESIGN.md
//!   §7), and a full queue rejects `E0801`. The applied level is attested
//!   per-response (`brownout` field) and in `stats`. Queue occupancy is
//!   itself an integral of overload (it only builds while arrivals outrun
//!   service), so thresholds on it are inherently "sustained" signals.
//! * **Bounded frames**: request lines are capped (`max_frame_bytes`,
//!   oversized → inline `E0802` + resync at the next newline) and a
//!   connection holding a *partial* frame longer than `idle_timeout` is
//!   closed (slow-loris containment). Client half-close just ends the
//!   reader; already-queued jobs still answer into the write half.
//! * **Sharing**: every worker holds the same `Arc<CompileService>`
//!   (singleflight + bounded artifact cache, see `fsc_core::session`) and
//!   the same on-disk plan cache path, so autotuned plans discovered by
//!   one session serve every later one.
//! * **Attestation**: each response reports how its artifact was obtained
//!   (fresh/deduped/cached), the degradation rung that ran, the plan
//!   provenances, the brownout level applied, coded warnings (e.g.
//!   `E0702` plan-cache degradation), and queue/compile/run wall times.
//! * **Chaos**: an optional seeded [`ChaosInjector`] (see [`crate::chaos`])
//!   injects worker panics, slow compiles, mid-frame response truncation
//!   and cache corruption — the soak harness (`loadgen --chaos`) drives a
//!   server with all of it armed and asserts the exactly-once, no-wedge,
//!   bit-identity invariants.
//!
//! The env → configuration boundary lives in the *binary* (`fsc-serve`
//! reads `FSC_PLAN_CACHE` once at startup); this module and everything
//! below it take explicit paths only.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fsc_core::{
    CompileOutcome, CompileRequest, CompileService, DegradationRung, Execution, Target,
};
use fsc_exec::autotune;
use fsc_exec::plancache::resolve_cache_path;
use fsc_exec::{MemoryBudget, TuneConfig};
use fsc_ir::diag::codes;
use fsc_ir::json::{Json, ObjBuilder};

use crate::chaos::{ChaosInjector, ChaosPlan};
use crate::checksum_arrays;
use crate::metrics::ServerMetrics;
use crate::proto::{
    busy_response, crash_response, deadline_response, error_response, mem_reject_response,
    CompileSpec, Op, Request,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing compile/run jobs (0 = admit but never
    /// process, used by the admission-control tests).
    pub workers: usize,
    /// Work-queue bound: requests beyond this depth are rejected `E0801`.
    pub queue_depth: usize,
    /// Compiled artifacts retained by the shared service.
    pub artifact_capacity: usize,
    /// Plan-cache file shared by every autotuning request (`None` resolves
    /// the default temp-dir path; the `FSC_PLAN_CACHE` env lookup happens
    /// only in the `fsc-serve` binary).
    pub plan_cache: Option<PathBuf>,
    /// Default compile/run budget for requests that do not carry their own
    /// `deadline_ms`. The clock starts at admission.
    pub default_deadline: Duration,
    /// Extra time beyond a job's deadline before its (already-answered)
    /// worker is considered hung: the worker is retired in place and a
    /// replacement spawned so the pool recovers capacity.
    pub hang_grace: Duration,
    /// Request-line size cap; longer lines answer `E0802` inline and the
    /// reader resyncs at the next newline.
    pub max_frame_bytes: usize,
    /// How long a connection may hold a *partial* request line before the
    /// server closes it (slow-loris containment). Idle connections with
    /// no partial frame are left alone.
    pub idle_timeout: Duration,
    /// Hard bound on [`Server::stop`]: workers still running when it
    /// expires are detached (never blocking shutdown) and any still-queued
    /// jobs are answered with a coded rejection.
    pub stop_timeout: Duration,
    /// Queue-occupancy fraction at which brownout level 1 starts
    /// (autotune sweeps shed; default/cached plans only).
    pub brownout_l1: f64,
    /// Queue-occupancy fraction at which brownout level 2 starts (also
    /// force the cheaper scf compile rung; results stay bit-identical).
    pub brownout_l2: f64,
    /// Optional seeded chaos plan — armed at start, disarmable at runtime
    /// via [`Server::chaos`].
    pub chaos: Option<ChaosPlan>,
    /// Server-wide run-memory budget in bytes (`None` = unbounded). Every
    /// run request must reserve its attested [`fsc_exec::MemoryEstimate`]
    /// on this ledger before executing; a reservation that cannot be made
    /// even after the squeeze rung and a bounded park is answered `E0806`.
    /// Reserved-fraction also feeds the brownout ladder, so memory
    /// pressure sheds cost (autotune, rung) before it sheds requests.
    pub mem_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().clamp(2, 8))
                .unwrap_or(4),
            queue_depth: 64,
            artifact_capacity: fsc_core::session::DEFAULT_ARTIFACT_CAPACITY,
            plan_cache: None,
            default_deadline: Duration::from_secs(30),
            hang_grace: Duration::from_secs(5),
            max_frame_bytes: 4 << 20,
            idle_timeout: Duration::from_secs(30),
            stop_timeout: Duration::from_secs(10),
            brownout_l1: 0.5,
            brownout_l2: 0.8,
            chaos: None,
            mem_budget: None,
        }
    }
}

/// How much cost the server is shedding for one request (the brownout
/// ladder; level 3 — reject `E0801` — never reaches a worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutLevel {
    /// Full service.
    Normal,
    /// Autotune sweeps shed: default/cached plans only.
    NoAutotune,
    /// Also compile at the cheaper scf rung (bit-identical results).
    ReducedRung,
}

impl BrownoutLevel {
    /// Stable lowercase name used in response attestations and `stats`.
    pub fn describe(self) -> &'static str {
        match self {
            BrownoutLevel::Normal => "none",
            BrownoutLevel::NoAutotune => "no-autotune",
            BrownoutLevel::ReducedRung => "reduced-rung",
        }
    }

    fn gauge(self) -> u64 {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::NoAutotune => 1,
            BrownoutLevel::ReducedRung => 2,
        }
    }
}

/// One admitted unit of work.
struct Job {
    id: i64,
    op: Op,
    reply: Arc<Mutex<UnixStream>>,
    admitted: Instant,
    /// Compile/run budget, measured from `admitted`.
    deadline: Duration,
    /// Brownout level in force when the job was admitted.
    brownout: BrownoutLevel,
    /// Exactly-once answer guard, shared with the watchdog/supervisor.
    answered: Arc<AtomicBool>,
}

/// What the supervisor can see of a job a worker currently holds.
struct ActiveJob {
    id: i64,
    fingerprint: u64,
    reply: Arc<Mutex<UnixStream>>,
    answered: Arc<AtomicBool>,
    admitted: Instant,
    deadline: Duration,
    /// The watchdog already answered `E0803` and reclaimed the slot.
    killed: bool,
    /// A replacement worker has already been spawned for this hang.
    replaced: bool,
}

/// Per-worker shared state: the registered in-flight job plus a retire
/// flag (a retired worker exits at its next loop head).
#[derive(Default)]
struct WorkerCell {
    active: Mutex<Option<ActiveJob>>,
    retired: AtomicBool,
}

struct WorkerSlot {
    handle: Option<JoinHandle<()>>,
    cell: Arc<WorkerCell>,
}

struct ServerInner {
    config: ServerConfig,
    plan_cache_path: PathBuf,
    service: Arc<CompileService>,
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    metrics: ServerMetrics,
    shutdown: AtomicBool,
    supervisor_stop: AtomicBool,
    workers: Mutex<Vec<WorkerSlot>>,
    next_worker: AtomicU64,
    chaos: Option<Arc<ChaosInjector>>,
    /// Server-wide run-memory reservation ledger (see
    /// [`ServerConfig::mem_budget`]).
    mem_ledger: Arc<MemoryBudget>,
}

/// A running compile server. Dropping it (or calling [`Server::stop`])
/// stops accepting, drains queued work, and joins the worker pool.
pub struct Server {
    socket_path: PathBuf,
    inner: Arc<ServerInner>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `socket_path` (replacing any stale socket file) and start the
    /// accept loop, the worker pool and the supervisor.
    pub fn start(socket_path: &Path, config: ServerConfig) -> std::io::Result<Server> {
        let _ = std::fs::remove_file(socket_path);
        if let Some(parent) = socket_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let listener = UnixListener::bind(socket_path)?;
        let service = Arc::new(CompileService::new(config.artifact_capacity));
        let chaos = config
            .chaos
            .clone()
            .map(|p| Arc::new(ChaosInjector::new(p)));
        if let Some(ch) = &chaos {
            // Slow compiles are injected *inside* the singleflight leader's
            // critical section, so the slot is genuinely held while slow —
            // exactly the hang the watchdog must contain.
            let ch = ch.clone();
            service.set_compile_hook(Some(Arc::new(move |_req: &CompileRequest| {
                if let Some(nap) = ch.slow_compile() {
                    std::thread::sleep(nap);
                }
            })));
        }
        let mem_ledger = match config.mem_budget {
            Some(bytes) => MemoryBudget::limited(bytes.max(1)),
            None => MemoryBudget::unlimited(),
        };
        let inner = Arc::new(ServerInner {
            plan_cache_path: resolve_cache_path(config.plan_cache.as_deref()),
            service,
            mem_ledger,
            config,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            supervisor_stop: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
            next_worker: AtomicU64::new(0),
            chaos,
        });

        {
            let mut workers = inner.workers.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..inner.config.workers {
                workers.push(spawn_worker(&inner));
            }
        }

        let accept = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("fsc-accept".into())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn acceptor")
        };
        let supervisor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("fsc-supervisor".into())
                .spawn(move || supervisor_loop(&inner))
                .expect("spawn supervisor")
        };

        Ok(Server {
            socket_path: socket_path.to_path_buf(),
            inner,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// The shared compile service (tests inspect its metrics directly).
    pub fn service(&self) -> &Arc<CompileService> {
        &self.inner.service
    }

    /// The armed chaos injector, when the config carried a plan (soaks
    /// disarm it between the storm and the verification phase).
    pub fn chaos(&self) -> Option<&Arc<ChaosInjector>> {
        self.inner.chaos.as_ref()
    }

    /// True until a shutdown request (or [`Server::stop`]) lands.
    pub fn running(&self) -> bool {
        !self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain queued jobs, join every thread — within the
    /// configured hard `stop_timeout`. In-flight requests complete (their
    /// workers drain the queue before exiting); a worker still stuck when
    /// the timeout expires is detached, and any job left in the queue is
    /// answered with a coded rejection rather than dropped. Idempotent.
    pub fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.socket_path);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }

        let hard = Instant::now() + self.inner.config.stop_timeout;
        loop {
            {
                let mut workers = self.inner.workers.lock().unwrap_or_else(|e| e.into_inner());
                workers.retain_mut(|slot| match &slot.handle {
                    Some(h) if h.is_finished() => {
                        let _ = slot.handle.take().unwrap().join();
                        false
                    }
                    Some(_) => true,
                    None => false,
                });
                if workers.is_empty() {
                    break;
                }
                if Instant::now() >= hard {
                    // Detach laggards: a hung compile must not hold the
                    // process hostage. Their eventual answers are
                    // suppressed by the per-job answered flags.
                    for slot in workers.drain(..) {
                        slot.cell.retired.store(true, Ordering::SeqCst);
                        self.inner
                            .metrics
                            .detached_workers
                            .fetch_add(1, Ordering::Relaxed);
                        drop(slot.handle);
                    }
                    break;
                }
            }
            self.inner.work_ready.notify_all();
            std::thread::sleep(Duration::from_millis(2));
        }

        // Anything still queued has no worker left to run it: answer it
        // (coded), never drop it silently.
        let leftovers: Vec<Job> = {
            let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.drain(..).collect()
        };
        for job in leftovers {
            if !job.answered.swap(true, Ordering::SeqCst) {
                self.inner
                    .metrics
                    .drain_flushed
                    .fetch_add(1, Ordering::Relaxed);
                write_line(
                    &job.reply,
                    &error_response(
                        job.id,
                        codes::SERVER_BUSY,
                        "server stopped before processing this request; retry elsewhere",
                    ),
                );
            }
        }

        self.inner.supervisor_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_worker(inner: &Arc<ServerInner>) -> WorkerSlot {
    let cell = Arc::new(WorkerCell::default());
    let idx = inner.next_worker.fetch_add(1, Ordering::Relaxed);
    let handle = {
        let (inner, cell) = (inner.clone(), cell.clone());
        std::thread::Builder::new()
            .name(format!("fsc-worker-{idx}"))
            .spawn(move || worker_loop(&inner, &cell))
            .expect("spawn worker")
    };
    WorkerSlot {
        handle: Some(handle),
        cell,
    }
}

fn accept_loop(listener: &UnixListener, inner: &Arc<ServerInner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner = inner.clone();
        // Connection readers are detached: they hold only an Arc and exit
        // within one read-timeout tick of shutdown (or on client EOF).
        let _ = std::thread::Builder::new()
            .name("fsc-conn".into())
            .spawn(move || connection_loop(stream, &inner));
    }
}

/// Read newline-delimited frames with a hard per-line byte cap and a
/// partial-frame idle deadline. Oversized frames answer `E0802` inline
/// and the reader resyncs at the next newline; a connection that dribbles
/// a partial frame for longer than `idle_timeout` is closed.
fn connection_loop(stream: UnixStream, inner: &Arc<ServerInner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // Bounded writes: a client that stops reading must never wedge a
    // worker, the watchdog, or this reader on a full socket buffer.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let reply = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut partial_since: Option<Instant> = None;
    let mut discarding = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed (or half-closed its write side)
            Ok(n) => {
                for &b in &chunk[..n] {
                    if b == b'\n' {
                        if discarding {
                            discarding = false;
                            partial_since = None;
                            continue;
                        }
                        let line = String::from_utf8_lossy(&buf).into_owned();
                        buf.clear();
                        partial_since = None;
                        let trimmed = line.trim();
                        if !trimmed.is_empty() {
                            handle_line(trimmed, &reply, inner);
                        }
                    } else if !discarding {
                        buf.push(b);
                        if buf.len() > inner.config.max_frame_bytes {
                            inner
                                .metrics
                                .oversized_frames
                                .fetch_add(1, Ordering::Relaxed);
                            inner
                                .metrics
                                .protocol_errors
                                .fetch_add(1, Ordering::Relaxed);
                            write_line(
                                &reply,
                                &error_response(
                                    0,
                                    codes::SERVER_PROTOCOL,
                                    &format!(
                                        "request line exceeds the {} byte frame cap",
                                        inner.config.max_frame_bytes
                                    ),
                                ),
                            );
                            buf.clear();
                            buf.shrink_to(64 * 1024);
                            discarding = true;
                        }
                    }
                }
                if (!buf.is_empty() || discarding) && partial_since.is_none() {
                    partial_since = Some(Instant::now());
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(t0) = partial_since {
                    if t0.elapsed() > inner.config.idle_timeout {
                        inner.metrics.idle_closes.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}

fn write_line(reply: &Arc<Mutex<UnixStream>>, line: &str) {
    let mut w = reply.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

/// Write a job response, possibly truncated mid-frame by the chaos layer
/// (the client sees a cut line + EOF — a transport error it must retry).
fn write_response(inner: &Arc<ServerInner>, reply: &Arc<Mutex<UnixStream>>, line: &str) {
    if let Some(ch) = &inner.chaos {
        if ch.truncate_frame() {
            inner
                .metrics
                .truncated_writes
                .fetch_add(1, Ordering::Relaxed);
            let mut w = reply.lock().unwrap_or_else(|e| e.into_inner());
            let cut = line.len() / 2;
            let _ = w.write_all(&line.as_bytes()[..cut]);
            let _ = w.flush();
            let _ = w.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
    write_line(reply, line);
}

/// The brownout level implied by `occupancy` (fraction of the queue bound
/// in use, measured after admitting the request).
fn brownout_level(config: &ServerConfig, occupancy: f64) -> BrownoutLevel {
    if occupancy >= config.brownout_l2 {
        BrownoutLevel::ReducedRung
    } else if occupancy >= config.brownout_l1 {
        BrownoutLevel::NoAutotune
    } else {
        BrownoutLevel::Normal
    }
}

/// Fraction of the server memory budget currently reserved (0.0 when the
/// budget is unbounded). Feeds the same brownout thresholds as queue
/// occupancy: a mostly-reserved ledger sheds autotune and rungs before
/// the admission path has to start rejecting `E0806`.
fn mem_occupancy(inner: &ServerInner) -> f64 {
    match inner.mem_ledger.limit() {
        Some(limit) if limit > 0 => inner.mem_ledger.used() as f64 / limit as f64,
        _ => 0.0,
    }
}

/// Parse, then either answer inline (ping/stats/shutdown/protocol error/
/// admission rejection) or enqueue for the worker pool.
fn handle_line(line: &str, reply: &Arc<Mutex<UnixStream>>, inner: &Arc<ServerInner>) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            inner
                .metrics
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            write_line(
                reply,
                &error_response(Request::recover_id(line), codes::SERVER_PROTOCOL, &e),
            );
            return;
        }
    };
    match request.op {
        Op::Ping => write_line(
            reply,
            &ObjBuilder::new()
                .num("id", request.id as f64)
                .bool("ok", true)
                .bool("pong", true)
                .build()
                .render(),
        ),
        Op::Stats => write_line(
            reply,
            &ObjBuilder::new()
                .num("id", request.id as f64)
                .bool("ok", true)
                .set("stats", stats_snapshot(inner))
                .build()
                .render(),
        ),
        Op::Shutdown => {
            write_line(
                reply,
                &ObjBuilder::new()
                    .num("id", request.id as f64)
                    .bool("ok", true)
                    .bool("stopping", true)
                    .build()
                    .render(),
            );
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.work_ready.notify_all();
        }
        op @ (Op::Compile(_) | Op::Run(..)) => {
            if inner.shutdown.load(Ordering::SeqCst) {
                // Workers may already have drained and exited; admitting
                // now could strand the job. Shed it instead.
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                write_line(
                    reply,
                    &error_response(
                        request.id,
                        codes::SERVER_BUSY,
                        "server is shutting down; retry elsewhere",
                    ),
                );
                return;
            }
            let deadline = match &op {
                Op::Compile(spec) | Op::Run(spec, _) => spec
                    .deadline_ms
                    .map(Duration::from_millis)
                    .unwrap_or(inner.config.default_deadline),
                _ => unreachable!(),
            };
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() >= inner.config.queue_depth {
                drop(queue);
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                inner.metrics.brownout_level.store(3, Ordering::Relaxed);
                write_line(reply, &busy_response(request.id, inner.config.queue_depth));
                return;
            }
            let occupancy = (queue.len() + 1) as f64 / inner.config.queue_depth.max(1) as f64;
            // Memory pressure browns out on the same ladder: the request
            // is served leaner while reservations are scarce.
            let brownout = brownout_level(&inner.config, occupancy.max(mem_occupancy(inner)));
            match brownout {
                BrownoutLevel::Normal => {}
                BrownoutLevel::NoAutotune => {
                    inner
                        .metrics
                        .brownout_no_autotune
                        .fetch_add(1, Ordering::Relaxed);
                }
                BrownoutLevel::ReducedRung => {
                    inner
                        .metrics
                        .brownout_reduced_rung
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            inner
                .metrics
                .brownout_level
                .store(brownout.gauge(), Ordering::Relaxed);
            queue.push_back(Job {
                id: request.id,
                op,
                reply: reply.clone(),
                admitted: Instant::now(),
                deadline,
                brownout,
                answered: Arc::new(AtomicBool::new(false)),
            });
            inner
                .metrics
                .queue_depth
                .store(queue.len() as u64, Ordering::Relaxed);
            drop(queue);
            inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            inner.work_ready.notify_one();
        }
    }
}

/// The worker body. Deliberately **no** top-level `catch_unwind`: a panic
/// anywhere in here (chaos-injected or real) kills the thread, and the
/// supervisor's death detection answers the client `E0804`, releases the
/// singleflight slot and respawns — the crash-only discipline under test.
fn worker_loop(inner: &Arc<ServerInner>, cell: &Arc<WorkerCell>) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if cell.retired.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(job) = queue.pop_front() {
                    inner
                        .metrics
                        .queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        inner.metrics.queue_wait.record(job.admitted.elapsed());

        // A job that already overran its budget while queued is answered
        // E0803 without burning a compile on it.
        if job.admitted.elapsed() > job.deadline {
            if !job.answered.swap(true, Ordering::SeqCst) {
                inner.metrics.deadline_kills.fetch_add(1, Ordering::Relaxed);
                inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.latency.record(job.admitted.elapsed());
                write_response(
                    inner,
                    &job.reply,
                    &deadline_response(job.id, job.deadline.as_millis() as u64),
                );
            }
            continue;
        }

        let (spec, arrays) = match &job.op {
            Op::Compile(spec) => (spec, None),
            Op::Run(spec, arrays) => (spec, Some(arrays.clone())),
            _ => unreachable!("only compile/run jobs are queued"),
        };
        let request = to_compile_request(spec, &job, inner);
        let fingerprint = request.fingerprint();

        // Register with the watchdog before anything can hang or die —
        // from here on, a worker death is answered `E0804` by the
        // supervisor and a budget overrun `E0803` by the watchdog, so the
        // job can no longer be lost.
        *cell.active.lock().unwrap_or_else(|e| e.into_inner()) = Some(ActiveJob {
            id: job.id,
            fingerprint,
            reply: job.reply.clone(),
            answered: job.answered.clone(),
            admitted: job.admitted,
            deadline: job.deadline,
            killed: false,
            replaced: false,
        });

        if let Some(ch) = &inner.chaos {
            if ch.corrupt_cache() {
                corrupt_plan_cache(&inner.plan_cache_path);
            }
            if ch.purge_artifacts() {
                inner.service.purge_artifacts();
            }
            if ch.worker_panic() {
                // Outside any catch_unwind — this thread dies here, with
                // the job registered, so the supervisor owns the answer.
                panic!("chaos: injected worker panic");
            }
        }

        let response = process_job(&job, &request, arrays.as_deref(), inner);

        *cell.active.lock().unwrap_or_else(|e| e.into_inner()) = None;
        if job.answered.swap(true, Ordering::SeqCst) {
            // The watchdog (or supervisor at stop) got there first; the
            // late result is discarded — exactly-once holds.
            inner
                .metrics
                .late_completions
                .fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        if ok {
            inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
        inner.metrics.latency.record(job.admitted.elapsed());
        write_response(inner, &job.reply, &response.render());
    }
}

/// Append garbage to the on-disk plan cache (chaos): the next
/// merge-on-save or cold load must degrade with an `E0702` warning and an
/// empty cache — never a failed request.
fn corrupt_plan_cache(path: &Path) {
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(b"\x00\xff{{chaos-garbage");
    }
}

/// The supervisor: death detection + deadline watchdog + hang
/// replacement, on a short tick. Runs until [`Server::stop`] has drained
/// everything.
fn supervisor_loop(inner: &Arc<ServerInner>) {
    while !inner.supervisor_stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(5));
        let mut replacements = 0usize;
        {
            let mut workers = inner.workers.lock().unwrap_or_else(|e| e.into_inner());
            for slot in workers.iter_mut() {
                // 1. Crash detection: a finished thread outside shutdown
                //    died by panic (clean exits only happen on shutdown or
                //    retirement).
                let finished = slot
                    .handle
                    .as_ref()
                    .map(|h| h.is_finished())
                    .unwrap_or(false);
                if finished {
                    let crashed = slot.handle.take().unwrap().join().is_err();
                    if crashed {
                        inner.metrics.worker_crashes.fetch_add(1, Ordering::Relaxed);
                        let job = slot
                            .cell
                            .active
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take();
                        if let Some(job) = job {
                            // Dead worker may have been a singleflight
                            // leader; reclaim so duplicates are promoted.
                            inner.service.abandon_stale(job.fingerprint, Duration::ZERO);
                            if !job.answered.swap(true, Ordering::SeqCst) {
                                inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                                inner.metrics.latency.record(job.admitted.elapsed());
                                write_response(inner, &job.reply, &crash_response(job.id));
                            }
                        }
                        if !inner.shutdown.load(Ordering::SeqCst) {
                            // Crash-only: respawn in place.
                            *slot = spawn_worker(inner);
                        }
                    }
                    continue;
                }
                // 2. Deadline watchdog over the registered in-flight job.
                let mut active = slot.cell.active.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(job) = active.as_mut() {
                    let elapsed = job.admitted.elapsed();
                    if !job.killed && elapsed > job.deadline {
                        job.killed = true;
                        // Reclaim the singleflight slot so parked
                        // duplicates are promoted. The age guard (half
                        // this job's budget) spares a freshly-promoted
                        // healthy leader from a cascading kill.
                        inner
                            .service
                            .abandon_stale(job.fingerprint, job.deadline / 2);
                        if !job.answered.swap(true, Ordering::SeqCst) {
                            inner.metrics.deadline_kills.fetch_add(1, Ordering::Relaxed);
                            inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                            inner.metrics.latency.record(elapsed);
                            write_response(
                                inner,
                                &job.reply,
                                &deadline_response(job.id, job.deadline.as_millis() as u64),
                            );
                        }
                    }
                    // 3. Hang containment: the worker is stuck well past
                    //    its budget — retire it in place and restore pool
                    //    capacity with a replacement. The retired worker
                    //    exits at its next loop head; its late answer is
                    //    already suppressed.
                    if job.killed
                        && !job.replaced
                        && elapsed > job.deadline + inner.config.hang_grace
                        && !inner.shutdown.load(Ordering::SeqCst)
                    {
                        job.replaced = true;
                        slot.cell.retired.store(true, Ordering::SeqCst);
                        replacements += 1;
                    }
                }
            }
            for _ in 0..replacements {
                let slot = spawn_worker(inner);
                workers.push(slot);
            }
        }
    }
}

/// An admitted run's reservation on the server-wide memory ledger. RAII:
/// every exit path (including a chaos-injected worker panic mid-run)
/// refunds the reservation, so the ledger can never leak bytes.
struct MemReservation {
    ledger: Arc<MemoryBudget>,
    bytes: u64,
}

impl Drop for MemReservation {
    fn drop(&mut self) {
        self.ledger.release(self.bytes);
    }
}

/// The memory-pressure squeeze: the same program compiled to its leanest
/// admissible form — no autotune sweep (no calibration scratch in the
/// estimate) and the cheaper scf rung (bit-identical results, DESIGN.md
/// §7). Applied when the full-service estimate fails reservation, before
/// parking or rejecting.
fn squeeze_request(request: &CompileRequest) -> CompileRequest {
    let mut lean = request.clone();
    lean.options.autotune = None;
    if !matches!(lean.options.target, Target::FlangOnly) {
        lean.options.force_rung = Some(DegradationRung::ScfFallback);
    }
    lean
}

/// Memory admission for a run job: estimate, reserve on the server
/// ledger, squeeze, park (bounded by the job's remaining deadline),
/// reject `E0806`. Returns the (possibly squeezed) outcome, its
/// estimated bytes, and the held reservation — or the rejection
/// response.
fn admit_memory(
    job: &Job,
    request: &CompileRequest,
    outcome: CompileOutcome,
    inner: &Arc<ServerInner>,
) -> std::result::Result<(CompileOutcome, u64, MemReservation), Json> {
    let estimate = |o: &CompileOutcome| o.compiled.estimate().map(|e| e.total().max(1));
    let mut outcome = outcome;
    let mut need = match estimate(&outcome) {
        Ok(n) => n,
        Err(e) => return Err(error_json(job.id, &e)),
    };
    // The chaos memory-pressure site forces the first attempt to fail as
    // if the ledger were exhausted, driving the squeeze path even when
    // the configured budget is never organically hit.
    let chaos_deny = inner.chaos.as_ref().is_some_and(|c| c.mem_pressure());
    let mut reserved = !chaos_deny && inner.mem_ledger.try_reserve(need).is_ok();

    if !reserved {
        // Squeeze: recompile lean and retry with the smaller estimate
        // (kept only when it actually shrinks — a lean recompile of an
        // already-lean request is free via the artifact cache).
        inner.metrics.mem_squeezes.fetch_add(1, Ordering::Relaxed);
        match inner.service.compile(&squeeze_request(request)) {
            Ok(lean) => match estimate(&lean) {
                Ok(lean_need) => {
                    if lean_need <= need {
                        outcome = lean;
                        need = lean_need;
                    }
                }
                Err(e) => return Err(error_json(job.id, &e)),
            },
            Err(e) => return Err(error_json(job.id, &e)),
        }
        reserved = inner.mem_ledger.try_reserve(need).is_ok();
    }

    if !reserved {
        // Park: admitted-but-unreservable requests wait (within their
        // deadline) for in-flight runs to release their reservations,
        // instead of failing a retryable-looking burst.
        inner.metrics.mem_parked.fetch_add(1, Ordering::Relaxed);
        while job.admitted.elapsed() + Duration::from_millis(10) < job.deadline
            && !job.answered.load(Ordering::SeqCst)
        {
            std::thread::sleep(Duration::from_millis(5));
            if inner.mem_ledger.try_reserve(need).is_ok() {
                reserved = true;
                break;
            }
        }
    }

    if !reserved {
        inner.metrics.mem_rejected.fetch_add(1, Ordering::Relaxed);
        let line = mem_reject_response(job.id, need, inner.mem_ledger.limit());
        return Err(Json::parse(&line).expect("mem reject responses are valid JSON"));
    }
    let reservation = MemReservation {
        ledger: inner.mem_ledger.clone(),
        bytes: need,
    };
    Ok((outcome, need, reservation))
}

/// Compile (and run) one admitted job, producing the response value.
fn process_job(
    job: &Job,
    request: &CompileRequest,
    arrays: Option<&[String]>,
    inner: &Arc<ServerInner>,
) -> Json {
    let outcome = match inner.service.compile(request) {
        Ok(o) => o,
        Err(e) => return error_json(job.id, &e),
    };
    let Some(arrays) = arrays else {
        // Compile-only jobs execute nothing: no run-memory admission.
        return attest(job.id, &outcome, job.brownout).build();
    };
    let (outcome, est_bytes, _reservation) = match admit_memory(job, request, outcome, inner) {
        Ok(admitted) => admitted,
        Err(response) => return response,
    };
    let mut b = attest(job.id, &outcome, job.brownout);
    let t0 = Instant::now();
    // The per-request budget *is* the attested estimate: by construction
    // the run's measured peak cannot exceed the estimate, or it fails
    // with a coded E0805 instead of overrunning the reservation.
    let budget = MemoryBudget::limited(est_bytes);
    let execution = match outcome.compiled.run_governed(budget) {
        Ok(x) => x,
        Err(e) => return error_json(job.id, &e),
    };
    {
        // Per-tier execution gauges: one tick per tier the run attested.
        let m = &inner.metrics;
        for path in &execution.report.exec_paths {
            let counter = match path {
                fsc_exec::ExecPath::Specialized => &m.exec_specialized,
                fsc_exec::ExecPath::Jit => &m.exec_jit,
                fsc_exec::ExecPath::FusedVm => &m.exec_fused_vm,
                fsc_exec::ExecPath::GenericVm => &m.exec_generic_vm,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(d) = &execution.report.distributed {
        let m = &inner.metrics;
        m.dist_runs.fetch_add(1, Ordering::Relaxed);
        m.dist_steals.fetch_add(d.steals, Ordering::Relaxed);
        m.dist_parks.fetch_add(d.parks, Ordering::Relaxed);
        m.dist_logical_messages
            .fetch_add(d.logical_messages, Ordering::Relaxed);
        m.dist_physical_messages
            .fetch_add(d.physical_messages, Ordering::Relaxed);
        m.dist_halo_depth
            .fetch_max(u64::from(d.halo_depth), Ordering::Relaxed);
        let scheduler = match d.scheduler {
            Some(fsc_core::DistMode::Threads) => 1,
            Some(fsc_core::DistMode::Coop) => 2,
            None => 0,
        };
        if scheduler > 0 {
            m.dist_scheduler.store(scheduler, Ordering::Relaxed);
        }
    }
    b = b
        .num("run_ms", t0.elapsed().as_secs_f64() * 1000.0)
        .str(
            "checksum",
            &format!("{:016x}", checksum_arrays(&execution, arrays)),
        )
        .str("rung_ran", execution.report.degradation.ran.describe())
        .num("est_bytes", est_bytes as f64)
        .num("peak_bytes", execution.report.peak_bytes as f64);
    b = b.set("arrays", render_arrays(&execution, arrays));
    b.build()
}

fn to_compile_request(spec: &CompileSpec, job: &Job, inner: &Arc<ServerInner>) -> CompileRequest {
    let mut options = spec.options();
    // Brownout level 1+: shed the autotune sweep — default/cached plans
    // only. Level 2: also compile on the cheap scf rung (fewer passes,
    // bit-identical results — DESIGN.md §7's ladder guarantee).
    if spec.autotune && job.brownout == BrownoutLevel::Normal {
        options.autotune = Some(TuneConfig {
            cache_path: Some(inner.plan_cache_path.clone()),
            no_persist: false,
            reps: 1,
        });
    }
    if job.brownout == BrownoutLevel::ReducedRung && !matches!(options.target, Target::FlangOnly) {
        options.force_rung = Some(DegradationRung::ScfFallback);
    }
    let mut request = CompileRequest::with_options(spec.source.clone(), options);
    // Parked followers must give up in step with the watchdog: their
    // session-level budget is what remains of the job's budget.
    request.deadline = Some(job.deadline.saturating_sub(job.admitted.elapsed()));
    request
}

/// The per-request attestation: artifact provenance, degradation rung,
/// plan provenances, brownout level, coded warnings, wall times.
fn attest(id: i64, outcome: &CompileOutcome, brownout: BrownoutLevel) -> ObjBuilder {
    let compiled = &outcome.compiled;
    let plans: Vec<Json> = {
        let mut provenances: Vec<String> = compiled
            .kernels
            .values()
            .flat_map(|k| k.nests.iter())
            .map(|n| format!("{:?}", n.plan.provenance).to_lowercase())
            .collect();
        provenances.sort();
        provenances.dedup();
        provenances.into_iter().map(Json::Str).collect()
    };
    // Coded warnings accumulated during compilation (e.g. E0702 plan-cache
    // degradation, E0703 calibration failure, E0704/E0705 jit artifact
    // degradations) — visible to the client, so "degraded but served" is
    // attested, not silent.
    let warnings: Vec<Json> = {
        let mut codes: Vec<&str> = compiled
            .tuning
            .as_ref()
            .map(|t| t.diagnostics.iter().map(|d| d.code).collect())
            .unwrap_or_default();
        codes.extend(
            compiled
                .kernels
                .values()
                .flat_map(|k| k.jit_warnings.iter().map(|d| d.code)),
        );
        codes.sort();
        codes.dedup();
        codes
            .into_iter()
            .map(|c| Json::Str(c.to_string()))
            .collect()
    };
    // Tier + jit artifact attestation: which rungs of the specialization
    // ladder the compiled nests will run through, and where their stitched
    // objects came from (`fresh` codegen vs shared-cache `cached` reuse).
    let exec_tiers: Vec<Json> = {
        let mut tiers: Vec<String> = compiled
            .kernels
            .values()
            .flat_map(|k| k.nests.iter())
            .map(|n| n.path.to_string())
            .collect();
        tiers.sort();
        tiers.dedup();
        tiers.into_iter().map(Json::Str).collect()
    };
    let jit_artifacts: Vec<Json> = {
        let mut sources: Vec<&str> = compiled
            .kernels
            .values()
            .flat_map(|k| k.nests.iter())
            .filter_map(|n| n.jit_source.map(|s| s.describe()))
            .collect();
        sources.sort();
        sources.dedup();
        sources
            .into_iter()
            .map(|s| Json::Str(s.to_string()))
            .collect()
    };
    ObjBuilder::new()
        .num("id", id as f64)
        .bool("ok", true)
        .str("artifact", outcome.source.describe())
        .str("fingerprint", &format!("{:016x}", outcome.fingerprint))
        .str("rung", compiled.degradation.ran.describe())
        .bool("degraded", compiled.degradation.degraded())
        .str("brownout", brownout.describe())
        .set("plans", Json::Arr(plans))
        .set("exec_tiers", Json::Arr(exec_tiers))
        .set("jit_artifacts", Json::Arr(jit_artifacts))
        .set("warnings", Json::Arr(warnings))
        .num("compile_ms", outcome.wall.as_secs_f64() * 1000.0)
        .num(
            "tuned_kernels",
            compiled
                .tuning
                .as_ref()
                .map(|t| t.entries.len() as f64)
                .unwrap_or(0.0),
        )
}

fn render_arrays(execution: &Execution, names: &[String]) -> Json {
    let mut b = ObjBuilder::new();
    for name in names {
        let value = match execution.array(name) {
            Some(data) => Json::Arr(data.iter().copied().map(Json::Num).collect()),
            None => Json::Null,
        };
        b = b.set(name, value);
    }
    b.build()
}

fn error_json(id: i64, error: &fsc_ir::IrError) -> Json {
    let code = error.primary().map(|d| d.code).unwrap_or(codes::EXEC);
    Json::parse(&error_response(id, code, &error.message)).expect("error responses are valid JSON")
}

fn stats_snapshot(inner: &Arc<ServerInner>) -> Json {
    let m = &inner.metrics;
    let s = inner.service.metrics();
    let (plan_hits, plan_misses) = autotune::shared_cache(&inner.plan_cache_path).0.stats();
    let mut b = ObjBuilder::new()
        .num("workers", inner.config.workers as f64)
        .num("queue_capacity", inner.config.queue_depth as f64)
        .num("queue_depth", m.queue_depth.load(Ordering::Relaxed) as f64)
        .num("accepted", m.accepted.load(Ordering::Relaxed) as f64)
        .num("rejected", m.rejected.load(Ordering::Relaxed) as f64)
        .num("completed", m.completed.load(Ordering::Relaxed) as f64)
        .num("failed", m.failed.load(Ordering::Relaxed) as f64)
        .num(
            "protocol_errors",
            m.protocol_errors.load(Ordering::Relaxed) as f64,
        )
        .num(
            "deadline_kills",
            m.deadline_kills.load(Ordering::Relaxed) as f64,
        )
        .num(
            "worker_crashes",
            m.worker_crashes.load(Ordering::Relaxed) as f64,
        )
        .num(
            "late_completions",
            m.late_completions.load(Ordering::Relaxed) as f64,
        )
        .num(
            "oversized_frames",
            m.oversized_frames.load(Ordering::Relaxed) as f64,
        )
        .num("idle_closes", m.idle_closes.load(Ordering::Relaxed) as f64)
        .num(
            "truncated_writes",
            m.truncated_writes.load(Ordering::Relaxed) as f64,
        )
        .num(
            "brownout_level",
            m.brownout_level.load(Ordering::Relaxed) as f64,
        )
        .num(
            "brownout_no_autotune",
            m.brownout_no_autotune.load(Ordering::Relaxed) as f64,
        )
        .num(
            "brownout_reduced_rung",
            m.brownout_reduced_rung.load(Ordering::Relaxed) as f64,
        )
        .num(
            "detached_workers",
            m.detached_workers.load(Ordering::Relaxed) as f64,
        )
        .num(
            "drain_flushed",
            m.drain_flushed.load(Ordering::Relaxed) as f64,
        )
        .num(
            "mem_rejected",
            m.mem_rejected.load(Ordering::Relaxed) as f64,
        )
        .num("mem_parked", m.mem_parked.load(Ordering::Relaxed) as f64)
        .num(
            "mem_squeezes",
            m.mem_squeezes.load(Ordering::Relaxed) as f64,
        )
        .num(
            "mem_budget_bytes",
            inner.mem_ledger.limit().map(|l| l as f64).unwrap_or(-1.0),
        )
        .num("mem_reserved_bytes", inner.mem_ledger.used() as f64)
        .num("mem_peak_bytes", inner.mem_ledger.peak() as f64)
        .num("compiles", s.compiles as f64)
        .num("dedup_waits", s.dedup_waits as f64)
        .num("artifact_hits", s.artifact_hits as f64)
        .num("compile_errors", s.errors as f64)
        .num("deadline_timeouts", s.deadline_timeouts as f64)
        .num("abandoned_slots", s.abandoned_slots as f64)
        .num("stale_publishes", s.stale_publishes as f64)
        .num("artifact_bytes", s.artifact_bytes as f64)
        .num("evicted_artifacts", s.evicted_artifacts as f64)
        .num("evicted_bytes", s.evicted_bytes as f64)
        .num("oversize_rejects", s.oversize_rejects as f64)
        .num("inflight", inner.service.inflight_len() as f64)
        .num("reuse_rate", s.reuse_rate())
        .num("plan_hits", plan_hits as f64)
        .num("plan_misses", plan_misses as f64)
        .num("p50_ms", m.latency.quantile_ms(0.5))
        .num("p99_ms", m.latency.quantile_ms(0.99))
        .num("mean_ms", m.latency.mean_ms())
        .num("queue_wait_p99_ms", m.queue_wait.quantile_ms(0.99));
    // Per-tier execution counts and the process-wide jit artifact cache
    // (shared by every session this server compiles for).
    let j = fsc_core::jit_cache_stats();
    b = b
        .num(
            "exec_specialized",
            m.exec_specialized.load(Ordering::Relaxed) as f64,
        )
        .num("exec_jit", m.exec_jit.load(Ordering::Relaxed) as f64)
        .num(
            "exec_fused_vm",
            m.exec_fused_vm.load(Ordering::Relaxed) as f64,
        )
        .num(
            "exec_generic_vm",
            m.exec_generic_vm.load(Ordering::Relaxed) as f64,
        )
        .num("jit_entries", j.entries as f64)
        .num("jit_bytes", j.bytes as f64)
        .num("jit_hits", j.hits as f64)
        .num("jit_misses", j.misses as f64)
        .num("jit_builds", j.builds as f64)
        .num("jit_deduped", j.deduped as f64)
        .num("jit_evictions", j.evictions as f64)
        .num("jit_evicted_bytes", j.evicted_bytes as f64)
        .num("jit_oversize_rejects", j.oversize_rejects as f64)
        .num(
            "jit_integrity_invalidations",
            j.integrity_invalidations as f64,
        )
        .num("jit_skips", j.skips as f64)
        .num("jit_codegen_count", j.codegen_count as f64)
        .num("jit_codegen_mean_ms", j.codegen_mean_ms)
        .num("jit_codegen_p50_ms", j.codegen_p50_ms)
        .num("jit_codegen_p99_ms", j.codegen_p99_ms);
    if let Some(ch) = &inner.chaos {
        let c = ch.stats();
        b = b
            .bool("chaos_armed", ch.armed())
            .num("chaos_injected", c.total() as f64)
            .num("chaos_panics", c.panics as f64)
            .num("chaos_slow_compiles", c.slow_compiles as f64)
            .num("chaos_truncations", c.truncations as f64)
            .num("chaos_cache_corruptions", c.cache_corruptions as f64)
            .num("chaos_artifact_purges", c.artifact_purges as f64)
            .num("chaos_mem_pressures", c.mem_pressures as f64);
    }
    let logical = m.dist_logical_messages.load(Ordering::Relaxed);
    let physical = m.dist_physical_messages.load(Ordering::Relaxed);
    b = b
        .num("dist_runs", m.dist_runs.load(Ordering::Relaxed) as f64)
        .str(
            "dist_scheduler",
            match m.dist_scheduler.load(Ordering::Relaxed) {
                1 => "threads",
                2 => "coop",
                _ => "none",
            },
        )
        .num("dist_steals", m.dist_steals.load(Ordering::Relaxed) as f64)
        .num("dist_parks", m.dist_parks.load(Ordering::Relaxed) as f64)
        .num(
            "dist_aggregation_ratio",
            if physical == 0 {
                1.0
            } else {
                logical as f64 / physical as f64
            },
        )
        .num(
            "dist_halo_depth",
            m.dist_halo_depth.load(Ordering::Relaxed) as f64,
        );
    b.build()
}
